"""Tests for the gas-station case study (the authors' classic benchmark)."""

import pytest

from repro.core import verify_safety
from repro.mc import check_safety, find_state, prop
from repro.systems.gas_station import all_fueled_prop, build_gas_station


class TestWrongCustomerRace:
    def test_race_found_with_plain_receives(self):
        arch = build_gas_station(customers=2, selective_delivery=False)
        r = verify_safety(arch, check_deadlock=True, fused=True)
        assert not r.ok
        assert r.result.kind == "assertion"
        assert "delivery" in r.result.message

    def test_race_found_with_composed_models(self):
        arch = build_gas_station(customers=2, selective_delivery=False)
        r = check_safety(arch.to_system(fused=False), check_deadlock=False)
        assert not r.ok
        assert r.kind == "assertion"

    def test_single_customer_cannot_race(self):
        arch = build_gas_station(customers=1, selective_delivery=False)
        r = verify_safety(arch, check_deadlock=True, fused=True)
        assert r.ok

    def test_counterexample_shows_crossed_delivery(self):
        """In the violating state, some customer holds another's gas."""
        arch = build_gas_station(customers=2, selective_delivery=False)
        r = verify_safety(arch, check_deadlock=False, fused=True)
        final = r.result.trace.final_state
        system = arch.to_system(fused=True)
        from repro.mc.props import StateView
        v = StateView(system, final)
        deliveries = [v.local(f"Customer{i}", "delivery") for i in range(2)]
        assert any(d not in (-1, i) for i, d in enumerate(deliveries))


class TestSelectiveReceiveFix:
    def test_selective_delivery_is_safe(self):
        arch = build_gas_station(customers=2, selective_delivery=True)
        r = verify_safety(arch, check_deadlock=True, fused=True)
        assert r.ok

    def test_everyone_gets_fueled(self):
        arch = build_gas_station(customers=2, selective_delivery=True)
        assert find_state(arch.to_system(fused=True),
                          all_fueled_prop(2)) is not None

    def test_three_customers(self):
        arch = build_gas_station(customers=3, selective_delivery=True)
        r = verify_safety(arch, check_deadlock=False, fused=True)
        assert r.ok

    def test_fuel_implies_payment(self):
        """Nobody gets gas without having paid."""
        arch = build_gas_station(customers=2, selective_delivery=True)
        freeloader = prop(
            "freeloader",
            lambda v: any(
                v.global_(f"fueled_{i}") == 1 and v.global_(f"paid_{i}") == 0
                for i in range(2)
            ),
        )
        assert find_state(arch.to_system(fused=True), freeloader) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            build_gas_station(customers=0)

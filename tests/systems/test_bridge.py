"""Tests for the single-lane bridge case study (paper Section 4).

These are the repository's headline regression tests: the exact
fail-then-fix narrative of the paper must keep reproducing.
"""

import pytest

from repro.core import (
    AsynBlockingSend,
    DesignIterationLog,
    ModelLibrary,
    SynBlockingSend,
    verify_safety,
)
from repro.mc import find_state
from repro.systems.bridge import (
    BLUE_ON,
    BridgeConfig,
    RED_ON,
    bridge_safety_prop,
    build_at_most_n_bridge,
    build_exactly_n_bridge,
    crash_prop,
    fix_exactly_n_bridge,
)

CFG = BridgeConfig(cars_per_side=1, n_per_turn=1, trips=1)


class TestFigure13Initial:
    """The flawed initial design: asynchronous enter-request sends."""

    def test_safety_violated(self):
        arch = build_exactly_n_bridge(CFG)
        r = verify_safety(arch, invariants=[bridge_safety_prop()],
                          check_deadlock=False, fused=True)
        assert not r.ok
        assert r.result.kind == "invariant"

    def test_crash_state_reachable(self):
        arch = build_exactly_n_bridge(CFG)
        trace = find_state(arch.to_system(fused=True), crash_prop())
        assert trace is not None
        final = trace.final_state
        gi = arch.to_system(fused=True).global_index

    def test_violation_found_with_composed_models_too(self):
        arch = build_exactly_n_bridge(CFG)
        r = verify_safety(arch, invariants=[bridge_safety_prop()],
                          check_deadlock=False, fused=False)
        assert not r.ok

    def test_counterexample_shows_both_colors_on_bridge(self):
        arch = build_exactly_n_bridge(CFG)
        system = arch.to_system(fused=True)
        trace = find_state(system, crash_prop())
        gi = system.global_index
        final = trace.final_state
        assert final.globals_[gi[BLUE_ON]] > 0
        assert final.globals_[gi[RED_ON]] > 0


class TestFigure13Fixed:
    """The paper's connector-only fix: synchronous enter-request sends."""

    def test_safety_holds(self):
        arch = fix_exactly_n_bridge(build_exactly_n_bridge(CFG))
        r = verify_safety(arch, invariants=[bridge_safety_prop()],
                          check_deadlock=True, fused=True)
        assert r.ok

    def test_fix_changes_no_component(self):
        arch = build_exactly_n_bridge(CFG)
        keys_before = {c.model_key() for c in arch.components.values()}
        fix_exactly_n_bridge(arch)
        keys_after = {c.model_key() for c in arch.components.values()}
        assert keys_before == keys_after

    def test_fix_is_exactly_the_enter_send_ports(self):
        arch = build_exactly_n_bridge(CFG)
        fix_exactly_n_bridge(arch)
        for conn_name in ("BlueEnter", "RedEnter"):
            for att in arch.connector(conn_name).senders:
                assert att.spec == SynBlockingSend()
        for conn_name in ("BlueExit", "RedExit"):
            for att in arch.connector(conn_name).senders:
                assert att.spec == AsynBlockingSend()

    def test_crash_state_unreachable(self):
        arch = fix_exactly_n_bridge(build_exactly_n_bridge(CFG))
        assert find_state(arch.to_system(fused=True), crash_prop()) is None

    def test_composed_models_agree(self):
        arch = fix_exactly_n_bridge(build_exactly_n_bridge(CFG))
        r = verify_safety(arch, invariants=[bridge_safety_prop()],
                          check_deadlock=False, fused=False)
        assert r.ok

    def test_reverify_reuses_models(self):
        lib = ModelLibrary()
        arch = build_exactly_n_bridge(CFG)
        verify_safety(arch, invariants=[bridge_safety_prop()],
                      check_deadlock=False, library=lib, fused=True)
        fix_exactly_n_bridge(arch)
        report = verify_safety(arch, invariants=[bridge_safety_prop()],
                               check_deadlock=False, library=lib, fused=True)
        assert report.models_reused > 0
        # only connector-level models rebuilt, never components
        assert all(
            not (isinstance(k, tuple) and len(k) > 1
                 and isinstance(k[1], tuple) and k[1][:1] == ("component",))
            for k in lib.stats.built_keys[-report.models_built:]
        ) or report.models_built == 0


class TestFigure14AtMostN:
    def test_safety_holds(self):
        arch = build_at_most_n_bridge(CFG)
        r = verify_safety(arch, invariants=[bridge_safety_prop()],
                          check_deadlock=True, fused=True)
        assert r.ok

    def test_has_turn_connectors(self):
        arch = build_at_most_n_bridge(CFG)
        assert "BlueToRed" in arch.connectors
        assert "RedToBlue" in arch.connectors

    def test_cars_can_cross(self):
        from repro.mc import global_prop
        arch = build_at_most_n_bridge(CFG)
        blue_crossed = global_prop(
            "crossed", lambda v: v.global_(BLUE_ON) == 1, BLUE_ON)
        assert find_state(arch.to_system(fused=True), blue_crossed) is not None

    def test_red_cars_cross_too(self):
        from repro.mc import global_prop
        arch = build_at_most_n_bridge(CFG)
        red_crossed = global_prop(
            "crossed", lambda v: v.global_(RED_ON) == 1, RED_ON)
        assert find_state(arch.to_system(fused=True), red_crossed) is not None


class TestScaling:
    @pytest.mark.parametrize("cars,trips", [(1, 2), (2, 1)])
    def test_fixed_bridge_safe_at_larger_configs(self, cars, trips):
        cfg = BridgeConfig(cars_per_side=cars, n_per_turn=1, trips=trips)
        arch = fix_exactly_n_bridge(build_exactly_n_bridge(cfg))
        r = verify_safety(arch, invariants=[bridge_safety_prop()],
                          check_deadlock=False, fused=True)
        assert r.ok

    def test_violation_persists_at_larger_configs(self):
        cfg = BridgeConfig(cars_per_side=2, n_per_turn=2, trips=1)
        arch = build_exactly_n_bridge(cfg)
        r = verify_safety(arch, invariants=[bridge_safety_prop()],
                          check_deadlock=False, fused=True)
        assert not r.ok

    def test_infinite_cars_fused(self):
        cfg = BridgeConfig(cars_per_side=1, n_per_turn=1, trips=0)
        arch = fix_exactly_n_bridge(build_exactly_n_bridge(cfg))
        r = verify_safety(arch, invariants=[bridge_safety_prop()],
                          check_deadlock=True, fused=True)
        assert r.ok


class TestIterationStory:
    def test_full_paper_narrative(self):
        """Initial fails -> fix passes -> at-most-N passes, all against one
        model library with components reused throughout."""
        log = DesignIterationLog()
        safety = bridge_safety_prop()
        arch = build_exactly_n_bridge(CFG)
        it1 = log.run("Fig13 initial", arch, invariants=[safety], fused=True)
        fix_exactly_n_bridge(arch)
        it2 = log.run("Fig13 fixed", arch, invariants=[safety], fused=True)
        arch2 = build_at_most_n_bridge(CFG)
        it3 = log.run("Fig14 at-most-N", arch2, invariants=[safety], fused=True)
        assert (it1.report.ok, it2.report.ok, it3.report.ok) == (False, True, True)
        # the fix iteration rebuilt no component models
        assert it2.component_models_built() == 0

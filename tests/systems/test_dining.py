"""Tests for the dining-philosophers case study."""

import pytest

from repro.core import diagnose_deadlock, verify_safety
from repro.mc import check_safety, find_state, global_prop
from repro.systems.dining import MEALS, build_dining, meals_prop


class TestSymmetricProtocol:
    def test_deadlock_found(self):
        arch = build_dining(philosophers=3, meals_each=1, symmetric=True)
        r = verify_safety(arch, check_deadlock=True, fused=True)
        assert not r.ok
        assert r.result.kind == "deadlock"

    def test_all_philosophers_blocked_in_deadlock(self):
        """The classic circular wait: everyone holds one fork."""
        arch = build_dining(philosophers=3, meals_each=1, symmetric=True)
        r = verify_safety(arch, check_deadlock=True, fused=True)
        blocked = r.result.message
        for i in range(3):
            assert f"Philosopher{i}" in blocked

    def test_two_philosophers_also_deadlock(self):
        arch = build_dining(philosophers=2, meals_each=1, symmetric=True)
        r = verify_safety(arch, check_deadlock=True, fused=True)
        assert not r.ok

    def test_some_meal_still_possible(self):
        """The deadlock is not total: there are runs where meals happen."""
        arch = build_dining(philosophers=3, meals_each=1, symmetric=True)
        assert find_state(arch.to_system(fused=True), meals_prop(1)) is not None

    def test_deadlock_diagnosis_points_at_components(self):
        arch = build_dining(philosophers=2, meals_each=1, symmetric=True)
        system = arch.to_system(fused=True)
        result = check_safety(system, check_deadlock=True)
        hints = diagnose_deadlock(result, arch, system)
        assert any("Philosopher" in h for h in hints)


class TestAsymmetricFix:
    def test_two_philosophers_deadlock_free(self):
        arch = build_dining(philosophers=2, meals_each=1, symmetric=False)
        r = verify_safety(arch, check_deadlock=True, fused=True)
        assert r.ok

    def test_all_meals_reachable(self):
        arch = build_dining(philosophers=2, meals_each=1, symmetric=False)
        assert find_state(arch.to_system(fused=True), meals_prop(2)) is not None

    def test_fix_changes_only_one_component(self):
        """The asymmetry fix touches one philosopher's body, not the
        connectors — the dual of the bridge story."""
        sym = build_dining(philosophers=3, symmetric=True)
        asym = build_dining(philosophers=3, symmetric=False)
        sym_conns = {
            (n, c.channel.key(),
             tuple(a.spec.key() for a in c.senders + c.receivers))
            for n, c in sym.connectors.items()
        }
        asym_conns = {
            (n, c.channel.key(),
             tuple(a.spec.key() for a in c.senders + c.receivers))
            for n, c in asym.connectors.items()
        }
        assert sym_conns == asym_conns  # identical connector structure

    def test_meal_count_bounded(self):
        arch = build_dining(philosophers=2, meals_each=1, symmetric=False)
        overfed = global_prop(
            "overfed", lambda v: v.global_(MEALS) > 2, MEALS)
        assert find_state(arch.to_system(fused=True), overfed) is None


class TestValidation:
    def test_needs_two_philosophers(self):
        with pytest.raises(ValueError):
            build_dining(philosophers=1)

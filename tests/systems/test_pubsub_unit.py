"""Unit-level tests for the EventPool channel block."""


from repro.mc import find_state, global_prop, prop
from repro.systems.pubsub import EventPool, build_pubsub


class TestEventPoolSpec:
    def test_internal_stores_per_subscriber(self):
        pool = EventPool(subscribers=3, depth=2)
        assert pool.internal_stores() == {
            "store0": 2, "store1": 2, "store2": 2}

    def test_key_includes_parameters(self):
        assert EventPool(subscribers=2).key() != EventPool(subscribers=3).key()
        assert EventPool(depth=1).key() != EventPool(depth=2).key()

    def test_display_name(self):
        assert "2 subs" in EventPool(subscribers=2, depth=1).display_name()

    def test_model_builds(self):
        model = EventPool(subscribers=2, depth=1).build_def()
        assert "subpid0" in model.local_vars
        assert "subpid1" in model.local_vars
        assert model.automaton.end_locations


class TestSlotClaiming:
    def test_each_subscriber_claims_one_slot(self):
        """No reachable state has the same port pid in two slots."""
        arch = build_pubsub(publishers=1, subscribers=2, events_each=1)
        system = arch.to_system()
        double_claim = prop(
            "double_claim",
            lambda v: (
                v.local("events.channel", "subpid0") != -1
                and v.local("events.channel", "subpid0")
                == v.local("events.channel", "subpid1")
            ),
        )
        assert find_state(system, double_claim) is None

    def test_slots_fill_in_order(self):
        """Slot 1 is never claimed while slot 0 is free."""
        arch = build_pubsub(publishers=1, subscribers=2, events_each=1)
        system = arch.to_system()
        out_of_order = prop(
            "slot1_before_slot0",
            lambda v: (v.local("events.channel", "subpid0") == -1
                       and v.local("events.channel", "subpid1") != -1),
        )
        assert find_state(system, out_of_order) is None


class TestTopicFiltering:
    def test_selective_subscription_sees_only_its_topic(self):
        """A subscriber filtering on topic 0 never receives topic-1 data."""
        from repro.core import (
            Architecture, AsynBlockingSend, BlockingReceive, Component,
            RECEIVE, SEND, receive_message, send_message)
        from repro.psl.expr import V
        from repro.psl.stmt import (
            Assign, Branch, Break, Do, Else, Guard, If, Seq)

        arch = Architecture("topical")
        arch.add_global("got", 0)
        pub = Component("Pub", ports={"out": SEND}, body=Seq([
            send_message("out", 111, tag=1),   # topic 1 (not ours)
            send_message("out", 100, tag=0),   # topic 0 (ours)
        ]))
        sub = Component("Sub", ports={"inp": RECEIVE}, body=Seq([
            Do(
                Branch(
                    Guard(V("got") == 0),
                    receive_message("inp", into="ev", selective_tag=0),
                    If(Branch(Guard(V("recv_status") == "RECV_SUCC"),
                              Assign("got", V("ev"))),
                       Branch(Else())),
                ),
                Branch(Guard(V("got") != 0), Break()),
            ),
        ]), local_vars={"ev": 0})
        arch.add_component(pub)
        arch.add_component(sub)
        pool = arch.add_connector("events", EventPool(subscribers=1, depth=2))
        pool.attach_sender(pub, "out", AsynBlockingSend())
        pool.attach_receiver(sub, "inp", BlockingReceive())

        system = arch.to_system()
        wrong_topic = global_prop("wrong", lambda v: v.global_("got") == 111,
                                  "got")
        right_topic = global_prop("right", lambda v: v.global_("got") == 100,
                                  "got")
        assert find_state(system, wrong_topic) is None
        assert find_state(system, right_topic) is not None

"""Tests for the pub/sub, RPC, ABP, and producer/consumer systems."""

import pytest

from repro.mc import check_safety, find_state, global_prop, prop
from repro.systems.abp import build_abp
from repro.systems.pubsub import EventPool, build_pubsub
from repro.systems.rpc import build_rpc


class TestPubSub:
    def test_every_subscriber_gets_every_event(self):
        arch = build_pubsub(publishers=1, subscribers=2, events_each=1)
        done = prop(
            "all_received",
            lambda v: v.global_("received_0") == 1 and v.global_("received_1") == 1,
        )
        assert find_state(arch.to_system(), done) is not None

    def test_deadlock_free(self):
        arch = build_pubsub(publishers=1, subscribers=2, events_each=1)
        assert check_safety(arch.to_system(), check_deadlock=True)

    def test_publisher_never_blocked_by_slow_subscriber(self):
        """Decoupling: the publisher finishes even if nobody consumes."""
        arch = build_pubsub(publishers=1, subscribers=1, events_each=2,
                            depth=2)
        pub_done = global_prop(
            "pub_done", lambda v: v.global_("published_0") == 2, "published_0")
        # a state where the publisher finished but the subscriber has
        # received nothing must be reachable
        decoupled = prop(
            "decoupled",
            lambda v: v.global_("published_0") == 2
            and v.global_("received_0") == 0,
        )
        assert find_state(arch.to_system(), decoupled) is not None

    def test_two_publishers(self):
        arch = build_pubsub(publishers=2, subscribers=1, events_each=1,
                            depth=2)
        done = prop("done", lambda v: v.global_("received_0") == 2)
        assert find_state(arch.to_system(), done) is not None

    def test_event_pool_validation(self):
        with pytest.raises(ValueError):
            EventPool(subscribers=0)
        with pytest.raises(ValueError):
            EventPool(subscribers=1, depth=0)

    def test_full_store_misses_events(self):
        """depth=1 and two quick events: the second copy can be missed."""
        arch = build_pubsub(publishers=1, subscribers=1, events_each=2,
                            depth=1)
        missed = prop(
            "missed",
            lambda v: (v.global_("published_0") == 2
                       and v.chan_len("events.store0") == 1
                       and v.global_("received_0") == 0),
        )
        assert find_state(arch.to_system(), missed) is not None


class TestRpc:
    def test_single_client_call_result_correct(self):
        arch = build_rpc(clients=1, calls_each=1)
        # the Assert inside the client checks result == 2*arg
        assert check_safety(arch.to_system(), check_deadlock=True)

    def test_two_calls(self):
        arch = build_rpc(clients=1, calls_each=2)
        assert check_safety(arch.to_system(), check_deadlock=True)

    def test_two_clients(self):
        arch = build_rpc(clients=2, calls_each=1)
        assert check_safety(arch.to_system(fused=True), check_deadlock=True)

    def test_calls_complete(self):
        arch = build_rpc(clients=1, calls_each=2)
        done = global_prop("done", lambda v: v.global_("calls_done_0") == 2,
                           "calls_done_0")
        assert find_state(arch.to_system(), done) is not None

    def test_broken_server_detected(self):
        """Sanity for the assertion: a wrong procedure body must fail."""
        from repro.psl.expr import V
        from repro.psl.stmt import Assign
        arch = build_rpc(clients=1, calls_each=1)
        server = arch.component("Server")
        # sabotage: return arg+7 instead of arg*2
        broken_body = _replace_double_with_increment(server)
        arch.replace_component(server.modified(body=broken_body))
        r = check_safety(arch.to_system(), check_deadlock=False)
        assert not r.ok
        assert r.kind == "assertion"

    def test_validation(self):
        with pytest.raises(ValueError):
            build_rpc(clients=0)


def _replace_double_with_increment(server):
    """Rebuild the server body with result = request + 7."""
    from repro.core import receive_message
    from repro.psl.expr import V
    from repro.psl.stmt import Assign, Branch, Do, EndLabel, Seq
    from repro.systems.rpc import _reply_switch
    return Seq([
        EndLabel(),
        Do(Branch(
            receive_message("calls", into="request"),
            Assign("result", V("request") + 7),
            _reply_switch(1),
        )),
    ])


class TestAbp:
    def _arch(self):
        return build_abp(messages=1, max_sends=2, receiver_polls=4)

    def test_in_order_delivery_invariant(self):
        """The receiver's sequencing assertion holds under all loss."""
        r = check_safety(self._arch().to_system(fused=True),
                         check_deadlock=False)
        assert r.ok

    def test_delivery_possible(self):
        deliv = global_prop("d", lambda v: v.global_("delivered") == 1,
                            "delivered")
        assert find_state(self._arch().to_system(fused=True), deliv) is not None

    def test_loss_can_defeat_bounded_retransmission(self):
        """With max_sends bounded, total loss is reachable: sender gives
        up and nothing was delivered."""
        gave_up = prop(
            "gave_up",
            lambda v: (v.global_("delivered") == 0
                       and v.local("AbpSender", "tries") == 2
                       and v.local("AbpSender", "got_ack") == 0),
        )
        assert find_state(self._arch().to_system(fused=True), gave_up) is not None

    def test_no_duplicate_delivery(self):
        dup = global_prop("dup", lambda v: v.global_("delivered") > 1,
                          "delivered")
        assert find_state(self._arch().to_system(fused=True), dup) is None

    def test_two_messages_in_order(self):
        arch = build_abp(messages=2, max_sends=2, receiver_polls=6)
        r = check_safety(arch.to_system(fused=True), check_deadlock=False)
        assert r.ok

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bridge_defaults(self):
        args = build_parser().parse_args(["bridge"])
        assert args.variant == "initial"
        assert args.cars == 1 and args.trips == 1

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_bridge_budget_flags(self):
        args = build_parser().parse_args(
            ["bridge", "--max-states", "500", "--max-seconds", "1.5"])
        assert args.max_states == 500
        assert args.max_seconds == 1.5

    def test_resilience_requires_known_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resilience", "teapot"])


class TestCommands:
    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "Send ports" in out
        assert "syn_blocking_send" in out

    def test_bridge_initial_reports_violation(self, capsys):
        assert main(["bridge", "--variant", "initial"]) == 0
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "counterexample" in out

    def test_bridge_fixed_passes(self, capsys):
        assert main(["bridge", "--variant", "fixed"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_bridge_atmostn_passes(self, capsys):
        assert main(["bridge", "--variant", "atmostn"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "--messages", "1"]) == 0
        out = capsys.readouterr().out
        assert "models built" in out
        assert "fifo_queue" in out

    def test_export_stdout(self, capsys):
        assert main(["export"]) == 0
        out = capsys.readouterr().out
        assert "proctype AsynBlSendPort" in out

    def test_export_to_file(self, tmp_path, capsys):
        target = tmp_path / "model.pml"
        assert main(["export", "--out", str(target)]) == 0
        assert "proctype" in target.read_text()

    def test_graph_block(self, capsys):
        assert main(["graph", "syn_blocking_send"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "SynBlSendPort"')

    def test_graph_bridge_to_file(self, tmp_path, capsys):
        target = tmp_path / "bridge.dot"
        assert main(["graph", "bridge", "--out", str(target)]) == 0
        assert "BlueController" in target.read_text()

    def test_graph_unknown_block_exits_3(self, capsys):
        # Internal failures (bad input to the tool, not the model) are
        # trapped at the top level and mapped to exit code 3.
        assert main(["graph", "warp_drive"]) == 3
        assert "internal failure" in capsys.readouterr().err

    def test_graph_fault_block(self, capsys):
        assert main(["graph", "lossy_channel"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_catalog_lists_fault_blocks(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "Fault injection (channels)" in out
        assert "lossy_channel" in out
        assert "retry_send" in out


class TestBudgetExitCodes:
    def test_bridge_exhausted_budget_exits_2(self, capsys):
        assert main(["bridge", "--variant", "fixed",
                     "--max-states", "100"]) == 2
        assert "incomplete" in capsys.readouterr().out

    def test_bridge_within_budget_exits_0(self, capsys):
        assert main(["bridge", "--variant", "fixed",
                     "--max-states", "1000000"]) == 0
        assert "PASS" in capsys.readouterr().out


class TestVerifyCommand:
    def test_verify_bridge_writes_full_report(self, tmp_path, capsys):
        out_json = tmp_path / "out.json"
        assert main(["verify", "bridge", "--report", str(out_json),
                     "--progress"]) == 0
        assert "report written" in capsys.readouterr().out
        import json
        payload = json.loads(out_json.read_text())
        run = payload["run"]
        assert run["verdict"].startswith("FAIL")
        assert run["statistics"]["states_stored"] > 0
        assert run["msc"]
        assert run["explanation"]
        assert payload["events"]  # --report buffers the event stream
        assert payload["command"].startswith("repro verify bridge")

    def test_report_rerenders_byte_identically(self, tmp_path, capsys):
        out_json = tmp_path / "out.json"
        assert main(["verify", "bridge", "--report", str(out_json)]) == 0
        capsys.readouterr()
        assert main(["report", str(out_json)]) == 0
        first = capsys.readouterr().out
        assert main(["report", str(out_json)]) == 0
        second = capsys.readouterr().out
        assert first == second
        from repro.obs.report import RunReport
        assert first == RunReport.load(str(out_json)).to_markdown()

    def test_report_formats_and_out_file(self, tmp_path, capsys):
        out_json = tmp_path / "out.json"
        main(["verify", "abp", "--report", str(out_json)])
        capsys.readouterr()
        assert main(["report", str(out_json), "--format", "html"]) == 0
        assert capsys.readouterr().out.startswith("<!DOCTYPE html>")
        target = tmp_path / "r.md"
        assert main(["report", str(out_json), "--format", "md",
                     "--out", str(target)]) == 0
        assert target.read_text().startswith("# Verification of")

    def test_verify_abp_passes(self, capsys):
        assert main(["verify", "abp"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_verify_bridge_fixed_within_budget(self, capsys):
        assert main(["verify", "bridge", "--variant", "fixed"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_log_jsonl_appends_events(self, tmp_path, capsys):
        import json
        log = tmp_path / "events.jsonl"
        assert main(["verify", "bridge", "--variant", "fixed",
                     "--log-jsonl", str(log)]) == 0
        lines = [json.loads(line) for line in
                 log.read_text().splitlines()]
        assert lines[0]["type"] == "run_started"
        assert lines[-1]["type"] == "run_finished"

    def test_progress_goes_to_stderr(self, capsys):
        assert main(["verify", "bridge", "--variant", "fixed",
                     "--progress"]) == 0
        captured = capsys.readouterr()
        assert "exploring" in captured.err
        assert "exploring" not in captured.out


class TestExploreCommand:
    def _explore_pc(self, tmp_path, *extra):
        return ["explore", "pc", "--messages", "1",
                "--cache-dir", str(tmp_path / "cache"), *extra]

    def test_pc_exploration_prints_ranked_table(self, tmp_path, capsys):
        assert main(self._explore_pc(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "design-space exploration: producer_consumer" in out
        assert "best:" in out
        assert "PASS" in out
        assert "cache: 0 hits, 20 misses" in out

    def test_warm_run_serves_from_cache(self, tmp_path, capsys):
        assert main(self._explore_pc(tmp_path)) == 0
        capsys.readouterr()
        assert main(self._explore_pc(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "cache: 20 hits, 0 misses" in out
        assert "hit" in out

    def test_no_cache_touches_nothing(self, tmp_path, capsys):
        assert main(["explore", "pc", "--messages", "1", "--no-cache",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert not (tmp_path / "cache").exists()
        assert "cache:" not in capsys.readouterr().out

    def test_cache_dir_env_var_is_honored(self, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "from_env"))
        assert main(["explore", "pc", "--messages", "1"]) == 0
        # Fresh directories default to the sqlite backend.
        assert (tmp_path / "from_env" / "cache.sqlite").exists()

    def test_first_pass_stops_early(self, tmp_path, capsys):
        assert main(self._explore_pc(tmp_path, "--first-pass")) == 0
        out = capsys.readouterr().out
        assert "SKIPPED" in out
        assert "stopped at the first PASS" in out

    def test_budget_exhaustion_exits_2(self, tmp_path, capsys):
        assert main(self._explore_pc(tmp_path, "--max-states", "10")) == 2
        assert "UNKNOWN" in capsys.readouterr().out

    def test_jobs_flag_matches_serial_table(self, tmp_path, capsys):
        assert main(["explore", "pc", "--messages", "1", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(["explore", "pc", "--messages", "1", "--no-cache",
                     "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out

        def strip(text):
            return [line for line in text.splitlines()
                    if "jobs=" not in line]

        assert strip(parallel) == strip(serial)

    def test_report_round_trips_through_report_command(self, tmp_path,
                                                       capsys):
        out_json = tmp_path / "exploration.json"
        assert main(self._explore_pc(tmp_path, "--report",
                                     str(out_json))) == 0
        capsys.readouterr()
        assert main(["report", str(out_json)]) == 0
        md = capsys.readouterr().out
        assert md.startswith("# Design-space exploration")
        assert "best" in md.lower()

    def test_sweep_is_deprecated_in_favor_of_explore(self, capsys):
        assert main(["sweep", "--messages", "1"]) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "explore pc" in captured.err
        assert "models built" in captured.out


class TestExitCodeContract:
    """The documented exit-code table: 0 ok, 1 violation, 2 partial,
    3 internal failure.  Pinned here so scripts can rely on it."""

    def test_internal_failure_exits_3_with_stderr_note(self, capsys):
        assert main(["graph", "warp_drive"]) == 3
        err = capsys.readouterr().err
        assert "internal failure" in err

    def test_keyboard_interrupt_exits_2(self, capsys, monkeypatch):
        import repro.cli as cli

        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_cmd_catalog", boom)
        assert main(["catalog"]) == 2
        assert "interrupted" in capsys.readouterr().err

    def test_unknown_resume_run_id_exits_3(self, tmp_path, capsys):
        assert main(["explore", "pc", "--messages", "1",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--resume", "no-such-run"]) == 3
        assert "no journal for run" in capsys.readouterr().err


class TestCacheCommand:
    def _populate(self, tmp_path, *extra):
        cache_dir = tmp_path / "cache"
        assert main(["explore", "pc", "--messages", "1",
                     "--cache-dir", str(cache_dir),
                     "--run-id", "r1", *extra]) == 0
        return cache_dir

    def test_info_lists_records_and_runs(self, tmp_path, capsys):
        cache_dir = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        # 20 variants, one deduplicated fingerprint pair -> 19 records.
        assert "records: 19" in out
        assert "runs journaled: 1" in out
        assert "r1" in out

    def test_verify_clean_cache_exits_0(self, tmp_path, capsys):
        cache_dir = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "corrupt records: 0" in out
        assert out.rstrip().endswith("ok")

    def test_verify_damaged_jsonl_cache_exits_3(self, tmp_path, capsys):
        cache_dir = self._populate(tmp_path, "--backend", "jsonl")
        journal = cache_dir / "results.jsonl"
        damaged = journal.read_text().splitlines()
        damaged[0] = damaged[0].replace('"verdict"', '"verdikt"', 1)
        journal.write_text("\n".join(damaged) + "\n")
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 3
        assert "NOT OK" in capsys.readouterr().out

    def test_verify_damaged_sqlite_cache_exits_3(self, tmp_path, capsys):
        import sqlite3

        cache_dir = self._populate(tmp_path)
        conn = sqlite3.connect(cache_dir / "cache.sqlite")
        conn.execute("UPDATE records SET record = '{torn' WHERE rowid = 1")
        conn.commit()
        conn.close()
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 3
        out = capsys.readouterr().out
        assert "corrupt records: 1" in out
        assert "NOT OK" in out

    def test_compact_rewrites_journal(self, tmp_path, capsys):
        cache_dir = self._populate(tmp_path)
        # A second exploration with a different budget adds 20 records.
        assert main(["explore", "pc", "--messages", "1", "--max-states",
                     "10", "--cache-dir", str(cache_dir)]) == 2
        capsys.readouterr()
        assert main(["cache", "compact", "--cache-dir",
                     str(cache_dir)]) == 0
        assert "38 -> 38" in capsys.readouterr().out  # distinct fingerprints
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0


class TestResumeFlags:
    def test_run_id_is_printed_and_resumable(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["explore", "pc", "--messages", "1",
                     "--cache-dir", str(cache_dir),
                     "--run-id", "nightly"]) == 0
        out = capsys.readouterr().out
        assert "run id: nightly" in out
        # Resuming the finished run re-verifies nothing and touches no
        # cache entries: everything is served from the journal.
        assert main(["explore", "pc", "--messages", "1",
                     "--cache-dir", str(cache_dir),
                     "--resume", "nightly"]) == 0
        out = capsys.readouterr().out
        assert "cache: 0 hits, 0 misses" in out


class TestResilienceCommand:
    def test_bridge_sweep_prints_matrix(self, capsys):
        assert main(["resilience", "bridge"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "DEGRADED" in out
        assert "overall:" in out

    def test_abp_sweep_with_budget_exits_2(self, capsys):
        assert main(["resilience", "abp", "--max-states", "2000"]) == 2
        out = capsys.readouterr().out
        assert "UNKNOWN" in out
        assert "incomplete" in out

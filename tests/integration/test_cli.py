"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bridge_defaults(self):
        args = build_parser().parse_args(["bridge"])
        assert args.variant == "initial"
        assert args.cars == 1 and args.trips == 1

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_bridge_budget_flags(self):
        args = build_parser().parse_args(
            ["bridge", "--max-states", "500", "--max-seconds", "1.5"])
        assert args.max_states == 500
        assert args.max_seconds == 1.5

    def test_resilience_requires_known_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resilience", "teapot"])


class TestCommands:
    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "Send ports" in out
        assert "syn_blocking_send" in out

    def test_bridge_initial_reports_violation(self, capsys):
        assert main(["bridge", "--variant", "initial"]) == 0
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "counterexample" in out

    def test_bridge_fixed_passes(self, capsys):
        assert main(["bridge", "--variant", "fixed"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_bridge_atmostn_passes(self, capsys):
        assert main(["bridge", "--variant", "atmostn"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "--messages", "1"]) == 0
        out = capsys.readouterr().out
        assert "models built" in out
        assert "fifo_queue" in out

    def test_export_stdout(self, capsys):
        assert main(["export"]) == 0
        out = capsys.readouterr().out
        assert "proctype AsynBlSendPort" in out

    def test_export_to_file(self, tmp_path, capsys):
        target = tmp_path / "model.pml"
        assert main(["export", "--out", str(target)]) == 0
        assert "proctype" in target.read_text()

    def test_graph_block(self, capsys):
        assert main(["graph", "syn_blocking_send"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "SynBlSendPort"')

    def test_graph_bridge_to_file(self, tmp_path, capsys):
        target = tmp_path / "bridge.dot"
        assert main(["graph", "bridge", "--out", str(target)]) == 0
        assert "BlueController" in target.read_text()

    def test_graph_unknown_block(self):
        with pytest.raises(KeyError):
            main(["graph", "warp_drive"])

    def test_graph_fault_block(self, capsys):
        assert main(["graph", "lossy_channel"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_catalog_lists_fault_blocks(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "Fault injection (channels)" in out
        assert "lossy_channel" in out
        assert "retry_send" in out


class TestBudgetExitCodes:
    def test_bridge_exhausted_budget_exits_2(self, capsys):
        assert main(["bridge", "--variant", "fixed",
                     "--max-states", "100"]) == 2
        assert "incomplete" in capsys.readouterr().out

    def test_bridge_within_budget_exits_0(self, capsys):
        assert main(["bridge", "--variant", "fixed",
                     "--max-states", "1000000"]) == 0
        assert "PASS" in capsys.readouterr().out


class TestResilienceCommand:
    def test_bridge_sweep_prints_matrix(self, capsys):
        assert main(["resilience", "bridge"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "DEGRADED" in out
        assert "overall:" in out

    def test_abp_sweep_with_budget_exits_2(self, capsys):
        assert main(["resilience", "abp", "--max-states", "2000"]) == 2
        out = capsys.readouterr().out
        assert "UNKNOWN" in out
        assert "incomplete" in out

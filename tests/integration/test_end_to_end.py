"""Cross-layer integration tests: the full design-verify-revise loop."""


from repro.codegen import system_to_promela
from repro.core import (
    Architecture,
    AsynBlockingSend,
    AsynCheckingSend,
    BlockingReceive,
    Component,
    DroppingBuffer,
    FifoQueue,
    ModelLibrary,
    RECEIVE,
    SEND,
    SingleSlotBuffer,
    SynBlockingSend,
    diagnose_deadlock,
    receive_message,
    send_message,
    verify_ltl,
    verify_safety,
)
from repro.mc import check_safety, check_safety_por, global_prop
from repro.psl.expr import V
from repro.psl.stmt import Assign, Branch, Break, Do, Guard, Seq


def ping_pong_architecture(reply_channel):
    """Two components exchanging a token: ping sends, pong echoes."""
    arch = Architecture("pingpong")
    arch.add_global("rounds", 0)
    ping = Component(
        "Ping",
        ports={"out": SEND, "back": RECEIVE},
        body=Seq([
            Do(
                Branch(
                    Guard(V("rounds") < 2),
                    send_message("out", 1),
                    receive_message("back", into="echo"),
                    Assign("rounds", V("rounds") + 1),
                ),
                Branch(Guard(V("rounds") == 2), Break()),
            ),
        ]),
        local_vars={"echo": 0},
    )
    pong = Component(
        "Pong",
        ports={"inp": RECEIVE, "reply": SEND},
        body=Seq([
            Do(Branch(
                receive_message("inp", into="token"),
                send_message("reply", V("token")),
            )),
        ]),
        local_vars={"token": 0},
    )
    arch.add_component(ping)
    arch.add_component(pong)
    fwd = arch.add_connector("fwd", SingleSlotBuffer())
    fwd.attach_sender(ping, "out", SynBlockingSend())
    fwd.attach_receiver(pong, "inp", BlockingReceive())
    back = arch.add_connector("back", reply_channel)
    back.attach_sender(pong, "reply", AsynBlockingSend())
    back.attach_receiver(ping, "back", BlockingReceive())
    return arch


class TestDesignRevisionLoop:
    def test_iterate_until_green(self):
        """A full designer session: find a flaw via deadlock analysis,
        swap one block, and re-verify cheaply."""
        lib = ModelLibrary()
        # flawed: the reply channel drops and the pong side keeps sending
        arch = ping_pong_architecture(DroppingBuffer(size=1))
        r1 = verify_safety(arch, library=lib)
        # the dropping reply channel can lose the echo: ping then waits
        # forever inside receive (quiescible) -> no deadlock, but the
        # rounds never complete.  Check completion reachability instead:
        from repro.mc import find_state
        done = global_prop("done", lambda v: v.global_("rounds") == 2, "rounds")
        assert find_state(arch.to_system(lib), done) is not None
        # fix: a reliable reply channel
        arch.swap_channel("back", SingleSlotBuffer())
        r2 = verify_safety(arch, library=lib)
        assert r2.ok
        assert r2.models_built <= 1  # only the new channel model

    def test_ltl_progress_property(self):
        arch = ping_pong_architecture(SingleSlotBuffer())
        done = global_prop("done", lambda v: v.global_("rounds") == 2, "rounds")
        report = verify_ltl(arch, "F done", {"done": done})
        assert report.ok

    def test_por_agrees_with_bfs_on_architecture(self):
        arch = ping_pong_architecture(SingleSlotBuffer())
        bfs = check_safety(arch.to_system())
        arch2 = ping_pong_architecture(SingleSlotBuffer())
        por = check_safety_por(arch2.to_system())
        assert bfs.ok == por.ok

    def test_promela_roundtrip_of_revised_design(self):
        arch = ping_pong_architecture(SingleSlotBuffer())
        src1 = system_to_promela(arch.to_system())
        arch.swap_send_port("fwd", "Ping", AsynCheckingSend())
        src2 = system_to_promela(arch.to_system())
        assert "SynBlSendPort" in src1
        assert "AsynChkSendPort" in src2
        # components identical in both outputs
        ping_1 = src1[src1.index("proctype Ping"):src1.index("proctype Pong")]
        ping_2 = src2[src2.index("proctype Ping"):src2.index("proctype Pong")]
        assert ping_1 == ping_2


class TestFusedComposedAgreement:
    def test_pingpong_agree(self):
        composed = check_safety(
            ping_pong_architecture(SingleSlotBuffer()).to_system(fused=False))
        fused = check_safety(
            ping_pong_architecture(SingleSlotBuffer()).to_system(fused=True))
        assert composed.ok == fused.ok is True

    def test_dropping_diagnosis_end_to_end(self):
        from repro.systems.producer_consumer import (
            ConsumerSpec, ProducerSpec, build_producer_consumer)
        arch = build_producer_consumer(
            producers=[ProducerSpec(messages=2, port=SynBlockingSend())],
            channel=DroppingBuffer(size=1),
            consumers=[ConsumerSpec(receives=1)],
        )
        system = arch.to_system(fused=True)
        result = check_safety(system)
        assert not result.ok
        hints = diagnose_deadlock(result, arch, system)
        assert any("dropping buffer" in h for h in hints)


class TestLibrarySharingAcrossArchitectures:
    def test_blocks_shared_between_unrelated_designs(self):
        lib = ModelLibrary()
        from repro.systems.producer_consumer import simple_pair
        verify_safety(simple_pair(SynBlockingSend(), SingleSlotBuffer()),
                      library=lib)
        arch2 = ping_pong_architecture(SingleSlotBuffer())
        report = verify_safety(arch2, library=lib)
        # port/channel models are shared; only pingpong's components and
        # the asyn port are new
        assert report.models_reused >= 3

    def test_component_models_never_collide_across_designs(self):
        lib = ModelLibrary()
        a1 = ping_pong_architecture(SingleSlotBuffer())
        a2 = ping_pong_architecture(FifoQueue(size=1))
        r1 = verify_safety(a1, library=lib)
        r2 = verify_safety(a2, library=lib)
        assert r1.ok and r2.ok

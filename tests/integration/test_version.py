"""The version is single-sourced: package, CLI, reports, service."""

import re

import pytest

from repro import __version__
from repro.cli import main


class TestVersionSingleSourcing:
    def test_version_is_semver_shaped(self):
        assert re.fullmatch(r"\d+\.\d+\.\d+", __version__)

    def test_cli_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_pyproject_reads_the_package_version(self):
        # No second copy of the number: pyproject declares the version
        # dynamic and points at the package attribute.
        with open("pyproject.toml", encoding="utf-8") as fh:
            text = fh.read()
        assert 'dynamic = ["version"]' in text
        assert 'version = { attr = "repro.__version__" }' in text
        assert not re.search(r'^version\s*=\s*"\d', text, re.M)

    def test_reports_are_stamped(self, tmp_path):
        report_path = str(tmp_path / "run.json")
        assert main(["verify", "gas", "--selective",
                     "--report", report_path]) == 0
        from repro.obs.report import RunReport
        assert RunReport.load(report_path).payload[
            "repro_version"] == __version__

"""Checker-side instrumentation: event streams from real verification runs."""

import pytest

from repro.mc import check_ltl, check_safety, check_safety_por
from repro.mc.engine import StateGraph
from repro.mc.explore import count_states, find_state
from repro.obs import (
    EVENT_BUDGET_EXHAUSTED,
    EVENT_COUNTEREXAMPLE,
    EVENT_PROGRESS,
    EVENT_RUN_FINISHED,
    EVENT_RUN_STARTED,
    EVENT_SCENARIO_FINISHED,
    EVENT_SCENARIO_STARTED,
    EVENT_SWEEP_FINISHED,
    EVENT_SWEEP_STARTED,
    CollectingReporter,
)
from repro.systems.bridge import (
    bridge_fault_scenarios,
    bridge_safety_prop,
    build_exactly_n_bridge,
    fix_exactly_n_bridge,
)


def fixed_bridge_graph():
    arch = fix_exactly_n_bridge(build_exactly_n_bridge())
    return StateGraph(arch.to_system(fused=True))


def buggy_bridge_graph():
    return StateGraph(build_exactly_n_bridge().to_system(fused=True))


class TestSafetyInstrumentation:
    def test_stream_is_bracketed_by_start_and_finish(self):
        rep = CollectingReporter(interval=100)
        result = check_safety(fixed_bridge_graph(),
                              invariants=[bridge_safety_prop()],
                              reporter=rep)
        assert result.ok
        assert rep.events[0].type == EVENT_RUN_STARTED
        assert rep.events[-1].type == EVENT_RUN_FINISHED
        assert rep.events[-1].data["verdict"] == "PASS"
        assert any(e.type == EVENT_PROGRESS for e in rep.events)

    def test_counterexample_event_precedes_finish(self):
        rep = CollectingReporter()
        result = check_safety(buggy_bridge_graph(),
                              invariants=[bridge_safety_prop()],
                              check_deadlock=False, reporter=rep)
        assert not result.ok
        kinds = [e.type for e in rep.events]
        assert EVENT_COUNTEREXAMPLE in kinds
        assert kinds.index(EVENT_COUNTEREXAMPLE) < kinds.index(
            EVENT_RUN_FINISHED)
        ce = next(e for e in rep.events if e.type == EVENT_COUNTEREXAMPLE)
        assert ce.data["kind"] == "invariant"
        assert ce.data["trace_length"] == len(result.trace.steps)

    def test_budget_exhaustion_emits_budget_event(self):
        rep = CollectingReporter()
        result = check_safety(fixed_bridge_graph(), max_states=50,
                              reporter=rep)
        assert result.incomplete
        kinds = [e.type for e in rep.events]
        assert EVENT_BUDGET_EXHAUSTED in kinds
        assert rep.events[-1].data["verdict"] == "INCOMPLETE"

    def test_event_sequence_is_deterministic(self):
        def run():
            rep = CollectingReporter(interval=50)
            check_safety(fixed_bridge_graph(),
                         invariants=[bridge_safety_prop()], reporter=rep)
            return [(e.type, e.data.get("states_stored"),
                     e.data.get("states_expanded")) for e in rep.events]

        assert run() == run()

    def test_no_reporter_is_the_default_and_silent(self):
        # Exercise the reporter=None fast path explicitly.
        result = check_safety(fixed_bridge_graph(), reporter=None)
        assert result.ok


class TestOtherCheckers:
    def test_por_stream(self):
        rep = CollectingReporter(interval=100)
        result = check_safety_por(fixed_bridge_graph(),
                                  invariants=[bridge_safety_prop()],
                                  reporter=rep)
        assert result.ok
        assert rep.events[0].type == EVENT_RUN_STARTED
        assert rep.events[0].checker == "safety-por"
        assert rep.events[-1].type == EVENT_RUN_FINISHED

    def test_ltl_stream(self):
        rep = CollectingReporter(interval=100)
        safe = bridge_safety_prop()
        result = check_ltl(fixed_bridge_graph(), "G safe", {"safe": safe},
                           reporter=rep)
        assert result.ok
        assert rep.events[0].checker == "ltl-ndfs"
        assert rep.events[-1].data["verdict"] == "PASS"

    def test_count_and_find_streams(self):
        graph = fixed_bridge_graph()
        rep = CollectingReporter(interval=100)
        count_states(graph, reporter=rep)
        checkers = {e.checker for e in rep.events}
        assert checkers == {"count-states"}
        rep2 = CollectingReporter(interval=100)
        find_state(graph, bridge_safety_prop(), reporter=rep2)
        assert rep2.events[0].checker == "find-state"
        assert rep2.events[-1].type == EVENT_RUN_FINISHED

    def test_engine_explore_stream(self):
        rep = CollectingReporter(interval=100)
        graph = fixed_bridge_graph()
        n = graph.explore(reporter=rep)
        assert n == len(graph.store)
        assert rep.events[0].checker == "engine-explore"
        assert rep.events[-1].data["states_stored"] == n


class TestSweepEventDelivery:
    """The acceptance-pinned property: parallel sweeps deliver the same
    event sequence as serial ones, in deterministic per-scenario order."""

    @pytest.fixture(autouse=True)
    def _force_parallel(self, monkeypatch):
        # The sweep pool is CPU-gated (1 CPU => serial fallback with a
        # warning event); this class pins the *pool's* event delivery,
        # so force it on regardless of the host's core count.
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")

    def _sweep_events(self, jobs):
        from repro.core import verify_resilience
        arch = fix_exactly_n_bridge(build_exactly_n_bridge())
        rep = CollectingReporter(interval=200)
        verify_resilience(
            arch, bridge_fault_scenarios(),
            invariants=[bridge_safety_prop()],
            fused=True, jobs=jobs, reporter=rep,
        )
        return rep.events

    def test_parallel_matches_serial_sequence(self):
        serial = self._sweep_events(jobs=1)
        parallel = self._sweep_events(jobs=2)
        # Wall-clock payload fields (elapsed, seconds, rates) differ;
        # everything deterministic must match exactly, in order.
        def key(events):
            return [
                (e.type, e.checker, e.scenario,
                 e.data.get("states_stored"), e.data.get("verdict"))
                for e in events
            ]
        assert key(serial) == key(parallel)

    def test_sweep_brackets_and_scenario_order(self):
        events = self._sweep_events(jobs=1)
        assert events[0].type == EVENT_SWEEP_STARTED
        assert events[-1].type == EVENT_SWEEP_FINISHED
        started = [e.scenario for e in events
                   if e.type == EVENT_SCENARIO_STARTED]
        finished = [e.scenario for e in events
                    if e.type == EVENT_SCENARIO_FINISHED]
        expected = ["baseline"] + [s.name for s in bridge_fault_scenarios()]
        assert started == expected
        assert finished == expected
        # every run event between a scenario's brackets carries its tag
        current = None
        for e in events[1:-1]:
            if e.type == EVENT_SCENARIO_STARTED:
                current = e.scenario
            elif e.type == EVENT_SCENARIO_FINISHED:
                current = None
            elif current is not None:
                assert e.scenario == current

"""RunReport: payload structure, persistence, byte-identical rendering."""

import json

from repro.core import verify_resilience, verify_safety
from repro.obs import CollectingReporter
from repro.obs.report import SCHEMA, RunReport
from repro.systems.bridge import (
    bridge_fault_scenarios,
    bridge_safety_prop,
    build_exactly_n_bridge,
    fix_exactly_n_bridge,
)


def _failing_run(reporter=None):
    """The paper's initial bridge design: fails its safety invariant."""
    arch = build_exactly_n_bridge()
    report = verify_safety(arch, invariants=[bridge_safety_prop()],
                           check_deadlock=False, fused=True,
                           reporter=reporter)
    system = arch.to_system(fused=True)
    return arch, system, report.result


def _passing_run():
    arch = fix_exactly_n_bridge(build_exactly_n_bridge())
    report = verify_safety(arch, invariants=[bridge_safety_prop()],
                           fused=True)
    return arch, system_of(arch), report.result


def system_of(arch):
    return arch.to_system(fused=True)


class TestVerificationReport:
    def test_payload_has_all_sections_for_a_failure(self):
        arch, system, result = _failing_run()
        run = RunReport.from_verification(arch, system, result)
        p = run.payload
        assert p["schema"] == SCHEMA
        assert p["kind"] == "verification"
        assert p["run"]["verdict"].startswith("FAIL")
        assert p["run"]["statistics"]["states_stored"] > 0
        assert p["run"]["trace"]["length"] == len(result.trace.steps)
        assert p["run"]["msc"]  # processes exchanged messages
        assert p["run"]["explanation"]  # block-level narration

    def test_passing_run_has_no_trace_sections(self):
        arch, system, result = _passing_run()
        run = RunReport.from_verification(arch, system, result)
        p = run.payload
        assert p["run"]["verdict"] == "PASS"
        assert p["run"]["trace"] is None
        assert p["run"]["msc"] is None

    def test_markdown_embeds_verdict_stats_msc_and_explanation(self):
        arch, system, result = _failing_run()
        md = RunReport.from_verification(arch, system, result).to_markdown()
        assert "## Verdict" in md
        assert "FAIL" in md
        assert "### Statistics" in md
        assert "states stored" in md
        assert "### Message sequence chart" in md
        assert "### Block-level explanation" in md

    def test_event_timeline_rendered_when_events_given(self):
        rep = CollectingReporter(interval=100)
        arch, system, result = _failing_run(reporter=rep)
        run = RunReport.from_verification(arch, system, result,
                                          events=rep.events)
        md = run.to_markdown()
        assert "## Event timeline" in md
        assert '"type":"run_started"' in md

    def test_save_load_rerenders_byte_identically(self, tmp_path):
        arch, system, result = _failing_run()
        run = RunReport.from_verification(arch, system, result,
                                          command="repro verify bridge")
        path = tmp_path / "out.json"
        run.save(str(path))
        reloaded = RunReport.load(str(path))
        assert reloaded.to_markdown() == run.to_markdown()
        assert reloaded.to_html() == run.to_html()
        assert reloaded.to_json() == run.to_json()

    def test_save_by_extension(self, tmp_path):
        arch, system, result = _failing_run()
        run = RunReport.from_verification(arch, system, result)
        md_path, html_path = tmp_path / "r.md", tmp_path / "r.html"
        run.save(str(md_path))
        run.save(str(html_path))
        assert md_path.read_text() == run.to_markdown()
        assert html_path.read_text().startswith("<!DOCTYPE html>")

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"hello": 1}))
        try:
            RunReport.load(str(path))
        except ValueError as exc:
            assert "schema" in str(exc)
        else:
            raise AssertionError("expected ValueError")

    def test_html_is_self_contained(self):
        arch, system, result = _failing_run()
        html = RunReport.from_verification(arch, system, result).to_html()
        assert "<style>" in html
        assert "http" not in html.split("</style>")[1]  # no external assets


class TestResilienceReport:
    def test_sweep_report_sections(self):
        arch = fix_exactly_n_bridge(build_exactly_n_bridge())
        sweep = verify_resilience(
            arch, bridge_fault_scenarios(),
            invariants=[bridge_safety_prop()], fused=True)
        run = RunReport.from_resilience(arch, sweep, fused=True)
        p = run.payload
        assert p["kind"] == "resilience"
        assert p["worst"] == sweep.worst
        assert [s["name"] for s in p["scenarios"]] == \
            [s.name for s in sweep.scenarios]
        md = run.to_markdown()
        assert "## Sweep verdict" in md
        assert "| scenario | verdict |" in md
        # degraded scenarios carry their deadlock trace into the report
        degraded = [s for s in p["scenarios"] if s["verdict"] == "degraded"]
        assert degraded and degraded[0]["trace"] is not None
        assert f"Scenario: {degraded[0]['name']}" in md

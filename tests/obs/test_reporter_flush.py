"""Pin JsonlReporter's flush contract (the serve streaming substrate).

The daemon's live event stream tails a job's ``events.jsonl`` while the
worker is still writing it, which only works if the reporter flushes as
it emits.  These tests pin per-event flushing as the default and the
``flush_every`` batching knob's exact semantics.
"""

import json

from repro.obs import JsonlReporter
from repro.obs.events import progress


def _event(n):
    return progress("safety-bfs", states_stored=n, states_expanded=n,
                    transitions=n, frontier=1, elapsed=0.5)


def _lines(path):
    with open(path, encoding="utf-8") as fh:
        return [line for line in fh if line.strip()]


class TestJsonlReporterFlush:
    def test_each_event_is_readable_before_close(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        reporter = JsonlReporter(path)
        try:
            for n in range(1, 4):
                reporter.emit(_event(n))
                # A concurrent tail (the serve event stream) must see
                # every event the moment emit() returns.
                assert len(_lines(path)) == n
        finally:
            reporter.close()
        assert json.loads(_lines(path)[0])["type"] == "progress"

    def test_flush_every_batches_but_close_flushes_the_tail(self,
                                                            tmp_path):
        path = str(tmp_path / "events.jsonl")
        reporter = JsonlReporter(path, flush_every=3)
        reporter.emit(_event(1))
        reporter.emit(_event(2))
        assert _lines(path) == []  # batched: nothing flushed yet
        reporter.emit(_event(3))
        assert len(_lines(path)) == 3  # the 3rd emit flushed the batch
        reporter.emit(_event(4))
        assert len(_lines(path)) == 3  # a new batch is buffering
        reporter.close()
        assert len(_lines(path)) == 4  # close never strands the tail

    def test_flush_every_floors_at_one(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        reporter = JsonlReporter(path, flush_every=0)
        try:
            reporter.emit(_event(1))
            assert len(_lines(path)) == 1
        finally:
            reporter.close()

    def test_stream_appends_across_reporters(self, tmp_path):
        # The serve job file is written by the parent (lifecycle events)
        # and then the worker's reporter: append mode, never truncate.
        path = str(tmp_path / "events.jsonl")
        for n in (1, 2):
            reporter = JsonlReporter(path)
            reporter.emit(_event(n))
            reporter.close()
        assert len(_lines(path)) == 2

"""Unit tests for engine events and the built-in reporters."""

import io
import json
import pickle

from repro.obs import (
    EVENT_COMPILE,
    EVENT_PHASE,
    EVENT_PROGRESS,
    EVENT_RUN_FINISHED,
    EVENT_RUN_STARTED,
    PHASE_COLD,
    PHASE_WARM,
    CollectingReporter,
    EngineEvent,
    JsonlReporter,
    NullReporter,
    ProgressReporter,
    ScenarioScope,
    TeeReporter,
)
from repro.obs.events import (
    RunInstrument,
    progress,
    run_started,
    scenario_finished,
    sweep_started,
)


class TestEngineEvent:
    def test_to_dict_flattens_payload(self):
        e = progress("safety-bfs", states_stored=10, states_expanded=8,
                     transitions=40, frontier=2, elapsed=0.5)
        d = e.to_dict()
        assert d["type"] == EVENT_PROGRESS
        assert d["checker"] == "safety-bfs"
        assert d["states_stored"] == 10
        assert d["states_per_second"] == 20.0
        assert "scenario" not in d

    def test_scenario_tag_serializes(self):
        e = scenario_finished("lossy", verdict="robust", detail="ok",
                              states_stored=5, seconds=0.1)
        assert e.to_dict()["scenario"] == "lossy"

    def test_events_are_picklable(self):
        e = run_started("safety-bfs", system="s", processes=3,
                        cache=PHASE_COLD, max_states=100)
        clone = pickle.loads(pickle.dumps(e))
        assert clone == e

    def test_payload_is_json_serializable(self):
        e = sweep_started("abp", scenarios=4, jobs=2)
        assert json.loads(json.dumps(e.to_dict()))["scenarios"] == 4


class TestReporters:
    def test_collecting_reporter_buffers_in_order(self):
        rep = CollectingReporter()
        events = [EngineEvent("a"), EngineEvent("b"), EngineEvent("c")]
        for e in events:
            rep.emit(e)
        assert rep.events == events

    def test_replay_into_re_emits_everything(self):
        src, dst = CollectingReporter(), CollectingReporter()
        src.emit(EngineEvent("a"))
        src.emit(EngineEvent("b"))
        src.replay_into(dst)
        assert dst.events == src.events
        src.replay_into(None)  # no-op, no crash

    def test_tee_broadcasts_and_takes_finest_interval(self):
        a = CollectingReporter(interval=100)
        b = CollectingReporter(interval=5000)
        tee = TeeReporter([a, b])
        assert tee.interval == 100
        tee.emit(EngineEvent("x"))
        assert len(a.events) == len(b.events) == 1

    def test_jsonl_reporter_writes_one_sorted_object_per_line(self):
        buf = io.StringIO()
        rep = JsonlReporter(buf)
        rep.emit(progress("c", states_stored=1, states_expanded=1,
                          transitions=2, frontier=1, elapsed=0.0))
        rep.emit(EngineEvent("run_finished", "c"))
        lines = buf.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["type"] == "progress"
        # keys sorted -> byte-stable logs
        assert lines[0] == json.dumps(first, sort_keys=True,
                                      separators=(",", ":"))

    def test_jsonl_reporter_owns_path_stream(self, tmp_path):
        path = tmp_path / "events.jsonl"
        rep = JsonlReporter(str(path))
        rep.emit(EngineEvent("a"))
        rep.close()
        assert path.read_text().strip() == '{"type":"a"}'

    def test_scenario_scope_tags_untagged_events_only(self):
        inner = CollectingReporter()
        scope = ScenarioScope(inner, "lossy")
        scope.emit(EngineEvent("a"))
        already = EngineEvent("b", scenario="other")
        scope.emit(already)
        assert inner.events[0].scenario == "lossy"
        assert inner.events[1].scenario == "other"

    def test_null_reporter_discards(self):
        NullReporter().emit(EngineEvent("a"))  # nothing to assert: no crash


class TestProgressReporter:
    def _events(self):
        return [
            run_started("safety-bfs", system="s", processes=2,
                        cache=PHASE_COLD, max_states=1000),
            progress("safety-bfs", states_stored=500, states_expanded=400,
                     transitions=900, frontier=10, elapsed=1.0),
            EngineEvent(EVENT_RUN_FINISHED, "safety-bfs", data={
                "ok": True, "verdict": "PASS", "states_stored": 900,
                "transitions": 2000, "elapsed": 2.0, "incomplete": False}),
        ]

    def test_non_tty_stream_gets_one_line_per_update(self):
        buf = io.StringIO()
        rep = ProgressReporter(stream=buf, min_seconds=0.0)
        for e in self._events():
            rep.emit(e)
        out = buf.getvalue()
        assert "\r" not in out
        assert "exploring s" in out
        assert "500 states" in out
        assert "ETA" in out  # max_states budget -> ETA shown
        assert "PASS" in out

    def test_phase_event_updates_badge(self):
        buf = io.StringIO()
        rep = ProgressReporter(stream=buf, min_seconds=0.0)
        rep.emit(run_started("c", system="s", processes=1, cache=PHASE_COLD))
        rep.emit(EngineEvent(EVENT_PHASE, "c", data={
            "from": PHASE_COLD, "to": PHASE_WARM, "states_expanded": 10}))
        rep.emit(progress("c", states_stored=10, states_expanded=10,
                          transitions=5, frontier=1, elapsed=0.1))
        assert "warm" in buf.getvalue().splitlines()[-1]


class TestRunInstrument:
    def _graph(self):
        from repro.mc.engine import StateGraph
        from repro.systems.bridge import (
            build_exactly_n_bridge,
            fix_exactly_n_bridge,
        )
        arch = fix_exactly_n_bridge(build_exactly_n_bridge())
        return StateGraph(arch.to_system(fused=True))

    def test_emits_run_started_on_construction(self):
        rep = CollectingReporter()
        graph = self._graph()
        RunInstrument(rep, "safety-bfs", graph)
        kinds = [e.type for e in rep.events]
        if graph.compile_stats is not None:
            # A compiled graph reports its codegen bill exactly once,
            # right after run_started.
            assert kinds == [EVENT_RUN_STARTED, EVENT_COMPILE]
        else:
            assert kinds == [EVENT_RUN_STARTED]
        assert rep.events[0].data["cache"] == PHASE_COLD

    def test_compile_event_is_one_shot_per_interpreter(self):
        graph = self._graph()
        if graph.compile_stats is None:
            return  # tree-walk fallback: nothing to report
        rep = CollectingReporter()
        RunInstrument(rep, "safety-bfs", graph)
        RunInstrument(rep, "count-states", graph)
        kinds = [e.type for e in rep.events]
        assert kinds.count(EVENT_COMPILE) == 1
        compile_event = next(e for e in rep.events
                             if e.type == EVENT_COMPILE)
        data = compile_event.data
        assert data["programs_compiled"] + data["compile_cache_hits"] > 0
        assert data["compile_seconds"] >= 0.0

    def test_tick_respects_reporter_interval(self):
        rep = CollectingReporter(interval=3)
        obs = RunInstrument(rep, "c", self._graph())
        for i in range(7):
            obs.tick(i + 1, i + 1, 0, 0)
        kinds = [e.type for e in rep.events]
        assert kinds.count(EVENT_PROGRESS) == 2  # ticks 3 and 6

    def test_warm_graph_starts_in_warm_phase(self):
        graph = self._graph()
        graph.explore()
        rep = CollectingReporter()
        RunInstrument(rep, "c", graph)
        assert rep.events[0].data["cache"] == PHASE_WARM

"""Shared fixtures for PnP-layer tests."""


from repro.mc import global_prop


def acked(i=0):
    return global_prop(f"acked_{i}_pos",
                       lambda v, i=i: v.global_(f"acked_{i}") > 0,
                       f"acked_{i}")


def consumed_exactly(j, n):
    return global_prop(
        f"consumed_{j}_{n}",
        lambda v, j=j, n=n: v.global_(f"consumed_{j}") == n,
        f"consumed_{j}",
    )


def final_counts(arch, fused=False):
    """Run safety exploration and return the set of terminal observable
    (acked_0, consumed_0) pairs reachable, by sampling quiescent states."""
    from repro.psl import Interpreter
    system = arch.to_system(fused=fused)
    interp = Interpreter(system)
    init = interp.initial_state()
    seen = {init}
    frontier = [init]
    terminals = set()
    gidx = system.global_index
    while frontier:
        state = frontier.pop()
        trans = interp.transitions(state)
        if not trans:
            terminals.add(
                (state.globals_[gidx["acked_0"]],
                 state.globals_[gidx["consumed_0"]])
            )
        for t in trans:
            if t.target not in seen:
                seen.add(t.target)
                frontier.append(t.target)
    return terminals

"""Tests for Architecture/Connector/Component: construction, validation,
plug-and-play revision, and elaboration structure."""

import pytest

from repro.core import (
    Architecture,
    ArchitectureError,
    AsynBlockingSend,
    BlockingReceive,
    Component,
    FifoQueue,
    ModelLibrary,
    NonblockingReceive,
    RECEIVE,
    SEND,
    SingleSlotBuffer,
    SynBlockingSend,
    send_message,
    receive_message,
)
from repro.psl.stmt import Seq, Skip


def sender_component(name="S"):
    return Component(name, ports={"out": SEND}, body=send_message("out", 1))


def receiver_component(name="R"):
    return Component(name, ports={"inp": RECEIVE},
                     body=receive_message("inp", into="m"),
                     local_vars={"m": 0})


def tiny_arch():
    arch = Architecture("tiny")
    s = arch.add_component(sender_component())
    r = arch.add_component(receiver_component())
    conn = arch.add_connector("c", SingleSlotBuffer())
    conn.attach_sender(s, "out", AsynBlockingSend())
    conn.attach_receiver(r, "inp", BlockingReceive())
    return arch


class TestComponent:
    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            Component("c", ports={"p": "sideways"}, body=Skip())

    def test_chan_params_derived_from_ports(self):
        c = sender_component()
        assert c.chan_params == ("out_sig", "out_data")

    def test_build_def_includes_interface_locals(self):
        d = receiver_component().build_def()
        assert "recv_status" in d.local_vars
        assert "send_status" in d.local_vars

    def test_modified_bumps_version_and_uid(self):
        c = sender_component()
        c2 = c.modified(body=Seq([send_message("out", 2)]))
        assert c2.version == c.version + 1
        assert c2.model_key() != c.model_key()

    def test_same_named_different_designs_have_distinct_keys(self):
        a = sender_component("X")
        b = Component("X", ports={"out": SEND}, body=send_message("out", 9))
        assert a.model_key() != b.model_key()


class TestConnectorValidation:
    def test_unknown_port_rejected(self):
        conn = Architecture("a").add_connector("c", SingleSlotBuffer())
        with pytest.raises(KeyError):
            conn.attach_sender(sender_component(), "nope", AsynBlockingSend())

    def test_direction_mismatch_rejected(self):
        conn = Architecture("a").add_connector("c", SingleSlotBuffer())
        with pytest.raises(ValueError, match="cannot attach"):
            conn.attach_sender(receiver_component(), "inp", AsynBlockingSend())

    def test_wrong_spec_type_rejected(self):
        conn = Architecture("a").add_connector("c", SingleSlotBuffer())
        with pytest.raises(TypeError):
            conn.attach_sender(sender_component(), "out", BlockingReceive())

    def test_double_attachment_rejected(self):
        conn = Architecture("a").add_connector("c", SingleSlotBuffer())
        s = sender_component()
        conn.attach_sender(s, "out", AsynBlockingSend())
        with pytest.raises(ValueError, match="already attached"):
            conn.attach_sender(s, "out", SynBlockingSend())

    def test_non_channelspec_rejected(self):
        with pytest.raises(TypeError):
            Architecture("a").add_connector("c", AsynBlockingSend())

    def test_describe_lists_blocks(self):
        arch = tiny_arch()
        text = arch.connector("c").describe()
        assert "asyn_blocking_send" in text
        assert "single_slot_buffer" in text


class TestSwaps:
    def test_swap_send_port(self):
        arch = tiny_arch()
        arch.swap_send_port("c", "S", SynBlockingSend())
        assert arch.connector("c").senders[0].spec == SynBlockingSend()

    def test_swap_receive_port(self):
        arch = tiny_arch()
        arch.swap_receive_port("c", "R", NonblockingReceive())
        assert arch.connector("c").receivers[0].spec == NonblockingReceive()

    def test_swap_channel(self):
        arch = tiny_arch()
        arch.swap_channel("c", FifoQueue(size=4))
        assert arch.connector("c").channel == FifoQueue(size=4)

    def test_swap_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            tiny_arch().swap_send_port("c", "Nobody", SynBlockingSend())

    def test_swap_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            tiny_arch().connector("c").swap_send_port("S", BlockingReceive())

    def test_swap_all_send_ports(self):
        arch = Architecture("multi")
        r = arch.add_component(receiver_component())
        conn = arch.add_connector("c", FifoQueue(size=2))
        for i in range(3):
            s = arch.add_component(sender_component(f"S{i}"))
            conn.attach_sender(s, "out", AsynBlockingSend())
        conn.attach_receiver(r, "inp", BlockingReceive())
        conn.swap_all_send_ports(SynBlockingSend())
        assert all(a.spec == SynBlockingSend() for a in conn.senders)

    def test_swaps_do_not_touch_components(self):
        arch = tiny_arch()
        before = {c.model_key() for c in arch.components.values()}
        arch.swap_send_port("c", "S", SynBlockingSend())
        arch.swap_channel("c", FifoQueue(size=2))
        after = {c.model_key() for c in arch.components.values()}
        assert before == after

    def test_replace_component(self):
        arch = tiny_arch()
        revised = arch.component("S").modified()
        arch.replace_component(revised)
        assert arch.component("S").version == 2


class TestArchitectureValidation:
    def test_duplicate_component_rejected(self):
        arch = Architecture("a")
        arch.add_component(sender_component())
        with pytest.raises(ArchitectureError, match="duplicate"):
            arch.add_component(sender_component())

    def test_duplicate_connector_rejected(self):
        arch = Architecture("a")
        arch.add_connector("c", SingleSlotBuffer())
        with pytest.raises(ArchitectureError, match="duplicate"):
            arch.add_connector("c", SingleSlotBuffer())

    def test_duplicate_global_rejected(self):
        arch = Architecture("a")
        arch.add_global("g")
        with pytest.raises(ArchitectureError):
            arch.add_global("g")

    def test_unattached_port_rejected(self):
        arch = Architecture("a")
        arch.add_component(sender_component())
        with pytest.raises(ArchitectureError, match="not attached"):
            arch.validate()

    def test_port_attached_twice_across_connectors_rejected(self):
        arch = Architecture("a")
        s = arch.add_component(sender_component())
        r = arch.add_component(receiver_component())
        c1 = arch.add_connector("c1", SingleSlotBuffer())
        c2 = arch.add_connector("c2", SingleSlotBuffer())
        c1.attach_sender(s, "out", AsynBlockingSend())
        c2.attach_sender(s, "out", AsynBlockingSend())
        c1.attach_receiver(r, "inp", BlockingReceive())
        with pytest.raises(ArchitectureError, match="attached to both"):
            arch.validate()

    def test_connector_without_receiver_rejected(self):
        arch = Architecture("a")
        s = arch.add_component(sender_component())
        conn = arch.add_connector("c", SingleSlotBuffer())
        conn.attach_sender(s, "out", AsynBlockingSend())
        with pytest.raises(ArchitectureError, match="at least one"):
            arch.to_system()


class TestElaboration:
    def test_process_naming_scheme(self):
        system = tiny_arch().to_system()
        names = {i.name for i in system.instances}
        assert names == {"S", "R", "c.channel", "c.S.out.port", "c.R.inp.port"}

    def test_channel_naming_scheme(self):
        system = tiny_arch().to_system()
        names = {c.name for c in system.channels}
        assert "c.snd_sig" in names
        assert "c.snd_data" in names
        assert "c.S.out_data" in names

    def test_internal_store_created_for_fifo(self):
        arch = tiny_arch()
        arch.swap_channel("c", FifoQueue(size=3))
        system = arch.to_system()
        store = system.channel_by_name("c.store")
        assert store.capacity == 3

    def test_globals_transferred(self):
        arch = tiny_arch()
        arch.add_global("counter", 5)
        system = arch.to_system()
        assert system.global_vars["counter"] == 5

    def test_signal_channels_buffered_data_rendezvous(self):
        system = tiny_arch().to_system()
        assert system.channel_by_name("c.snd_sig").is_buffered
        assert system.channel_by_name("c.snd_data").is_rendezvous
        assert system.channel_by_name("c.S.out_sig").is_rendezvous

    def test_elaboration_is_repeatable(self):
        arch = tiny_arch()
        s1 = arch.to_system()
        s2 = arch.to_system()
        assert s1.initial_state() == s2.initial_state()

    def test_library_reuse_across_elaborations(self):
        lib = ModelLibrary()
        arch = tiny_arch()
        arch.to_system(lib)
        misses_first = lib.stats.misses
        arch.to_system(lib)
        assert lib.stats.misses == misses_first  # everything cached

    def test_describe(self):
        text = tiny_arch().describe()
        assert "architecture tiny" in text
        assert "S" in text and "R" in text

"""Tests for the fused connector models (Section 6 optimization).

The central obligation: fused models must give the SAME verification
verdicts as the composed block models, while exploring fewer states.
"""

import pytest

from repro.core import (
    AsynBlockingSend,
    AsynCheckingSend,
    AsynNonblockingSend,
    BlockingReceive,
    DroppingBuffer,
    FifoQueue,
    FusedUnsupported,
    ModelLibrary,
    NonblockingReceive,
    PriorityQueue,
    SingleSlotBuffer,
    SynBlockingSend,
    SynCheckingSend,
    build_fused_def,
    fused_key,
)
from repro.mc import check_safety, count_states, find_state, global_prop
from repro.systems.producer_consumer import (
    ConsumerSpec,
    ProducerSpec,
    build_producer_consumer,
    simple_pair,
)

SEND_PORTS = [
    AsynBlockingSend(), AsynNonblockingSend(), AsynCheckingSend(),
    SynBlockingSend(), SynCheckingSend(),
]
CHANNELS = [SingleSlotBuffer(), FifoQueue(size=2), DroppingBuffer(size=1)]


def verdict(arch, fused):
    r = check_safety(arch.to_system(fused=fused), check_deadlock=True)
    return r.ok


class TestVerdictEquivalence:
    @pytest.mark.parametrize("send_port", SEND_PORTS,
                             ids=lambda s: s.kind)
    @pytest.mark.parametrize("channel", CHANNELS,
                             ids=lambda c: c.display_name())
    def test_send_port_channel_matrix(self, send_port, channel):
        def build():
            return simple_pair(send_port, channel, messages=2, receives=2,
                               max_attempts=0)
        assert verdict(build(), fused=False) == verdict(build(), fused=True)

    @pytest.mark.parametrize("recv_port", [
        BlockingReceive(remove=True),
        BlockingReceive(remove=False),
        NonblockingReceive(remove=True),
    ], ids=lambda s: s.display_name())
    def test_receive_port_variants(self, recv_port):
        def build():
            return simple_pair(
                AsynBlockingSend(), SingleSlotBuffer(), recv_port=recv_port,
                messages=1, receives=1, max_attempts=2,
            )
        assert verdict(build(), fused=False) == verdict(build(), fused=True)

    def test_priority_queue_order_preserved(self):
        def build():
            return build_producer_consumer(
                producers=[
                    ProducerSpec(messages=1, payload_base=10, tag=1,
                                 port=AsynBlockingSend()),
                    ProducerSpec(messages=1, payload_base=20, tag=0,
                                 port=AsynBlockingSend()),
                ],
                channel=PriorityQueue(size=2, levels=2),
                consumers=[ConsumerSpec(receives=2, start_after_acks=True)],
            )
        from repro.mc import prop
        low_first = prop(
            "low_first",
            lambda v: v.global_("consumed_0") == 1 and v.global_("last_0") == 10,
        )
        assert find_state(build().to_system(fused=True), low_first) is None
        done = global_prop("done", lambda v: v.global_("consumed_0") == 2,
                           "consumed_0")
        assert find_state(build().to_system(fused=True), done) is not None

    def test_multi_sender_multi_receiver(self):
        def build():
            return build_producer_consumer(
                producers=[ProducerSpec(messages=1, port=SynBlockingSend()),
                           ProducerSpec(messages=1, port=AsynBlockingSend())],
                channel=FifoQueue(size=2),
                consumers=[ConsumerSpec(receives=1), ConsumerSpec(receives=1)],
            )
        assert verdict(build(), fused=False) == verdict(build(), fused=True)

    def test_observable_outcomes_match(self):
        """Terminal (acked, consumed) pairs identical composed vs fused."""
        from .conftest import final_counts
        def build():
            return simple_pair(AsynNonblockingSend(), SingleSlotBuffer(),
                               messages=2, receives=2, max_attempts=4)
        composed = final_counts(build(), fused=False)
        fused = final_counts(build(), fused=True)
        assert composed == fused


class TestReduction:
    def test_fused_explores_fewer_states(self):
        def build():
            return simple_pair(SynBlockingSend(), FifoQueue(size=2), messages=2)
        n_composed = count_states(build().to_system(fused=False)).states_stored
        n_fused = count_states(build().to_system(fused=True)).states_stored
        assert n_fused < n_composed / 2

    def test_reduction_grows_with_concurrency(self):
        """With two connectors running concurrently the factor multiplies."""
        from repro.systems.rpc import build_rpc
        n_composed = count_states(build_rpc(clients=1, calls_each=2)
                                  .to_system(fused=False)).states_stored
        n_fused = count_states(build_rpc(clients=1, calls_each=2)
                               .to_system(fused=True)).states_stored
        assert n_fused < n_composed / 4

    def test_fused_has_fewer_processes(self):
        arch = simple_pair(SynBlockingSend(), FifoQueue(size=2))
        composed = arch.to_system(fused=False)
        arch2 = simple_pair(SynBlockingSend(), FifoQueue(size=2))
        fused = arch2.to_system(fused=True)
        assert len(fused.instances) < len(composed.instances)


class TestFusedStructure:
    def test_fused_key_covers_structure(self):
        a1 = simple_pair(SynBlockingSend(), FifoQueue(size=2))
        a2 = simple_pair(SynBlockingSend(), FifoQueue(size=2))
        assert fused_key(a1.connector("link")) == fused_key(a2.connector("link"))
        a3 = simple_pair(AsynBlockingSend(), FifoQueue(size=2))
        assert fused_key(a1.connector("link")) != fused_key(a3.connector("link"))

    def test_fused_model_cached(self):
        lib = ModelLibrary()
        a1 = simple_pair(SynBlockingSend(), FifoQueue(size=2))
        a1.to_system(lib, fused=True)
        misses = lib.stats.misses
        a2 = simple_pair(SynBlockingSend(), FifoQueue(size=2))
        a2.to_system(lib, fused=True)
        # the fused connector model is reused; only new component models build
        new_misses = lib.stats.misses - misses
        assert new_misses == 2  # the two fresh components

    def test_unsupported_copy_with_sync_deep_queue(self):
        arch = simple_pair(
            SynBlockingSend(), FifoQueue(size=2),
            recv_port=BlockingReceive(remove=False), messages=1,
        )
        with pytest.raises(FusedUnsupported):
            build_fused_def(arch.connector("link"))

    def test_unsupported_falls_back_to_composed(self):
        arch = simple_pair(
            SynBlockingSend(), FifoQueue(size=2),
            recv_port=BlockingReceive(remove=False), messages=1,
        )
        system = arch.to_system(fused=True)  # no exception
        names = {i.name for i in system.instances}
        assert "link.channel" in names  # composed encoding used

    def test_copy_with_sync_single_slot_supported(self):
        arch = simple_pair(
            SynBlockingSend(), SingleSlotBuffer(),
            recv_port=BlockingReceive(remove=False), messages=1, receives=2,
        )
        build_fused_def(arch.connector("link"))  # no exception


class TestDroppingDiagnosis:
    def test_sync_sender_with_dropping_buffer_hangs(self):
        """The paper's Section 6 scenario: a dropped message leaves the
        synchronous sender waiting forever -> invalid end state."""
        arch = build_producer_consumer(
            producers=[ProducerSpec(messages=2, port=SynBlockingSend())],
            channel=DroppingBuffer(size=1),
            consumers=[ConsumerSpec(receives=1)],
        )
        r = check_safety(arch.to_system(fused=True), check_deadlock=True)
        assert not r.ok
        assert r.kind == "deadlock"

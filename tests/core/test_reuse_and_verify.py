"""Tests for design-time verification wrappers and reuse accounting."""


from repro.core import (
    AsynBlockingSend,
    DesignIterationLog,
    ModelLibrary,
    SingleSlotBuffer,
    SynBlockingSend,
    verify_ltl,
    verify_safety,
)
from repro.mc import global_prop
from repro.systems.bridge import (
    BridgeConfig,
    bridge_safety_prop,
    build_exactly_n_bridge,
    fix_exactly_n_bridge,
)
from repro.systems.producer_consumer import simple_pair


class TestVerifySafety:
    def test_report_carries_result(self):
        report = verify_safety(simple_pair(SynBlockingSend(), SingleSlotBuffer()))
        assert report.ok
        assert bool(report)
        assert report.result.stats.states_stored > 0

    def test_report_counts_models(self):
        report = verify_safety(simple_pair(SynBlockingSend(), SingleSlotBuffer()))
        # 2 components + 2 ports + 1 channel = 5 fresh models
        assert report.models_built == 5
        assert report.models_reused == 0

    def test_second_run_reuses_everything(self):
        lib = ModelLibrary()
        arch = simple_pair(SynBlockingSend(), SingleSlotBuffer())
        verify_safety(arch, library=lib)
        report = verify_safety(arch, library=lib)
        assert report.models_built == 0
        assert report.models_reused == 5

    def test_swap_rebuilds_only_the_new_block(self):
        lib = ModelLibrary()
        arch = simple_pair(AsynBlockingSend(), SingleSlotBuffer())
        verify_safety(arch, library=lib)
        arch.swap_send_port("link", "Producer0", SynBlockingSend())
        report = verify_safety(arch, library=lib)
        assert report.models_built == 1
        assert report.models_reused == 4

    def test_por_mode(self):
        report = verify_safety(
            simple_pair(SynBlockingSend(), SingleSlotBuffer()), use_por=True)
        assert report.ok

    def test_summary_text(self):
        report = verify_safety(simple_pair(SynBlockingSend(), SingleSlotBuffer()))
        assert "reused" in report.summary()
        assert "built" in report.summary()


class TestVerifyLtl:
    def test_ltl_on_architecture(self):
        arch = simple_pair(SynBlockingSend(), SingleSlotBuffer())
        done = global_prop("done", lambda v: v.global_("consumed_0") == 1,
                           "consumed_0")
        # every complete execution eventually consumes the message
        report = verify_ltl(arch, "F done", {"done": done})
        assert report.ok

    def test_ltl_violation(self):
        arch = simple_pair(SynBlockingSend(), SingleSlotBuffer())
        done = global_prop("done", lambda v: v.global_("consumed_0") == 1,
                           "consumed_0")
        report = verify_ltl(arch, "G done", {"done": done})
        assert not report.ok
        assert report.result.trace is not None


class TestDesignIterationLog:
    def _bridge_iterations(self, fused=True):
        cfg = BridgeConfig(cars_per_side=1, n_per_turn=1, trips=1)
        log = DesignIterationLog()
        arch = build_exactly_n_bridge(cfg)
        safety = bridge_safety_prop()
        log.run("initial (async enter sends)", arch, invariants=[safety],
                fused=fused)
        fix_exactly_n_bridge(arch)
        log.run("fix: sync enter sends", arch, invariants=[safety],
                fused=fused)
        return log

    def test_bridge_fail_then_pass(self):
        log = self._bridge_iterations()
        assert not log.iterations[0].report.ok
        assert log.iterations[1].report.ok

    def test_components_never_rebuilt_after_first(self):
        """The paper's headline reuse claim."""
        log = self._bridge_iterations()
        assert log.component_rebuilds_after_first() == 0

    def test_second_iteration_mostly_reused(self):
        log = self._bridge_iterations()
        second = log.iterations[1]
        assert second.models_reused > second.models_built

    def test_table_renders(self):
        log = self._bridge_iterations()
        table = log.table()
        assert "initial (async enter sends)" in table
        assert "FAIL" in table and "PASS" in table

    def test_overall_ratio(self):
        log = self._bridge_iterations()
        assert 0.0 < log.overall_reuse_ratio() < 1.0

    def test_iteration_summary(self):
        log = self._bridge_iterations()
        assert "reuse" in log.iterations[1].summary()

"""Semantic tests for the send/receive port building blocks (Figure 1).

Each test pins down the one-line semantics the paper's Figure 1 table
promises, observed through the standard component interface.
"""


from repro.core import (
    AsynBlockingSend,
    AsynCheckingSend,
    AsynNonblockingSend,
    BlockingReceive,
    FifoQueue,
    NonblockingReceive,
    SingleSlotBuffer,
    SynBlockingSend,
    SynCheckingSend,
)
from repro.mc import check_safety, find_state, global_prop, prop
from repro.systems.producer_consumer import simple_pair


def delivered_to_port_prop(value):
    """The receive port has picked the payload up from the channel."""
    return prop(
        "delivered",
        lambda v: v.local("link.Consumer0.inp.port", "d_data") == value,
        globals_read=[],
        locals_read=["link.Consumer0.inp.port"],
    )


ACKED = global_prop("acked", lambda v: v.global_("acked_0") == 1, "acked_0")


class TestSynchronousBlockingSend:
    def test_ack_only_after_port_delivery(self):
        """Fig. 4(b): SEND_SUCC comes after the receiver got the message."""
        arch = simple_pair(SynBlockingSend(), SingleSlotBuffer(), messages=1)
        system = arch.to_system()
        undelivered_ack = prop(
            "ack_before_delivery",
            lambda v: (v.global_("acked_0") == 1
                       and v.local("link.Consumer0.inp.port", "d_data") != 10),
        )
        assert find_state(system, undelivered_ack) is None

    def test_completes_without_deadlock(self):
        arch = simple_pair(SynBlockingSend(), SingleSlotBuffer(), messages=2)
        assert check_safety(arch.to_system())

    def test_all_messages_arrive(self):
        arch = simple_pair(SynBlockingSend(), FifoQueue(size=2), messages=2)
        done = global_prop(
            "done", lambda v: v.global_("consumed_0") == 2, "consumed_0")
        assert find_state(arch.to_system(), done) is not None


class TestAsynchronousBlockingSend:
    def test_ack_may_precede_delivery(self):
        """Fig. 4(a): SEND_SUCC may arrive while the message sits in the
        channel, before any receiver has it."""
        arch = simple_pair(AsynBlockingSend(), SingleSlotBuffer(), messages=1)
        system = arch.to_system()
        undelivered_ack = prop(
            "ack_before_delivery",
            lambda v: (v.global_("acked_0") == 1
                       and v.local("link.Consumer0.inp.port", "d_data") != 10),
        )
        assert find_state(system, undelivered_ack) is not None

    def test_never_reports_failure(self):
        arch = simple_pair(AsynBlockingSend(), SingleSlotBuffer(), messages=3)
        failed = global_prop(
            "failed",
            lambda v: v.global_("produced_0") > v.global_("acked_0")
            and v.local("Producer0", "send_status") == "SEND_FAIL",
            "produced_0", "acked_0",
        )
        # blocking send retries; SEND_FAIL is impossible
        sf = prop("sf", lambda v: v.local("Producer0", "send_status") == "SEND_FAIL")
        assert find_state(arch.to_system(), sf) is None

    def test_no_message_loss(self):
        arch = simple_pair(AsynBlockingSend(), SingleSlotBuffer(), messages=3)
        assert check_safety(arch.to_system())  # consumer gets all three


class TestAsynchronousNonblockingSend:
    def test_confirms_immediately_even_unforwarded(self):
        arch = simple_pair(AsynNonblockingSend(), SingleSlotBuffer(), messages=1)
        # acked while the channel is still empty and nothing delivered
        early_ack = prop(
            "early_ack",
            lambda v: (v.global_("acked_0") == 1
                       and v.chan_len("link.snd_data") == 0
                       and v.local("link.channel", "buffer_empty") == 1),
        )
        assert find_state(arch.to_system(), early_ack) is not None

    def test_message_can_be_lost(self):
        """Two fast sends into a single slot: the second may vanish."""
        arch = simple_pair(AsynNonblockingSend(), SingleSlotBuffer(),
                           messages=2, receives=2)
        # a run where producer finished but only one message ever arrives:
        lost = prop(
            "lost",
            lambda v: (v.global_("acked_0") == 2
                       and v.global_("consumed_0") == 0
                       and v.local("link.channel", "buffer_empty") == 0
                       and v.chan_len("link.snd_data") == 0),
        )
        # acked twice yet only one message exists anywhere => one was lost
        assert find_state(arch.to_system(), lost) is not None


class TestCheckingSends:
    def test_asyn_checking_reports_failure_when_full(self):
        arch = simple_pair(AsynCheckingSend(), SingleSlotBuffer(),
                           messages=2, receives=2)
        failed = prop(
            "sfail",
            lambda v: v.local("Producer0", "send_status") == "SEND_FAIL",
        )
        assert find_state(arch.to_system(), failed) is not None

    def test_asyn_checking_succeeds_when_space(self):
        arch = simple_pair(AsynCheckingSend(), SingleSlotBuffer(), messages=1)
        ok = global_prop("ok", lambda v: v.global_("acked_0") == 1, "acked_0")
        assert find_state(arch.to_system(), ok) is not None

    def test_syn_checking_waits_for_delivery_on_success(self):
        arch = simple_pair(SynCheckingSend(), SingleSlotBuffer(), messages=1)
        undelivered_ack = prop(
            "ack_before_delivery",
            lambda v: (v.global_("acked_0") == 1
                       and v.local("link.Consumer0.inp.port", "d_data") != 10),
        )
        assert find_state(arch.to_system(), undelivered_ack) is None


class TestBlockingReceive:
    def test_never_reports_failure(self):
        arch = simple_pair(SynBlockingSend(), SingleSlotBuffer(), messages=2)
        rf = prop("rf", lambda v: v.local("Consumer0", "recv_status") == "RECV_FAIL")
        assert find_state(arch.to_system(), rf) is None

    def test_copy_receive_leaves_message(self):
        arch = simple_pair(
            AsynBlockingSend(), SingleSlotBuffer(),
            recv_port=BlockingReceive(remove=False), messages=1, receives=2,
        )
        # consumer can receive the same message twice (copy semantics)
        twice = global_prop(
            "twice", lambda v: v.global_("consumed_0") == 2, "consumed_0")
        assert find_state(arch.to_system(), twice) is not None

    def test_remove_receive_consumes(self):
        arch = simple_pair(
            AsynBlockingSend(), SingleSlotBuffer(),
            recv_port=BlockingReceive(remove=True), messages=1, receives=2,
        )
        twice = global_prop(
            "twice", lambda v: v.global_("consumed_0") == 2, "consumed_0")
        # only one message exists; a remove-receive cannot deliver it twice
        assert find_state(arch.to_system(), twice) is None


class TestNonblockingReceive:
    def test_reports_failure_on_empty(self):
        arch = simple_pair(
            SynBlockingSend(), SingleSlotBuffer(),
            recv_port=NonblockingReceive(), messages=1, receives=1,
            max_attempts=3,
        )
        rf = prop("rf", lambda v: v.local("Consumer0", "recv_status") == "RECV_FAIL")
        assert find_state(arch.to_system(), rf) is not None

    def test_can_still_succeed(self):
        arch = simple_pair(
            SynBlockingSend(), SingleSlotBuffer(),
            recv_port=NonblockingReceive(), messages=1, receives=1,
            max_attempts=3,
        )
        got = global_prop("got", lambda v: v.global_("consumed_0") == 1,
                          "consumed_0")
        assert find_state(arch.to_system(), got) is not None

    def test_stub_message_not_counted(self):
        """A RECV_FAIL delivery must not increment the consumed count."""
        arch = simple_pair(
            SynBlockingSend(), SingleSlotBuffer(),
            recv_port=NonblockingReceive(), messages=1, receives=1,
            max_attempts=2,
        )
        overcount = prop(
            "overcount",
            lambda v: v.global_("consumed_0") > v.global_("produced_0"),
            globals_read=["consumed_0", "produced_0"], locals_read=[],
        )
        assert find_state(arch.to_system(), overcount) is None


class TestSpecIdentity:
    def test_kinds_are_distinct(self):
        kinds = {s.kind for s in (
            AsynBlockingSend(), AsynNonblockingSend(), AsynCheckingSend(),
            SynBlockingSend(), SynCheckingSend(),
        )}
        assert len(kinds) == 5

    def test_keys_distinguish_remove_flag(self):
        assert BlockingReceive(remove=True).key() != BlockingReceive(remove=False).key()

    def test_display_names(self):
        assert "copy" in BlockingReceive(remove=False).display_name()
        assert "remove" in NonblockingReceive(remove=True).display_name()

    def test_descriptions_present(self):
        for spec in (AsynBlockingSend(), BlockingReceive()):
            assert len(spec.description) > 20

"""Tests for the block catalog (library) and the model cache (spec)."""

import pytest

from repro.core import (
    AsynBlockingSend,
    BlockingReceive,
    FifoQueue,
    ModelLibrary,
    SingleSlotBuffer,
    block_kinds,
    catalog,
    figure1_table,
    make_block,
)
from repro.core.spec import LibraryStats


class TestCatalog:
    def test_all_seventeen_kinds_present(self):
        kinds = block_kinds()
        assert len(kinds) == 17
        for expected in (
            "asyn_nonblocking_send", "asyn_blocking_send", "asyn_checking_send",
            "syn_blocking_send", "syn_checking_send",
            "blocking_receive", "nonblocking_receive",
            "single_slot_buffer", "fifo_queue", "priority_queue",
            "dropping_buffer",
            # fault injection and fault tolerance
            "lossy_channel", "duplicating_channel", "reordering_channel",
            "corrupting_channel", "retry_send", "timeout_receive",
        ):
            assert expected in kinds

    def test_catalog_entries_have_descriptions(self):
        for spec in catalog():
            assert spec.description, f"{spec.kind} lacks a description"

    def test_catalog_covers_all_roles(self):
        roles = {spec.role for spec in catalog()}
        assert roles == {"send_port", "receive_port", "channel"}

    def test_figure1_table_renders(self):
        text = figure1_table()
        assert "Send ports" in text
        assert "Receive ports" in text
        assert "Channels" in text
        assert "syn_blocking_send" in text

    def test_every_catalog_block_builds_a_model(self):
        for spec in catalog():
            model = spec.build_def()
            assert model.automaton.n_locations > 0


class TestMakeBlock:
    def test_parameterless(self):
        assert make_block("asyn_blocking_send") == AsynBlockingSend()

    def test_with_params(self):
        assert make_block("fifo_queue", size=5) == FifoQueue(size=5)

    def test_receive_variants(self):
        assert make_block("blocking_receive", remove=False) == \
            BlockingReceive(remove=False)

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError, match="unknown block kind"):
            make_block("teleporter")


class TestModelLibrary:
    def test_miss_then_hit(self):
        lib = ModelLibrary()
        m1 = lib.get(AsynBlockingSend())
        assert lib.stats.misses == 1 and lib.stats.hits == 0
        m2 = lib.get(AsynBlockingSend())
        assert m2 is m1
        assert lib.stats.hits == 1

    def test_distinct_params_distinct_models(self):
        lib = ModelLibrary()
        a = lib.get(FifoQueue(size=1))
        b = lib.get(FifoQueue(size=2))
        assert a is not b
        assert lib.stats.misses == 2

    def test_equal_specs_share_model(self):
        lib = ModelLibrary()
        assert lib.get(FifoQueue(size=3)) is lib.get(FifoQueue(size=3))

    def test_custom_keys(self):
        lib = ModelLibrary()
        from repro.psl import ProcessDef, Skip
        built = []

        def builder():
            built.append(1)
            return ProcessDef("x", Skip())

        lib.get_custom("k", builder)
        lib.get_custom("k", builder)
        assert built == [1]

    def test_custom_and_block_keys_do_not_collide(self):
        lib = ModelLibrary()
        from repro.psl import ProcessDef, Skip
        lib.get(AsynBlockingSend())
        lib.get_custom(AsynBlockingSend().key(), lambda: ProcessDef("y", Skip()))
        assert len(lib) == 2

    def test_len_and_snapshot(self):
        lib = ModelLibrary()
        lib.get(SingleSlotBuffer())
        lib.get(SingleSlotBuffer())
        assert len(lib) == 1
        assert lib.snapshot() == (1, 1, 1)

    def test_built_keys_recorded_in_order(self):
        lib = ModelLibrary()
        lib.get(AsynBlockingSend())
        lib.get(SingleSlotBuffer())
        assert len(lib.stats.built_keys) == 2

    def test_reuse_ratio(self):
        stats = LibraryStats(hits=3, misses=1)
        assert stats.reuse_ratio == 0.75
        assert LibraryStats().reuse_ratio == 0.0

"""Tests for the resilience verification harness (fault sweeps)."""

import pytest

from repro.core import (
    BROKEN,
    DEGRADED,
    ROBUST,
    UNKNOWN,
    ChannelFault,
    DuplicatingChannel,
    FaultScenario,
    LossyChannel,
    ModelLibrary,
    ReceivePortFault,
    ReorderingChannel,
    TimeoutReceive,
    verify_resilience,
)
from repro.systems.abp import abp_delivery_prop, build_abp
from repro.systems.bridge import (
    bridge_fault_scenarios,
    bridge_safety_prop,
    build_exactly_n_bridge,
    fix_exactly_n_bridge,
)


def small_abp():
    """The smallest ABP instance that still exercises every fault path."""
    return build_abp(messages=1, max_sends=2, receiver_polls=2)


class TestFaultDescriptors:
    def test_scenario_does_not_mutate_original(self):
        arch = small_abp()
        before = arch.connector("DataLink").channel
        scenario = FaultScenario(
            "lossy", [ChannelFault("DataLink", LossyChannel())])
        faulty = scenario.apply_to(arch)
        assert arch.connector("DataLink").channel is before
        assert isinstance(faulty.connector("DataLink").channel, LossyChannel)

    def test_bare_fault_becomes_named_scenario(self):
        arch = small_abp()
        report = verify_resilience(
            arch, faults=[ChannelFault("DataLink", LossyChannel())],
            check_deadlock=False, fused=True, max_states=100,
            include_baseline=False)
        assert len(report.scenarios) == 1
        assert "lossy_channel" in report.scenarios[0].name

    def test_unknown_connector_rejected(self):
        arch = small_abp()
        with pytest.raises(KeyError):
            verify_resilience(
                arch, faults=[ChannelFault("NoSuchLink", LossyChannel())],
                check_deadlock=False, include_baseline=False)


class TestAbpRobustness:
    def test_robust_under_loss_and_duplication(self):
        # The protocol's whole point: retransmission + the alternating
        # bit defeat loss and duplication.  In-order exactly-once
        # delivery (the receiver's assertion) survives, and complete
        # delivery stays reachable.
        library = ModelLibrary()
        report = verify_resilience(
            small_abp(),
            faults=[
                FaultScenario("loss",
                              [ChannelFault("DataLink", LossyChannel())]),
                FaultScenario("dup",
                              [ChannelFault("DataLink",
                                            DuplicatingChannel(size=2))]),
            ],
            goal=abp_delivery_prop(messages=1),
            check_deadlock=False,  # bounded polls terminate by design
            library=library,
            fused=True,
        )
        assert report.ok and report.complete
        assert report.worst == ROBUST
        for scenario in report:
            assert scenario.verdict == ROBUST

    def test_robust_under_reordering(self):
        report = verify_resilience(
            small_abp(),
            faults=[ChannelFault("DataLink", ReorderingChannel(size=2))],
            goal=abp_delivery_prop(messages=1),
            check_deadlock=False,
            include_baseline=False,
            fused=True,
        )
        assert report.worst == ROBUST

    def test_scenarios_reuse_cached_models(self):
        # After the baseline, every scenario should hit the cache for the
        # unchanged blocks (ack link, ports, sender, receiver).
        library = ModelLibrary()
        report = verify_resilience(
            small_abp(),
            faults=[ChannelFault("DataLink", LossyChannel())],
            check_deadlock=False, library=library, fused=True,
            max_states=2000,
        )
        after_baseline = report.scenarios[1:]
        assert after_baseline
        for scenario in after_baseline:
            assert scenario.models_reused >= 1


class TestBridgeResilience:
    def test_unfixed_bridge_is_broken_with_trace(self):
        report = verify_resilience(
            build_exactly_n_bridge(),
            faults=[],
            invariants=[bridge_safety_prop()],
            check_deadlock=False,
            fused=True,
        )
        scenario = report.scenario("baseline")
        assert scenario.verdict == BROKEN
        assert scenario.trace is not None and len(scenario.trace) > 0
        assert not report.ok

    def test_timeout_receive_degrades_fixed_bridge(self):
        # A spurious receive timeout wastes a grant; safety holds but a
        # waiting car starves — the characteristic DEGRADED outcome.
        arch = fix_exactly_n_bridge(build_exactly_n_bridge())
        report = verify_resilience(
            arch,
            faults=[FaultScenario("flaky enter_req", [
                ReceivePortFault("BlueEnter", "BlueController",
                                 TimeoutReceive()),
            ])],
            invariants=[bridge_safety_prop()],
            fused=True,
        )
        assert report.scenario("baseline").verdict == ROBUST
        flaky = report.scenario("flaky enter_req")
        assert flaky.verdict == DEGRADED
        assert "liveness lost" in flaky.detail
        assert flaky.trace is not None  # the deadlocking execution
        assert report.ok  # degraded still counts as no safety break

    def test_deadlock_can_be_fatal(self):
        arch = fix_exactly_n_bridge(build_exactly_n_bridge())
        report = verify_resilience(
            arch,
            faults=bridge_fault_scenarios()[:1],
            invariants=[bridge_safety_prop()],
            deadlock_is_fatal=True,
            include_baseline=False,
            fused=True,
        )
        assert report.scenarios[0].verdict == BROKEN


class TestBudgets:
    def test_exhausted_budget_yields_unknown(self):
        report = verify_resilience(
            small_abp(),
            faults=[ChannelFault("DataLink", LossyChannel())],
            check_deadlock=False, fused=True, max_states=50,
        )
        assert all(s.verdict == UNKNOWN for s in report)
        assert not report.complete
        assert "incomplete" in report.table()

    def test_unknown_does_not_break_ok(self):
        report = verify_resilience(
            small_abp(),
            faults=[ChannelFault("DataLink", LossyChannel())],
            check_deadlock=False, fused=True, max_states=50,
        )
        assert report.ok  # nothing proven broken


class TestReportRendering:
    def test_table_lists_scenarios_and_verdicts(self):
        report = verify_resilience(
            build_exactly_n_bridge(),
            faults=[],
            invariants=[bridge_safety_prop()],
            check_deadlock=False,
            fused=True,
        )
        table = report.table()
        assert "baseline" in table
        assert "BROKEN" in table
        assert "overall: BROKEN" in table

    def test_scenario_lookup_by_name(self):
        report = verify_resilience(
            small_abp(), faults=[], check_deadlock=False, fused=True,
            max_states=100)
        assert report.scenario("baseline").name == "baseline"
        with pytest.raises(KeyError):
            report.scenario("nonexistent")

    def test_summary_mentions_model_accounting(self):
        report = verify_resilience(
            small_abp(), faults=[], check_deadlock=False, fused=True,
            max_states=100)
        assert "models:" in report.scenarios[0].summary()

"""Property-based equivalence: fused connectors vs composed blocks.

For randomly drawn connector configurations, the set of *terminal
observable outcomes* — which sends were confirmed and how many messages
each consumer got when the system quiesces — must be identical under
the composed and fused encodings.  This is the strongest practical
statement of the Section-6 claim that the optimized models preserve the
design's semantics.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    AsynBlockingSend,
    AsynCheckingSend,
    AsynNonblockingSend,
    BlockingReceive,
    DroppingBuffer,
    FifoQueue,
    NonblockingReceive,
    SingleSlotBuffer,
    SynBlockingSend,
    SynCheckingSend,
)
from repro.psl import Interpreter
from repro.systems.producer_consumer import (
    ConsumerSpec,
    ProducerSpec,
    build_producer_consumer,
)

send_ports = st.sampled_from([
    AsynBlockingSend(), AsynNonblockingSend(), AsynCheckingSend(),
    SynBlockingSend(), SynCheckingSend(),
])
channels = st.sampled_from([
    SingleSlotBuffer(), FifoQueue(size=1), FifoQueue(size=2),
    DroppingBuffer(size=1),
])
recv_ports = st.sampled_from([
    BlockingReceive(remove=True), NonblockingReceive(remove=True),
])


def terminal_outcomes(arch, fused):
    """All quiescent-state observable tuples reachable."""
    system = arch.to_system(fused=fused)
    interp = Interpreter(system)
    init = interp.initial_state()
    seen = {init}
    frontier = [init]
    terminals = set()
    gi = system.global_index
    observables = sorted(
        name for name in gi
        if name.startswith(("acked_", "consumed_", "produced_"))
    )
    while frontier:
        state = frontier.pop()
        trans = interp.transitions(state)
        if not trans:
            terminals.add(tuple(state.globals_[gi[n]] for n in observables))
        for t in trans:
            if t.target not in seen:
                seen.add(t.target)
                if len(seen) > 60_000:
                    raise RuntimeError("config too large for property test")
                frontier.append(t.target)
    return terminals


@given(send_port=send_ports, channel=channels, recv_port=recv_ports,
       messages=st.integers(1, 2))
@settings(max_examples=25, deadline=None)
def test_terminal_outcomes_identical(send_port, channel, recv_port, messages):
    def build():
        return build_producer_consumer(
            producers=[ProducerSpec(messages=messages, port=send_port)],
            channel=channel,
            consumers=[ConsumerSpec(receives=messages, port=recv_port,
                                    max_attempts=messages + 2)],
        )

    composed = terminal_outcomes(build(), fused=False)
    fused = terminal_outcomes(build(), fused=True)
    assert composed == fused, (
        f"{send_port.kind}+{channel.display_name()}+{recv_port.display_name()}"
        f" diverge: composed={composed} fused={fused}"
    )


@given(send_port=send_ports, channel=channels, messages=st.integers(1, 2))
@settings(max_examples=15, deadline=None)
def test_safety_verdicts_identical(send_port, channel, messages):
    from repro.mc import check_safety

    def build():
        return build_producer_consumer(
            producers=[ProducerSpec(messages=messages, port=send_port)],
            channel=channel,
            consumers=[ConsumerSpec(receives=messages)],
        )

    composed = check_safety(build().to_system(fused=False), check_deadlock=True)
    fused = check_safety(build().to_system(fused=True), check_deadlock=True)
    assert composed.ok == fused.ok

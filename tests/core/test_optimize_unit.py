"""Unit tests for fused-connector internals (repro.core.optimize)."""

import pytest

from repro.core import (
    AsynBlockingSend,
    BlockingReceive,
    DroppingBuffer,
    FifoQueue,
    FusedUnsupported,
    PriorityQueue,
    SingleSlotBuffer,
    SynBlockingSend,
    build_fused_def,
    fused_key,
)
from repro.core.optimize import _channel_traits, fused_internal_stores
from repro.systems.producer_consumer import simple_pair
from repro.systems.pubsub import EventPool


class TestChannelTraits:
    def test_single_slot(self):
        assert _channel_traits(SingleSlotBuffer()) == (1, False, 0)

    def test_fifo(self):
        assert _channel_traits(FifoQueue(size=4)) == (4, False, 0)

    def test_dropping(self):
        assert _channel_traits(DroppingBuffer(size=2)) == (2, True, 0)

    def test_priority(self):
        assert _channel_traits(PriorityQueue(size=3, levels=2)) == (3, False, 2)

    def test_unknown_channel_kind_rejected(self):
        with pytest.raises(FusedUnsupported):
            _channel_traits(EventPool(subscribers=2))


class TestInternalStores:
    def test_fifo_store(self):
        arch = simple_pair(SynBlockingSend(), FifoQueue(size=3))
        assert fused_internal_stores(arch.connector("link")) == {"store": 3}

    def test_priority_stores(self):
        arch = simple_pair(SynBlockingSend(), PriorityQueue(size=2, levels=3))
        stores = fused_internal_stores(arch.connector("link"))
        assert stores == {"store0": 2, "store1": 2, "store2": 2}


class TestFusedDefStructure:
    def test_chan_params_per_attachment(self):
        arch = simple_pair(SynBlockingSend(), FifoQueue(size=1))
        model = build_fused_def(arch.connector("link"))
        assert "s0_sig" in model.chan_params
        assert "s0_data" in model.chan_params
        assert "r0_sig" in model.chan_params
        assert "store" in model.chan_params

    def test_name_encodes_structure(self):
        arch = simple_pair(SynBlockingSend(), FifoQueue(size=1))
        model = build_fused_def(arch.connector("link"))
        assert model.name == "fused_fifo_queue_1s1r"

    def test_model_has_end_location(self):
        arch = simple_pair(AsynBlockingSend(), SingleSlotBuffer())
        model = build_fused_def(arch.connector("link"))
        assert model.automaton.end_locations

    def test_key_ignores_attachment_names(self):
        """Two structurally identical connectors share a fused key even
        when they connect different components."""
        a = simple_pair(SynBlockingSend(), FifoQueue(size=2))
        b = simple_pair(SynBlockingSend(), FifoQueue(size=2),
                        messages=3)  # different component workload
        assert fused_key(a.connector("link")) == fused_key(b.connector("link"))

    def test_key_sensitive_to_receive_variant(self):
        a = simple_pair(SynBlockingSend(), SingleSlotBuffer(),
                        recv_port=BlockingReceive(remove=True))
        b = simple_pair(SynBlockingSend(), SingleSlotBuffer(),
                        recv_port=BlockingReceive(remove=False))
        assert fused_key(a.connector("link")) != fused_key(b.connector("link"))

"""Semantic tests for the fault-injection blocks.

Each test pins down the *fault* the block models: the faulty behaviour
must be reachable (fault injection is not a no-op) while the fault-free
behaviour stays reachable too (the block only adds nondeterminism).
"""

import pytest

from repro.core import (
    AsynBlockingSend,
    CorruptingChannel,
    DuplicatingChannel,
    FifoQueue,
    LossyChannel,
    ReorderingChannel,
    RetrySend,
    SingleSlotBuffer,
    TimeoutReceive,
)
from repro.core import verify_ltl
from repro.mc import check_safety, find_state, global_prop, prop
from repro.systems.producer_consumer import simple_pair


def delivered_prop(count=1):
    return global_prop(
        f"consumed{count}", lambda v: v.global_("consumed_0") == count,
        "consumed_0")


class TestLossyChannel:
    def test_loss_defeats_guaranteed_delivery(self):
        # The sender is told IN_OK and then the message silently
        # vanishes: even under weak fairness, delivery is not guaranteed.
        arch = simple_pair(AsynBlockingSend(), LossyChannel(), messages=1)
        delivered = delivered_prop(1)
        report = verify_ltl(arch, "F delivered", {"delivered": delivered},
                            weak_fairness=True)
        assert not report.ok
        assert report.result.trace is not None

    def test_reliable_baseline_guarantees_delivery(self):
        arch = simple_pair(AsynBlockingSend(), FifoQueue(size=1), messages=1)
        report = verify_ltl(arch, "F delivered",
                            {"delivered": delivered_prop(1)},
                            weak_fairness=True)
        assert report.ok

    def test_delivery_still_possible(self):
        arch = simple_pair(AsynBlockingSend(), LossyChannel(), messages=1)
        assert find_state(arch.to_system(), delivered_prop(1)) is not None

    def test_size_validation(self):
        with pytest.raises(ValueError):
            LossyChannel(size=0)


class TestDuplicatingChannel:
    def test_duplicate_delivery_is_reachable(self):
        # One produced message can be consumed twice.
        arch = simple_pair(AsynBlockingSend(), DuplicatingChannel(size=2),
                           messages=1, receives=2)
        assert find_state(arch.to_system(), delivered_prop(2)) is not None

    def test_single_delivery_still_possible(self):
        arch = simple_pair(AsynBlockingSend(), DuplicatingChannel(size=2),
                           messages=1, receives=1)
        assert find_state(arch.to_system(), delivered_prop(1)) is not None


class TestReorderingChannel:
    def test_overtaking_is_reachable(self):
        # The second payload (11) can arrive first.
        arch = simple_pair(AsynBlockingSend(), ReorderingChannel(size=2),
                           messages=2)
        swapped = prop(
            "swapped",
            lambda v: v.global_("consumed_0") == 1 and v.global_("last_0") == 11,
            globals_read=["consumed_0", "last_0"], locals_read=[],
        )
        assert find_state(arch.to_system(), swapped) is not None

    def test_in_order_delivery_still_possible(self):
        arch = simple_pair(AsynBlockingSend(), ReorderingChannel(size=2),
                           messages=2)
        in_order = prop(
            "in_order",
            lambda v: v.global_("consumed_0") == 2 and v.global_("last_0") == 11,
            globals_read=["consumed_0", "last_0"], locals_read=[],
        )
        assert find_state(arch.to_system(), in_order) is not None


class TestCorruptingChannel:
    def test_garbage_payload_is_reachable(self):
        arch = simple_pair(AsynBlockingSend(),
                           CorruptingChannel(corrupt_value=99), messages=1)
        garbage = global_prop(
            "garbage", lambda v: v.global_("last_0") == 99, "last_0")
        assert find_state(arch.to_system(), garbage) is not None

    def test_pristine_payload_still_possible(self):
        arch = simple_pair(AsynBlockingSend(),
                           CorruptingChannel(corrupt_value=99), messages=1)
        pristine = global_prop(
            "pristine", lambda v: v.global_("last_0") == 10, "last_0")
        assert find_state(arch.to_system(), pristine) is not None

    def test_garbage_value_distinguishes_models(self):
        assert CorruptingChannel(corrupt_value=1).key() \
            != CorruptingChannel(corrupt_value=2).key()


class TestRetrySend:
    def test_reports_fail_after_exhausting_attempts(self):
        # Two messages into a single slot the consumer drains once: the
        # second transmission can run out of attempts and report failure.
        arch = simple_pair(RetrySend(attempts=2), SingleSlotBuffer(),
                           messages=2, receives=1)
        failed = prop(
            "fail",
            lambda v: v.local("Producer0", "send_status") == "SEND_FAIL")
        assert find_state(arch.to_system(), failed) is not None

    def test_success_still_possible(self):
        arch = simple_pair(RetrySend(attempts=2), SingleSlotBuffer(),
                           messages=1)
        assert find_state(arch.to_system(), delivered_prop(1)) is not None

    def test_never_blocks_forever(self):
        # Unlike a blocking send, an exhausted retry port returns, so the
        # producer always terminates even when the channel stays full.
        arch = simple_pair(RetrySend(attempts=2), SingleSlotBuffer(),
                           messages=3, receives=1)
        assert check_safety(arch.to_system()).ok

    def test_attempts_validation(self):
        with pytest.raises(ValueError):
            RetrySend(attempts=0)

    def test_attempts_distinguish_models(self):
        assert RetrySend(attempts=1).key() != RetrySend(attempts=2).key()


class TestTimeoutReceive:
    def test_timeout_reports_fail(self):
        arch = simple_pair(AsynBlockingSend(), SingleSlotBuffer(),
                           recv_port=TimeoutReceive(), messages=1,
                           max_attempts=2)
        timed_out = prop(
            "timeout",
            lambda v: v.local("Consumer0", "recv_status") == "RECV_FAIL")
        assert find_state(arch.to_system(), timed_out) is not None

    def test_delivery_still_possible(self):
        arch = simple_pair(AsynBlockingSend(), SingleSlotBuffer(),
                           recv_port=TimeoutReceive(), messages=1,
                           max_attempts=2)
        assert find_state(arch.to_system(), delivered_prop(1)) is not None

    def test_never_blocks_forever(self):
        # A consumer polling an empty channel terminates via the timeout.
        arch = simple_pair(AsynBlockingSend(), SingleSlotBuffer(),
                           recv_port=TimeoutReceive(), messages=0,
                           receives=1, max_attempts=2)
        assert check_safety(arch.to_system()).ok

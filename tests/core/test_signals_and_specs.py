"""Tests for the signal declarations and block-spec plumbing."""

import pytest

from repro.core.signals import (
    DATA_FIELDS,
    NULL_DATA,
    SIGNALS,
    SIGNAL_FIELDS,
)
from repro.core import (
    AsynBlockingSend,
    BlockingReceive,
    DroppingBuffer,
    FifoQueue,
    PriorityQueue,
    SingleSlotBuffer,
)
from repro.core.spec import BlockSpec


class TestSignals:
    def test_all_nine_protocol_signals(self):
        assert len(SIGNALS) == 9
        for sig in ("SEND_SUCC", "SEND_FAIL", "IN_OK", "IN_FAIL",
                    "OUT_OK", "OUT_FAIL", "RECV_OK", "RECV_SUCC",
                    "RECV_FAIL"):
            assert sig in SIGNALS

    def test_data_layout(self):
        assert DATA_FIELDS == ("data", "sender_id", "selective", "tag",
                               "remove", "park")

    def test_signal_layout(self):
        assert SIGNAL_FIELDS == ("signal", "port_pid")

    def test_null_data(self):
        assert NULL_DATA == 0


class TestSpecPlumbing:
    def test_spec_equality_is_structural(self):
        assert FifoQueue(size=3) == FifoQueue(size=3)
        assert FifoQueue(size=3) != FifoQueue(size=4)
        assert BlockingReceive(remove=True) == BlockingReceive()

    def test_specs_hashable(self):
        {AsynBlockingSend(): 1, FifoQueue(size=2): 2}

    def test_channel_chan_params_include_stores(self):
        assert "store" in FifoQueue(size=2).chan_params
        assert "store" not in SingleSlotBuffer().chan_params
        assert "store1" in PriorityQueue(size=2, levels=2).chan_params

    def test_internal_store_capacities(self):
        assert FifoQueue(size=4).internal_stores() == {"store": 4}
        assert DroppingBuffer(size=2).internal_stores() == {"store": 2}
        assert PriorityQueue(size=3, levels=2).internal_stores() == {
            "store0": 3, "store1": 3}

    def test_capacity_property(self):
        assert SingleSlotBuffer().capacity == 1
        assert FifoQueue(size=7).capacity == 7
        assert PriorityQueue(size=2, levels=3).capacity == 2

    def test_base_spec_is_abstract(self):
        with pytest.raises(NotImplementedError):
            BlockSpec().key()
        with pytest.raises(NotImplementedError):
            BlockSpec().build_def()

    def test_display_names(self):
        assert SingleSlotBuffer().display_name() == "single_slot_buffer"
        assert FifoQueue(size=5).display_name() == "fifo_queue(5)"
        assert "levels=2" in PriorityQueue(size=1, levels=2).display_name()


class TestBlockModelShapes:
    """Structural sanity of every built model."""

    @pytest.mark.parametrize("spec", [
        AsynBlockingSend(), BlockingReceive(), SingleSlotBuffer(),
        FifoQueue(size=2), DroppingBuffer(size=1),
        PriorityQueue(size=2, levels=2),
    ], ids=lambda s: s.display_name())
    def test_model_has_end_location(self, spec):
        auto = spec.build_def().automaton
        assert auto.end_locations, "every block must have a quiescent point"

    @pytest.mark.parametrize("spec", [
        AsynBlockingSend(), BlockingReceive(), SingleSlotBuffer(),
    ], ids=lambda s: s.display_name())
    def test_model_channel_params_declared(self, spec):
        model = spec.build_def()
        used = model.automaton.channel_params_used()
        assert used <= set(model.chan_params)

    def test_faithful_and_optimized_differ_structurally(self):
        opt = FifoQueue(size=1).build_def()
        faith = FifoQueue(size=1, faithful=True).build_def()
        assert opt.name != faith.name
        # the optimized model carries when-guards; the faithful one not
        from repro.psl.compiler import OpRecv
        def has_when(auto):
            return any(isinstance(e.op, OpRecv) and e.op.when is not None
                       for e in auto.edges)
        assert has_when(opt.automaton)
        assert not has_when(faith.automaton)

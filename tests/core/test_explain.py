"""Tests for counterexample explanation (Section 6 direction)."""

import pytest

from repro.core import (
    AsynBlockingSend,
    DroppingBuffer,
    SingleSlotBuffer,
    SynBlockingSend,
    classify_processes,
    diagnose_deadlock,
    explain_trace,
)
from repro.core.explain import (
    ROLE_CHANNEL,
    ROLE_COMPONENT,
    ROLE_RECEIVE_PORT,
    ROLE_SEND_PORT,
)
from repro.mc import check_safety
from repro.systems.producer_consumer import (
    ConsumerSpec,
    ProducerSpec,
    build_producer_consumer,
    simple_pair,
)


@pytest.fixture
def arch_and_system():
    arch = simple_pair(AsynBlockingSend(), SingleSlotBuffer(), messages=1)
    return arch, arch.to_system()


class TestClassification:
    def test_all_processes_classified(self, arch_and_system):
        arch, system = arch_and_system
        roles = classify_processes(arch, system)
        assert set(roles) == {i.name for i in system.instances}

    def test_component_role(self, arch_and_system):
        arch, system = arch_and_system
        roles = classify_processes(arch, system)
        assert roles["Producer0"].role == ROLE_COMPONENT
        assert roles["Consumer0"].role == ROLE_COMPONENT

    def test_port_roles_with_block_kinds(self, arch_and_system):
        arch, system = arch_and_system
        roles = classify_processes(arch, system)
        sp = roles["link.Producer0.out.port"]
        assert sp.role == ROLE_SEND_PORT
        assert "asyn_blocking_send" in sp.block_kind
        rp = roles["link.Consumer0.inp.port"]
        assert rp.role == ROLE_RECEIVE_PORT

    def test_channel_role(self, arch_and_system):
        arch, system = arch_and_system
        roles = classify_processes(arch, system)
        ch = roles["link.channel"]
        assert ch.role == ROLE_CHANNEL
        assert "single_slot_buffer" in ch.block_kind

    def test_describe_readable(self, arch_and_system):
        arch, system = arch_and_system
        roles = classify_processes(arch, system)
        text = roles["link.Producer0.out.port"].describe()
        assert "Producer0.out" in text
        assert "link" in text


class TestExplainTrace:
    def test_trace_rephrased(self):
        arch = simple_pair(AsynBlockingSend(), DroppingBuffer(size=1),
                           messages=2, receives=2)
        system = arch.to_system()
        from repro.mc import find_state, prop
        loss = prop("loss", lambda v: v.global_("acked_0") == 2)
        trace = find_state(system, loss)
        text = explain_trace(trace, arch, system)
        assert "component Producer0" in text
        assert "IN_OK" in text or "accepted" in text

    def test_max_steps_truncation(self, arch_and_system):
        arch, system = arch_and_system
        from repro.mc import find_state, prop
        done = prop("done", lambda v: v.global_("consumed_0") == 1)
        trace = find_state(system, done)
        text = explain_trace(trace, arch, system, max_steps=2)
        assert "more steps" in text


class TestDeadlockDiagnosis:
    def test_dropping_plus_sync_is_diagnosed(self):
        """The paper's Section 6 wish: name the problematic blocks."""
        arch = build_producer_consumer(
            producers=[ProducerSpec(messages=2, port=SynBlockingSend())],
            channel=DroppingBuffer(size=1),
            consumers=[ConsumerSpec(receives=1)],
        )
        system = arch.to_system(fused=True)
        result = check_safety(system, check_deadlock=True)
        assert not result.ok
        hypotheses = diagnose_deadlock(result, arch, system)
        assert hypotheses
        joined = " ".join(hypotheses)
        assert "dropping buffer" in joined
        assert "synchronous" in joined

    def test_sync_port_starvation_diagnosed_composed(self):
        arch = build_producer_consumer(
            producers=[ProducerSpec(messages=2, port=SynBlockingSend())],
            channel=DroppingBuffer(size=1),
            consumers=[ConsumerSpec(receives=1)],
        )
        system = arch.to_system(fused=False)
        result = check_safety(system, check_deadlock=True)
        assert not result.ok
        hypotheses = diagnose_deadlock(result, arch, system)
        joined = " ".join(hypotheses)
        assert "RECV_OK" in joined or "dropping" in joined

    def test_no_diagnosis_for_passing_result(self, arch_and_system):
        arch, system = arch_and_system
        result = check_safety(system)
        assert diagnose_deadlock(result, arch, system) == []

    def test_component_blockage_reported(self):
        """A component stuck mid-protocol is pointed at its connector."""
        arch = build_producer_consumer(
            producers=[ProducerSpec(messages=2, port=SynBlockingSend())],
            channel=DroppingBuffer(size=1),
            consumers=[ConsumerSpec(receives=1)],
        )
        system = arch.to_system(fused=True)
        result = check_safety(system, check_deadlock=True)
        hypotheses = diagnose_deadlock(result, arch, system)
        assert any("Producer0" in h for h in hypotheses)

"""Tests for counterexample explanation (Section 6 direction)."""

import pytest

from repro.core import (
    AsynBlockingSend,
    DroppingBuffer,
    SingleSlotBuffer,
    SynBlockingSend,
    classify_processes,
    diagnose_deadlock,
    explain_trace,
)
from repro.core.explain import (
    ROLE_CHANNEL,
    ROLE_COMPONENT,
    ROLE_RECEIVE_PORT,
    ROLE_SEND_PORT,
)
from repro.mc import check_safety
from repro.systems.producer_consumer import (
    ConsumerSpec,
    ProducerSpec,
    build_producer_consumer,
    simple_pair,
)


@pytest.fixture
def arch_and_system():
    arch = simple_pair(AsynBlockingSend(), SingleSlotBuffer(), messages=1)
    return arch, arch.to_system()


class TestClassification:
    def test_all_processes_classified(self, arch_and_system):
        arch, system = arch_and_system
        roles = classify_processes(arch, system)
        assert set(roles) == {i.name for i in system.instances}

    def test_component_role(self, arch_and_system):
        arch, system = arch_and_system
        roles = classify_processes(arch, system)
        assert roles["Producer0"].role == ROLE_COMPONENT
        assert roles["Consumer0"].role == ROLE_COMPONENT

    def test_port_roles_with_block_kinds(self, arch_and_system):
        arch, system = arch_and_system
        roles = classify_processes(arch, system)
        sp = roles["link.Producer0.out.port"]
        assert sp.role == ROLE_SEND_PORT
        assert "asyn_blocking_send" in sp.block_kind
        rp = roles["link.Consumer0.inp.port"]
        assert rp.role == ROLE_RECEIVE_PORT

    def test_channel_role(self, arch_and_system):
        arch, system = arch_and_system
        roles = classify_processes(arch, system)
        ch = roles["link.channel"]
        assert ch.role == ROLE_CHANNEL
        assert "single_slot_buffer" in ch.block_kind

    def test_describe_readable(self, arch_and_system):
        arch, system = arch_and_system
        roles = classify_processes(arch, system)
        text = roles["link.Producer0.out.port"].describe()
        assert "Producer0.out" in text
        assert "link" in text


class TestExplainTrace:
    def test_trace_rephrased(self):
        arch = simple_pair(AsynBlockingSend(), DroppingBuffer(size=1),
                           messages=2, receives=2)
        system = arch.to_system()
        from repro.mc import find_state, prop
        loss = prop("loss", lambda v: v.global_("acked_0") == 2)
        trace = find_state(system, loss)
        text = explain_trace(trace, arch, system)
        assert "component Producer0" in text
        assert "IN_OK" in text or "accepted" in text

    def test_max_steps_truncation(self, arch_and_system):
        arch, system = arch_and_system
        from repro.mc import find_state, prop
        done = prop("done", lambda v: v.global_("consumed_0") == 1)
        trace = find_state(system, done)
        text = explain_trace(trace, arch, system, max_steps=2)
        assert "more steps" in text


class TestDeadlockDiagnosis:
    def test_dropping_plus_sync_is_diagnosed(self):
        """The paper's Section 6 wish: name the problematic blocks."""
        arch = build_producer_consumer(
            producers=[ProducerSpec(messages=2, port=SynBlockingSend())],
            channel=DroppingBuffer(size=1),
            consumers=[ConsumerSpec(receives=1)],
        )
        system = arch.to_system(fused=True)
        result = check_safety(system, check_deadlock=True)
        assert not result.ok
        hypotheses = diagnose_deadlock(result, arch, system)
        assert hypotheses
        joined = " ".join(hypotheses)
        assert "dropping buffer" in joined
        assert "synchronous" in joined

    def test_sync_port_starvation_diagnosed_composed(self):
        arch = build_producer_consumer(
            producers=[ProducerSpec(messages=2, port=SynBlockingSend())],
            channel=DroppingBuffer(size=1),
            consumers=[ConsumerSpec(receives=1)],
        )
        system = arch.to_system(fused=False)
        result = check_safety(system, check_deadlock=True)
        assert not result.ok
        hypotheses = diagnose_deadlock(result, arch, system)
        joined = " ".join(hypotheses)
        assert "RECV_OK" in joined or "dropping" in joined

    def test_no_diagnosis_for_passing_result(self, arch_and_system):
        arch, system = arch_and_system
        result = check_safety(system)
        assert diagnose_deadlock(result, arch, system) == []

    def test_component_blockage_reported(self):
        """A component stuck mid-protocol is pointed at its connector."""
        arch = build_producer_consumer(
            producers=[ProducerSpec(messages=2, port=SynBlockingSend())],
            channel=DroppingBuffer(size=1),
            consumers=[ConsumerSpec(receives=1)],
        )
        system = arch.to_system(fused=True)
        result = check_safety(system, check_deadlock=True)
        hypotheses = diagnose_deadlock(result, arch, system)
        assert any("Producer0" in h for h in hypotheses)


class TestDiagnosisPatternSelection:
    """diagnose_deadlock only fires on deadlocks and picks the matching
    failure pattern — the classification logic the run reports rely on."""

    def _deadlocking(self):
        arch = build_producer_consumer(
            producers=[ProducerSpec(messages=2, port=SynBlockingSend())],
            channel=DroppingBuffer(size=1),
            consumers=[ConsumerSpec(receives=1)],
        )
        system = arch.to_system(fused=True)
        result = check_safety(system, check_deadlock=True)
        assert not result.ok and result.kind == "deadlock"
        return arch, system, result

    def test_non_deadlock_failures_get_no_hypotheses(self):
        """An invariant violation is not a deadlock: no block blamed."""
        from repro.mc import prop
        arch = simple_pair(AsynBlockingSend(), SingleSlotBuffer(),
                           messages=1)
        system = arch.to_system()
        never = prop("never_sends",
                     lambda v: v.global_("acked_0") == 0)
        result = check_safety(system, invariants=[never],
                              check_deadlock=False)
        assert not result.ok and result.kind == "invariant"
        assert diagnose_deadlock(result, arch, system) == []

    def test_hypotheses_are_deduplicated(self):
        arch, system, result = self._deadlocking()
        hypotheses = diagnose_deadlock(result, arch, system)
        assert len(hypotheses) == len(set(hypotheses))

    def test_section6_pattern_named_once_per_connector(self):
        """The dropping-buffer + sync-sender pattern is connector-level:
        it is reported once, not once per blocked sender."""
        arch, system, result = self._deadlocking()
        hypotheses = diagnose_deadlock(result, arch, system)
        pattern = [h for h in hypotheses
                   if "dropping buffer" in h and "synchronous" in h]
        assert len(pattern) == 1
        assert "Section 6" in pattern[0]

    def test_healthy_channel_not_blamed(self):
        """Same deadlock shape, but the diagnosis never accuses blocks
        that cannot cause it (the single-slot buffer keeps messages)."""
        arch, system, result = self._deadlocking()
        joined = " ".join(diagnose_deadlock(result, arch, system))
        assert "single_slot_buffer" not in joined


class TestExplainStepVocabulary:
    def test_unknown_process_falls_back_to_raw_name(self):
        from repro.core.explain import explain_step
        from repro.psl.interp import TransitionLabel
        label = TransitionLabel(pid=0, process="Ghost", kind="local",
                                desc="tau step")
        assert "Ghost" in explain_step(label, {})

    def test_signal_phrase_attached_to_handshake(self, arch_and_system):
        from repro.core.explain import explain_step
        from repro.psl.interp import TransitionLabel
        arch, system = arch_and_system
        roles = classify_processes(arch, system)
        label = TransitionLabel(
            pid=0, process="link.channel", kind="handshake",
            partner="link.Consumer0.inp.port",
            chan="link.rcv_data", message=("RECV_OK", 0),
            desc="deliver",
        )
        text = explain_step(label, roles)
        assert "delivered to the receiver" in text

"""Semantic tests for the channel building blocks (Figure 1 / Figure 11)."""

import pytest

from repro.core import (
    AsynBlockingSend,
    AsynCheckingSend,
    DroppingBuffer,
    FifoQueue,
    PriorityQueue,
    SingleSlotBuffer,
    SynBlockingSend,
)
from repro.mc import check_safety, find_state, global_prop, prop
from repro.systems.producer_consumer import (
    ConsumerSpec,
    ProducerSpec,
    build_producer_consumer,
    simple_pair,
)


class TestSingleSlotBuffer:
    def test_holds_one_message(self):
        arch = simple_pair(AsynCheckingSend(), SingleSlotBuffer(),
                           messages=2, receives=2)
        # with a checking sender, the second send can fail while the slot
        # is occupied
        failed = prop(
            "fail", lambda v: v.local("Producer0", "send_status") == "SEND_FAIL")
        assert find_state(arch.to_system(), failed) is not None

    def test_message_passes_through(self):
        arch = simple_pair(SynBlockingSend(), SingleSlotBuffer(), messages=1)
        got = global_prop("got", lambda v: v.global_("last_0") == 10, "last_0")
        assert find_state(arch.to_system(), got) is not None

    def test_deadlock_free_with_blocking_pair(self):
        arch = simple_pair(SynBlockingSend(), SingleSlotBuffer(), messages=3)
        assert check_safety(arch.to_system())


class TestFifoQueue:
    def test_delivery_preserves_order(self):
        """Across ALL interleavings the consumer sees 10 then 11 then 12."""
        arch = simple_pair(SynBlockingSend(), FifoQueue(size=3), messages=3)
        out_of_order = prop(
            "ooo",
            lambda v: v.global_("last_0") != v.global_("consumed_0") + 9
            and v.global_("consumed_0") > 0,
            globals_read=["last_0", "consumed_0"], locals_read=[],
        )
        # payload of the n-th consumed message is always 9+n
        assert find_state(arch.to_system(), out_of_order) is None

    def test_capacity_enforced(self):
        arch = simple_pair(AsynCheckingSend(), FifoQueue(size=2),
                           messages=3, receives=3)
        failed = prop(
            "fail", lambda v: v.local("Producer0", "send_status") == "SEND_FAIL")
        assert find_state(arch.to_system(), failed) is not None

    def test_no_loss_with_blocking_sender(self):
        arch = simple_pair(SynBlockingSend(), FifoQueue(size=1), messages=3)
        assert check_safety(arch.to_system())

    def test_size_validation(self):
        with pytest.raises(ValueError):
            FifoQueue(size=0)


class TestDroppingBuffer:
    def test_silent_loss_is_reachable(self):
        arch = simple_pair(AsynBlockingSend(), DroppingBuffer(size=1),
                           messages=2, receives=2)
        # producer fully acked, consumer got nothing, yet only one message
        # exists anywhere: the other was silently dropped
        loss = prop(
            "loss",
            lambda v: (v.global_("acked_0") == 2
                       and v.global_("consumed_0") == 0
                       and v.chan_len("link.store") == 1
                       and v.chan_len("link.snd_data") == 0),
        )
        assert find_state(arch.to_system(), loss) is not None

    def test_never_reports_failure(self):
        arch = simple_pair(AsynCheckingSend(), DroppingBuffer(size=1),
                           messages=3, receives=3)
        failed = prop(
            "fail", lambda v: v.local("Producer0", "send_status") == "SEND_FAIL")
        # a dropping buffer always claims success
        assert find_state(arch.to_system(), failed) is None

    def test_fifo_never_loses_what_dropping_loses(self):
        """The same workload over FifoQueue conserves messages."""
        arch = simple_pair(AsynBlockingSend(), FifoQueue(size=1),
                           messages=2, receives=2)
        loss = prop(
            "loss",
            lambda v: (v.global_("acked_0") == 2
                       and v.global_("consumed_0") == 0
                       and v.chan_len("link.store") <= 1
                       and v.chan_len("link.snd_data") == 0
                       and v.local("link.Consumer0.inp.port", "d_data") == 0),
        )
        assert find_state(arch.to_system(), loss) is None


class TestPriorityQueue:
    def _arch(self):
        """Producer A sends low-priority (tag 1), B high-priority (tag 0).

        The consumer starts receiving only after both messages are queued
        (it needs 2 receives; we check the first delivery is the urgent
        one whenever both were buffered first).
        """
        return build_producer_consumer(
            producers=[
                ProducerSpec(messages=1, payload_base=10, tag=1,
                             port=AsynBlockingSend()),
                ProducerSpec(messages=1, payload_base=20, tag=0,
                             port=AsynBlockingSend()),
            ],
            channel=PriorityQueue(size=2, levels=2),
            consumers=[ConsumerSpec(receives=2, start_after_acks=True)],
        )

    def test_urgent_delivered_first_when_both_queued(self):
        arch = self._arch()
        # the consumer starts only after both messages are queued, so the
        # first delivery must be the high-priority payload 20
        bad = prop(
            "low_first",
            lambda v: v.global_("consumed_0") == 1
            and v.global_("last_0") == 10,
        )
        assert find_state(arch.to_system(), bad) is None

    def test_both_eventually_delivered(self):
        arch = self._arch()
        done = global_prop("done", lambda v: v.global_("consumed_0") == 2,
                           "consumed_0")
        assert find_state(arch.to_system(), done) is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            PriorityQueue(size=0)
        with pytest.raises(ValueError):
            PriorityQueue(size=1, levels=1)


class TestSelectiveReceive:
    def test_selective_skips_nonmatching(self):
        """A tagged consumer retrieves the matching message even when a
        non-matching one is ahead of it in the queue."""
        arch = build_producer_consumer(
            producers=[
                ProducerSpec(messages=1, payload_base=10, tag=1,
                             port=AsynBlockingSend()),
                ProducerSpec(messages=1, payload_base=20, tag=2,
                             port=AsynBlockingSend()),
            ],
            channel=FifoQueue(size=2),
            consumers=[ConsumerSpec(receives=1, selective_tag=2)],
        )
        got_tagged = global_prop(
            "got", lambda v: v.global_("last_0") == 20, "last_0")
        assert find_state(arch.to_system(), got_tagged) is not None
        got_untagged = global_prop(
            "wrong", lambda v: v.global_("last_0") == 10, "last_0")
        assert find_state(arch.to_system(), got_untagged) is None


class TestFaithfulVariants:
    @pytest.mark.parametrize("channel", [
        SingleSlotBuffer(faithful=True),
        FifoQueue(size=2, faithful=True),
        DroppingBuffer(size=1, faithful=True),
        PriorityQueue(size=2, levels=2, faithful=True),
    ])
    def test_faithful_models_give_same_verdict(self, channel):
        arch = simple_pair(SynBlockingSend(), channel, messages=1)
        optimized = type(channel)(**{
            k: getattr(channel, k)
            for k in channel.__dataclass_fields__ if k != "faithful"
        })
        arch_opt = simple_pair(SynBlockingSend(), optimized, messages=1)
        r_faithful = check_safety(arch.to_system(), check_deadlock=True)
        r_opt = check_safety(arch_opt.to_system(), check_deadlock=True)
        assert r_faithful.ok == r_opt.ok

    def test_faithful_key_differs(self):
        assert FifoQueue(size=2).key() != FifoQueue(size=2, faithful=True).key()

    def test_faithful_variant_explores_more_states(self):
        from repro.mc import count_states
        opt = simple_pair(SynBlockingSend(), FifoQueue(size=1), messages=2)
        faith = simple_pair(SynBlockingSend(), FifoQueue(size=1, faithful=True),
                            messages=2)
        n_opt = count_states(opt.to_system()).states_stored
        n_faith = count_states(faith.to_system()).states_stored
        assert n_faith > n_opt

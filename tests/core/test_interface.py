"""Tests for the standard interface statement fragments (Figs 3, 9, 10)."""


from repro.core.interface import (
    INTERFACE_LOCALS,
    RECV_STATUS_VAR,
    SEND_STATUS_VAR,
    port_channel_params,
    receive_message,
    send_message,
)
from repro.core.signals import DATA_FIELDS, NULL_DATA
from repro.psl.expr import Const, V
from repro.psl.stmt import Bind, Recv, Send, Seq


class TestPortChannelParams:
    def test_naming(self):
        assert port_channel_params("enter") == ("enter_sig", "enter_data")


class TestSendMessage:
    def test_shape(self):
        frag = send_message("out", 5)
        assert isinstance(frag, Seq)
        send, recv = frag.stmts
        assert isinstance(send, Send) and send.chan == "out_data"
        assert isinstance(recv, Recv) and recv.chan == "out_sig"

    def test_message_arity_matches_data_fields(self):
        frag = send_message("out", 5)
        assert len(frag.stmts[0].args) == len(DATA_FIELDS)

    def test_component_sends_no_park_flag(self):
        frag = send_message("out", 5)
        park_arg = frag.stmts[0].args[-1]
        assert isinstance(park_arg, Const) and park_arg.value == 0

    def test_status_bound_to_default_var(self):
        frag = send_message("out", 5)
        pattern = frag.stmts[1].patterns[0]
        assert isinstance(pattern, Bind) and pattern.name == SEND_STATUS_VAR

    def test_custom_status_var(self):
        frag = send_message("out", 5, status_var="mystatus")
        assert frag.stmts[1].patterns[0].name == "mystatus"

    def test_tag_expression(self):
        frag = send_message("out", 5, tag=V("prio"))
        tag_arg = frag.stmts[0].args[3]
        assert tag_arg.free_vars() == frozenset({"prio"})


class TestReceiveMessage:
    def test_shape(self):
        frag = receive_message("inp", into="m")
        kinds = [type(s).__name__ for s in frag.stmts]
        # end labels (quiescible), request send, status recv, data recv
        assert kinds == ["EndLabel", "Send", "EndLabel", "Recv", "Recv"]

    def test_not_quiescible(self):
        frag = receive_message("inp", into="m", quiescible=False)
        kinds = [type(s).__name__ for s in frag.stmts]
        assert kinds == ["Send", "Recv", "Recv"]

    def test_request_payload_is_null(self):
        frag = receive_message("inp", into="m", quiescible=False)
        data_arg = frag.stmts[0].args[0]
        assert data_arg.value == NULL_DATA

    def test_selective_tag_sets_fields(self):
        frag = receive_message("inp", into="m", selective_tag=7,
                               quiescible=False)
        args = frag.stmts[0].args
        assert args[2].value == 1  # selective flag
        assert args[3].value == 7  # tag

    def test_nonselective_by_default(self):
        frag = receive_message("inp", into="m", quiescible=False)
        assert frag.stmts[0].args[2].value == 0

    def test_into_binding(self):
        frag = receive_message("inp", into="payload", quiescible=False)
        data_recv = frag.stmts[2]
        assert data_recv.patterns[0].name == "payload"

    def test_status_var(self):
        frag = receive_message("inp", into="m", quiescible=False)
        assert frag.stmts[1].patterns[0].name == RECV_STATUS_VAR


class TestInterfaceLocals:
    def test_both_status_vars_declared(self):
        assert SEND_STATUS_VAR in INTERFACE_LOCALS
        assert RECV_STATUS_VAR in INTERFACE_LOCALS

"""Tests for repro.mc.por: ample-set partial-order reduction."""

import pytest

from repro.mc import check_safety, check_safety_por, count_states, global_prop
from repro.psl import (
    Assert,
    Assign,
    Branch,
    Do,
    Guard,
    Interpreter,
    ProcessDef,
    Recv,
    Send,
    Seq,
    System,
    V,
    buffered,
)


def local_heavy_system(workers=3, steps=4):
    """Workers do long local computations, then one global write each."""
    s = System("localheavy")
    s.add_global("done", 0)
    body = Seq(
        [Assign("x", V("x") + 1) for _ in range(steps)]
        + [Assign("done", V("done") + 1)]
    )
    d = ProcessDef("w", body, local_vars={"x": 0})
    for i in range(workers):
        s.spawn(d, f"w{i}")
    return s


def racy_system():
    """Non-atomic test-and-set: assertion violation must survive POR."""
    s = System("racy")
    s.add_global("lock", 0)
    s.add_global("crit", 0)
    body = Do(Branch(
        Guard(V("lock") == 0),
        Assign("lock", 1),
        Assign("crit", V("crit") + 1),
        Assert(V("crit") <= 1),
        Assign("crit", V("crit") - 1),
        Assign("lock", 0),
    ))
    d = ProcessDef("w", body)
    s.spawn(d, "w1")
    s.spawn(d, "w2")
    return s


class TestVerdictPreservation:
    def test_clean_local_system_passes(self):
        assert check_safety_por(local_heavy_system()).ok

    def test_assertion_violation_found(self):
        r = check_safety_por(racy_system(), check_deadlock=False)
        assert not r.ok
        assert r.kind == "assertion"

    def test_deadlock_found(self):
        s = System("d")
        s.add_global("g", 0)
        s.spawn(ProcessDef("p", Guard(V("g") == 1)), "stuck")
        r = check_safety_por(s)
        assert not r.ok
        assert r.kind == "deadlock"

    def test_invariant_with_declared_deps(self):
        s = local_heavy_system(workers=2, steps=3)
        p = global_prop("bounded", lambda v: v.global_("done") <= 2, "done")
        assert check_safety_por(s, invariants=[p]).ok

    def test_invariant_violation_found(self):
        s = local_heavy_system(workers=2, steps=2)
        p = global_prop("never_two", lambda v: v.global_("done") < 2, "done")
        r = check_safety_por(s, invariants=[p], check_deadlock=False)
        assert not r.ok
        assert r.trace is not None

    def test_counterexample_is_valid_execution(self):
        s = local_heavy_system(workers=2, steps=2)
        p = global_prop("never_two", lambda v: v.global_("done") < 2, "done")
        r = check_safety_por(s, invariants=[p], check_deadlock=False)
        # replay the trace through the interpreter
        interp = Interpreter(s)
        state = interp.initial_state()
        for step in r.trace.steps:
            targets = [t.target for t in interp.transitions(state)]
            assert step.state in targets
            state = step.state


class TestReduction:
    def test_reduces_local_interleavings(self):
        s = local_heavy_system(workers=3, steps=5)
        full = count_states(s)
        por = check_safety_por(local_heavy_system(workers=3, steps=5))
        assert por.ok
        assert por.stats.states_stored < full.states_stored

    def test_substantial_reduction_factor(self):
        s_full = count_states(local_heavy_system(workers=3, steps=6))
        por = check_safety_por(local_heavy_system(workers=3, steps=6))
        # local steps of distinct processes commute; reduction should be
        # at least 3x on this workload
        assert s_full.states_stored / por.stats.states_stored > 3

    def test_no_reduction_when_props_undeclared(self):
        """A prop without declared deps makes everything visible."""
        from repro.mc.props import Prop
        s = local_heavy_system(workers=2, steps=3)
        opaque = Prop("opaque", lambda v: True)  # no deps declared
        full = count_states(local_heavy_system(workers=2, steps=3))
        por = check_safety_por(s, invariants=[opaque])
        assert por.stats.states_stored == full.states_stored


class TestAgainstFullExploration:
    @pytest.mark.parametrize("workers,steps", [(1, 2), (2, 2), (2, 4), (3, 3)])
    def test_verdicts_agree_clean(self, workers, steps):
        full = check_safety(local_heavy_system(workers, steps))
        por = check_safety_por(local_heavy_system(workers, steps))
        assert full.ok == por.ok

    def test_verdicts_agree_racy(self):
        full = check_safety(racy_system(), check_deadlock=False)
        por = check_safety_por(racy_system(), check_deadlock=False)
        assert full.ok == por.ok == False  # noqa: E712

    def test_channel_system_unaffected(self):
        """Channel ops are never ample; verdicts and counts match."""
        c = buffered("c", 2, "v")
        s = System("chan")
        sender = ProcessDef("s", Seq([Send("out", [1]), Send("out", [2])]),
                            chan_params=("out",))
        receiver = ProcessDef(
            "r", Seq([Recv("inp", ["x"]), Recv("inp", ["y"])]),
            chan_params=("inp",), local_vars={"x": 0, "y": 0},
        )
        s.add_channel(c)
        s.spawn(sender, "s", chans={"out": c})
        s.spawn(receiver, "r", chans={"inp": c})
        full = check_safety(s)
        s2 = System("chan2")
        c2 = buffered("c", 2, "v")
        s2.add_channel(c2)
        s2.spawn(sender, "s", chans={"out": c2})
        s2.spawn(receiver, "r", chans={"inp": c2})
        por = check_safety_por(s2)
        assert full.ok == por.ok


class TestBudgets:
    def test_partial_result_on_state_budget(self):
        r = check_safety_por(local_heavy_system(workers=3, steps=4),
                             max_states=10)
        assert r.ok and r.incomplete
        assert r.budget_exhausted == "state budget"
        assert "stopped early" in r.message

    def test_legacy_raise_on_limit(self):
        from repro.mc import StateLimitExceeded
        with pytest.raises(StateLimitExceeded):
            check_safety_por(local_heavy_system(workers=3, steps=4),
                             max_states=10, raise_on_limit=True)

    def test_violation_beats_budget(self):
        r = check_safety_por(racy_system(), check_deadlock=False,
                             max_states=10**6)
        assert not r.ok
        assert not r.incomplete

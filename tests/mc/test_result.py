"""Tests for verification result/trace/statistics objects."""


from repro.mc.result import Statistics, Trace, TraceStep, VerificationResult
from repro.psl.interp import TransitionLabel
from repro.psl.state import State


def mk_state(x):
    return State(locs=(x,), frames=((),), chans=(), globals_=())


def mk_step(i):
    return TraceStep(
        TransitionLabel(pid=0, process="p", kind="local", desc=f"step{i}"),
        mk_state(i),
    )


class TestTrace:
    def test_len_and_final(self):
        t = Trace(initial=mk_state(0), steps=[mk_step(1), mk_step(2)])
        assert len(t) == 2
        assert t.final_state == mk_state(2)

    def test_empty_trace_final_is_initial(self):
        t = Trace(initial=mk_state(0))
        assert t.final_state == mk_state(0)

    def test_states_includes_initial(self):
        t = Trace(initial=mk_state(0), steps=[mk_step(1)])
        assert t.states() == [mk_state(0), mk_state(1)]

    def test_labels(self):
        t = Trace(initial=mk_state(0), steps=[mk_step(1), mk_step(2)])
        assert [l.desc for l in t.labels()] == ["step1", "step2"]

    def test_pretty_cycle_marker(self):
        t = Trace(initial=mk_state(0), steps=[mk_step(1), mk_step(2)],
                  cycle_start=1)
        text = t.pretty()
        assert "cycle starts here" in text

    def test_pretty_numbering(self):
        t = Trace(initial=mk_state(0), steps=[mk_step(1)])
        assert t.pretty().startswith("   1.")


class TestStatistics:
    def test_merge(self):
        a = Statistics(states_stored=10, transitions=20, max_frontier=5,
                       elapsed_seconds=1.0)
        b = Statistics(states_stored=1, transitions=2, max_frontier=9,
                       elapsed_seconds=0.5)
        merged = a.merge(b)
        assert merged.states_stored == 11
        assert merged.transitions == 22
        assert merged.max_frontier == 9
        assert merged.elapsed_seconds == 1.5


class TestVerificationResult:
    def test_bool(self):
        assert VerificationResult(ok=True)
        assert not VerificationResult(ok=False)

    def test_summary_pass(self):
        r = VerificationResult(ok=True, message="clean",
                               property_text="G safe")
        text = r.summary()
        assert "PASS" in text and "G safe" in text and "clean" in text

    def test_summary_fail_kind(self):
        r = VerificationResult(ok=False, kind="deadlock", message="stuck")
        assert "FAIL (deadlock)" in r.summary()

    def test_holds_alias(self):
        assert VerificationResult(ok=True).holds


class TestTransitionLabelPretty:
    def test_handshake(self):
        lbl = TransitionLabel(pid=0, process="a", kind="handshake",
                              desc="d", chan="c", message=(1, 2),
                              partner_pid=1, partner="b")
        text = lbl.pretty()
        assert "a -> b" in text and "<1, 2>" in text

    def test_send(self):
        lbl = TransitionLabel(pid=0, process="a", kind="send", desc="d",
                              chan="c", message=("SIG",))
        assert "a sends <SIG> on c" == lbl.pretty()

    def test_recv(self):
        lbl = TransitionLabel(pid=0, process="a", kind="recv", desc="d",
                              chan="c", message=(7,))
        assert "receives" in lbl.pretty()

    def test_local(self):
        lbl = TransitionLabel(pid=0, process="a", kind="local", desc="x = 1")
        assert lbl.pretty() == "a: x = 1"


class TestIncompleteResults:
    def test_incomplete_summary_verdict(self):
        r = VerificationResult(ok=True, incomplete=True,
                               budget_exhausted="state budget")
        s = r.summary()
        assert "INCOMPLETE" in s
        assert "incomplete: state budget" in s

    def test_proved_requires_completeness(self):
        assert VerificationResult(ok=True).proved
        assert not VerificationResult(ok=True, incomplete=True).proved
        assert not VerificationResult(ok=False).proved

    def test_statistics_merge_keeps_incomplete(self):
        a = Statistics(states_stored=1)
        b = Statistics(states_stored=2, incomplete=True,
                       budget_exhausted="time budget")
        merged = a.merge(b)
        assert merged.incomplete
        assert merged.budget_exhausted == "time budget"
        assert merged.states_stored == 3

"""Tests for weakly fair LTL model checking (repro.mc.fairness)."""


from repro.mc import check_ltl, global_prop
from repro.psl import Assign, Branch, Do, Guard, ProcessDef, Seq, System, V


def starvable_pair():
    """A spinner can be scheduled forever while a worker stays ready.

    Without fairness, ``F done`` fails (schedule only the spinner).
    Under weak fairness the continuously-enabled worker must run.
    """
    s = System("starvable")
    s.add_global("done", 0)
    s.add_global("noise", 0)
    worker = ProcessDef("worker", Assign("done", 1))
    spinner = ProcessDef("spinner", Do(
        Branch(Assign("noise", 1 - V("noise"))),
    ))
    s.spawn(worker, "worker")
    s.spawn(spinner, "spinner")
    return s


def guarded_starvation():
    """The worker is only *intermittently* enabled: weak fairness must
    NOT save it.  The spinner toggles `gate`; the worker can only fire
    when gate==1, so there is a fair run alternating gate while the
    worker is disabled at every instant it is pointed at... but since
    the worker is enabled infinitely often (not continuously), weak
    fairness permits starving it only if it is disabled infinitely
    often — which the gate toggling provides."""
    s = System("gated")
    s.add_global("done", 0)
    s.add_global("gate", 0)
    worker = ProcessDef("worker", Seq([Guard(V("gate") == 1),
                                       Assign("done", 1)]))
    toggler = ProcessDef("toggler", Do(
        Branch(Assign("gate", 1 - V("gate"))),
    ))
    s.spawn(worker, "worker")
    s.spawn(toggler, "toggler")
    return s


DONE = global_prop("done", lambda v: v.global_("done") == 1, "done")
PROPS = {"done": DONE}


class TestWeakFairness:
    def test_unfair_starvation_without_fairness(self):
        r = check_ltl(starvable_pair(), "F done", PROPS)
        assert not r.ok  # the spinner can run forever

    def test_fairness_forces_progress(self):
        r = check_ltl(starvable_pair(), "F done", PROPS, weak_fairness=True)
        assert r.ok

    def test_fairness_note_in_message(self):
        r = check_ltl(starvable_pair(), "F done", PROPS, weak_fairness=True)
        assert "weak fairness" in r.message

    def test_weak_fairness_does_not_rescue_intermittent_enabledness(self):
        # enabled-infinitely-often but not continuously: weak fairness
        # still admits the starving run
        r = check_ltl(guarded_starvation(), "F done", PROPS,
                      weak_fairness=True)
        assert not r.ok

    def test_fair_counterexample_is_lasso(self):
        r = check_ltl(guarded_starvation(), "F done", PROPS,
                      weak_fairness=True)
        assert r.trace is not None
        assert r.trace.cycle_start is not None

    def test_safety_formulas_unaffected(self):
        """For properties that already hold, fairness changes nothing."""
        s = starvable_pair()
        never_two = global_prop("ok", lambda v: v.global_("done") <= 1, "done")
        r_plain = check_ltl(starvable_pair(), "G ok", {"ok": never_two})
        r_fair = check_ltl(s, "G ok", {"ok": never_two}, weak_fairness=True)
        assert r_plain.ok and r_fair.ok

    def test_violations_preserved_under_fairness(self):
        """A genuinely violated property stays violated."""
        r = check_ltl(starvable_pair(), "G done", PROPS, weak_fairness=True)
        assert not r.ok

    def test_terminating_system(self):
        s = System("tiny")
        s.add_global("done", 0)
        s.spawn(ProcessDef("p", Assign("done", 1)), "p")
        r = check_ltl(s, "F done", PROPS, weak_fairness=True)
        assert r.ok


class TestFairnessOnArchitectures:
    def test_spinner_cannot_starve_a_pipeline_under_fairness(self):
        """An unrelated spinning component can absorb the whole schedule;
        weak fairness forces the always-ready pipeline to progress."""
        from repro.core import (
            BlockingReceive, Component, SingleSlotBuffer, SynBlockingSend)
        from repro.systems.producer_consumer import (
            ConsumerSpec, ProducerSpec, build_producer_consumer)
        from repro.psl.stmt import Assign, Branch, Do

        def build():
            arch = build_producer_consumer(
                producers=[ProducerSpec(messages=1, port=SynBlockingSend())],
                channel=SingleSlotBuffer(),
                consumers=[ConsumerSpec(receives=1, port=BlockingReceive())],
            )
            arch.add_global("noise", 0)
            arch.add_component(Component(
                "Spinner", ports={},
                body=Do(Branch(Assign("noise", 1 - V("noise")))),
            ))
            return arch

        delivered = global_prop(
            "delivered", lambda v: v.global_("consumed_0") == 1, "consumed_0")
        unfair = check_ltl(build().to_system(fused=True), "F delivered",
                           {"delivered": delivered})
        assert not unfair.ok, "an unfair scheduler can run only the spinner"
        fair = check_ltl(build().to_system(fused=True), "F delivered",
                         {"delivered": delivered}, weak_fairness=True)
        assert fair.ok, "weak fairness guarantees delivery"

    def test_rendezvous_limitation_documented(self):
        """Process-level weak fairness cannot force a rendezvous whose
        partner is only intermittently available — the classic SPIN
        limitation.  A polling consumer keeps the fused connector busy
        with poll cycles, so the producer (whose send needs the
        connector as partner) is not *continuously* enabled and may
        starve even under weak fairness."""
        from repro.core import (
            NonblockingReceive, SingleSlotBuffer, SynBlockingSend)
        from repro.systems.producer_consumer import (
            ConsumerSpec, ProducerSpec, build_producer_consumer)

        def build():
            return build_producer_consumer(
                producers=[ProducerSpec(messages=1, port=SynBlockingSend())],
                channel=SingleSlotBuffer(),
                consumers=[ConsumerSpec(receives=1,
                                        port=NonblockingReceive())],
            )

        delivered = global_prop(
            "delivered", lambda v: v.global_("consumed_0") == 1, "consumed_0")
        fair = check_ltl(build().to_system(fused=True), "F delivered",
                         {"delivered": delivered}, weak_fairness=True)
        assert not fair.ok  # weak fairness alone is not enough here

"""Tests for repro.mc.explore: safety BFS, deadlocks, state counting."""

import pytest

from repro.mc import (
    StateGraph,
    StateLimitExceeded,
    VIOLATION_ASSERTION,
    VIOLATION_DEADLOCK,
    VIOLATION_INVARIANT,
    check_safety,
    count_states,
    find_state,
    global_prop,
    reachable_states,
    sweep_safety,
)
from repro.psl import (
    Assert,
    Assign,
    Branch,
    Do,
    EndLabel,
    Guard,
    ProcessDef,
    Seq,
    Skip,
    System,
    V,
)


def counter_system(limit, with_assert=None, end_label=True):
    """One process counting g up to `limit`."""
    body_stmts = []
    branch_stmts = [Guard(V("g") < limit), Assign("g", V("g") + 1)]
    if with_assert is not None:
        branch_stmts.append(Assert(with_assert))
    stmts = [Do(
        Branch(*branch_stmts),
        Branch(Guard(V("g") == limit), *( [EndLabel()] if end_label else [Skip()] )),
    )]
    s = System("counter")
    s.add_global("g", 0)
    s.spawn(ProcessDef("p", Seq(stmts)), "i")
    return s


class TestAssertionChecking:
    def test_violation_found(self):
        r = check_safety(counter_system(5, with_assert=(V("g") < 3)),
                         check_deadlock=False)
        assert not r.ok
        assert r.kind == VIOLATION_ASSERTION

    def test_violation_has_trace(self):
        r = check_safety(counter_system(5, with_assert=(V("g") < 3)),
                         check_deadlock=False)
        assert r.trace is not None
        assert len(r.trace) > 0

    def test_bfs_gives_shortest_counterexample(self):
        # the assert first fails when g reaches 3: guard,inc,assert x3 = 9 steps
        r = check_safety(counter_system(5, with_assert=(V("g") < 3)),
                         check_deadlock=False)
        assert len(r.trace) == 9

    def test_clean_system_passes(self):
        r = check_safety(counter_system(4, with_assert=(V("g") <= 4)),
                         check_deadlock=False)
        assert r.ok

    def test_assertions_can_be_disabled(self):
        r = check_safety(counter_system(5, with_assert=(V("g") < 3)),
                         check_assertions=False, check_deadlock=False)
        assert r.ok


class TestInvariantChecking:
    def test_invariant_violation(self):
        p = global_prop("small", lambda v: v.global_("g") < 3, "g")
        r = check_safety(counter_system(5), invariants=[p],
                         check_deadlock=False)
        assert not r.ok
        assert r.kind == VIOLATION_INVARIANT
        assert "small" in r.message

    def test_invariant_holds(self):
        p = global_prop("bounded", lambda v: v.global_("g") <= 5, "g")
        r = check_safety(counter_system(5), invariants=[p],
                         check_deadlock=False)
        assert r.ok

    def test_initial_state_violation(self):
        p = global_prop("never", lambda v: False)
        r = check_safety(counter_system(1), invariants=[p],
                         check_deadlock=False)
        assert not r.ok
        assert "initial state" in r.message
        assert len(r.trace) == 0

    def test_counterexample_ends_in_violating_state(self):
        p = global_prop("small", lambda v: v.global_("g") < 2, "g")
        r = check_safety(counter_system(5), invariants=[p],
                         check_deadlock=False)
        final = r.trace.final_state
        assert final.globals_[0] == 2


class TestDeadlockChecking:
    def test_blocked_process_is_deadlock(self):
        s = System("d")
        s.add_global("g", 0)
        s.spawn(ProcessDef("p", Guard(V("g") == 1)), "stuck")
        r = check_safety(s)
        assert not r.ok
        assert r.kind == VIOLATION_DEADLOCK
        assert "stuck" in r.message

    def test_end_label_makes_block_valid(self):
        s = System("d")
        s.add_global("g", 0)
        s.spawn(ProcessDef("p", Seq([EndLabel(), Guard(V("g") == 1)])), "idle")
        r = check_safety(s)
        assert r.ok

    def test_terminated_system_is_not_deadlock(self):
        s = System("d")
        s.add_global("g", 0)
        s.spawn(ProcessDef("p", Assign("g", 1)), "i")
        assert check_safety(s).ok

    def test_deadlock_check_can_be_disabled(self):
        s = System("d")
        s.add_global("g", 0)
        s.spawn(ProcessDef("p", Guard(V("g") == 1)), "stuck")
        assert check_safety(s, check_deadlock=False).ok


class TestSweep:
    def test_stop_at_first_collects_one(self):
        p = global_prop("never", lambda v: v.global_("g") < 1, "g")
        report = sweep_safety(counter_system(3), invariants=[p],
                              check_deadlock=False)
        assert len(report.results) == 1

    def test_full_sweep_collects_all(self):
        p1 = global_prop("lt1", lambda v: v.global_("g") < 1, "g")
        p2 = global_prop("lt2", lambda v: v.global_("g") < 2, "g")
        report = sweep_safety(counter_system(3), invariants=[p1, p2],
                              check_deadlock=False, stop_at_first=False)
        assert len(report.results) >= 2
        assert not report.ok

    def test_clean_sweep_ok(self):
        report = sweep_safety(counter_system(2))
        assert report.ok
        assert report.results == []


class TestCountAndLimits:
    def test_count_states_counter(self):
        stats = count_states(counter_system(4))
        # g=0..4, two locations... the loop-head location dominates;
        # exact count: g values 0..4 at head + intermediate locations
        assert stats.states_stored >= 5
        assert stats.transitions >= stats.states_stored - 1

    def test_state_limit_enforced(self):
        with pytest.raises(StateLimitExceeded):
            count_states(counter_system(1000), max_states=10,
                         raise_on_limit=True)

    def test_state_limit_graceful_by_default(self):
        stats = count_states(counter_system(1000), max_states=10)
        assert stats.incomplete
        assert stats.budget_exhausted == "state budget"
        assert stats.states_stored >= 10

    def test_reachable_states_contains_initial(self):
        s = counter_system(2)
        states = reachable_states(s)
        assert s.initial_state() == states[0]

    def test_reachable_states_always_raises_on_limit(self):
        with pytest.raises(StateLimitExceeded):
            reachable_states(counter_system(1000), max_states=10)

    def test_check_safety_respects_limit(self):
        with pytest.raises(StateLimitExceeded):
            check_safety(counter_system(1000), max_states=10,
                         raise_on_limit=True)

    def test_check_safety_partial_result_on_state_budget(self):
        r = check_safety(counter_system(1000), max_states=10)
        assert r.ok  # no violation found so far...
        assert r.incomplete  # ...but the space was not exhausted
        assert not r.proved
        assert r.budget_exhausted == "state budget"
        assert "incomplete" in r.summary()

    def test_check_safety_partial_result_on_time_budget(self):
        r = check_safety(counter_system(100000), max_seconds=0.0)
        assert r.ok and r.incomplete
        assert r.budget_exhausted == "time budget"

    def test_budget_does_not_mask_found_violation(self):
        # A violation discovered before the budget runs out is definitive.
        r = check_safety(counter_system(5, with_assert=(V("g") < 3)),
                         check_deadlock=False, max_states=10**6)
        assert not r.ok
        assert not r.incomplete


class TestBudgetAccounting:
    """Regression tests for the check-before-pop budget fix.

    Historically ``sweep_safety`` checked the budget *after* popping a
    frontier state, so the popped state was dropped unexpanded and the
    partial statistics undercounted its transitions.  The invariant
    pinned here: every state the sweep pops is fully expanded, so the
    graph's transition cache holds exactly ``states_expanded`` entries
    and the transition tally equals the sum of their out-degrees.
    """

    def test_partial_stats_match_expanded_states(self):
        graph = StateGraph(counter_system(1000))
        report = sweep_safety(graph, max_states=25, check_deadlock=False)
        assert report.incomplete
        stats = report.stats
        expanded = [sid for sid in range(len(graph.store))
                    if graph.cache.peek(sid) is not None]
        assert stats.states_expanded == len(expanded)
        assert stats.states_expanded == graph.n_states_expanded
        assert stats.transitions == sum(
            len(graph.cache.peek(sid)) for sid in expanded)

    def test_zero_time_budget_expands_nothing(self):
        # An immediately exhausted budget must not pop (and silently
        # drop) the initial frontier state.
        graph = StateGraph(counter_system(1000))
        report = sweep_safety(graph, max_seconds=0.0)
        assert report.incomplete
        assert report.budget_exhausted == "time budget"
        assert report.stats.states_expanded == 0
        assert report.stats.transitions == 0
        assert len(graph.cache) == 0

    def test_complete_sweep_expands_every_stored_state(self):
        report = sweep_safety(counter_system(30))
        assert not report.incomplete
        assert report.stats.states_expanded == report.stats.states_stored
        assert report.stats.states_expanded > 0


class TestFindState:
    def test_finds_reachable_state(self):
        p = global_prop("g3", lambda v: v.global_("g") == 3, "g")
        trace = find_state(counter_system(5), p)
        assert trace is not None
        assert trace.final_state.globals_[0] == 3

    def test_unreachable_returns_none(self):
        p = global_prop("g99", lambda v: v.global_("g") == 99, "g")
        assert find_state(counter_system(5), p) is None

    def test_initial_state_match_is_empty_trace(self):
        p = global_prop("g0", lambda v: v.global_("g") == 0, "g")
        trace = find_state(counter_system(5), p)
        assert trace is not None and len(trace) == 0

    def test_trace_is_shortest(self):
        p = global_prop("g1", lambda v: v.global_("g") == 1, "g")
        trace = find_state(counter_system(5), p)
        # guard then increment: two steps
        assert len(trace) == 2


class TestResultFormatting:
    def test_summary_mentions_states(self):
        r = check_safety(counter_system(2))
        assert "states" in r.summary()
        assert "PASS" in r.summary()

    def test_fail_summary(self):
        p = global_prop("no", lambda v: v.global_("g") < 1, "g")
        r = check_safety(counter_system(3), invariants=[p],
                         check_deadlock=False)
        assert "FAIL" in r.summary()

    def test_bool_conversion(self):
        assert check_safety(counter_system(2))
        p = global_prop("no", lambda v: v.global_("g") < 1, "g")
        assert not check_safety(counter_system(3), invariants=[p],
                                check_deadlock=False)

    def test_trace_pretty_prints_steps(self):
        p = global_prop("no", lambda v: v.global_("g") < 1, "g")
        r = check_safety(counter_system(3), invariants=[p],
                         check_deadlock=False)
        text = r.trace.pretty()
        assert "1." in text

    def test_trace_pretty_truncation(self):
        p = global_prop("no", lambda v: v.global_("g") < 3, "g")
        r = check_safety(counter_system(5), invariants=[p],
                         check_deadlock=False)
        text = r.trace.pretty(max_steps=2)
        assert "more steps" in text

"""Sharded exploration: serial ≡ sharded graphs, honest degradation."""

import pytest

import repro.mc.shard as shard_mod
from repro.mc import StateGraph, check_safety, shard_explore
from repro.systems.bridge import (
    bridge_safety_prop,
    build_exactly_n_bridge,
    fix_exactly_n_bridge,
)
from repro.systems.gas_station import build_gas_station


def _bridge_system():
    return fix_exactly_n_bridge(build_exactly_n_bridge()).to_system(
        fused=True)


def _gas_system():
    # Rendezvous-heavy: exercises handshake labels across the pickle
    # boundary.
    return build_gas_station(customers=2,
                             selective_delivery=True).to_system(fused=True)


class TestShardedEquivalence:
    @pytest.fixture(autouse=True)
    def _force_parallel(self, monkeypatch):
        # The sharded path is CPU-gated; these tests pin the pool
        # itself, so they must run it even on 1-CPU CI runners.
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")

    @pytest.mark.parametrize("build", [_bridge_system, _gas_system])
    def test_sharded_graph_is_identical_to_serial(self, build):
        system = build()
        serial = StateGraph(system)
        serial.explore()
        sharded = StateGraph(system)
        report = shard_explore(sharded, jobs=2)
        assert report.jobs == 2
        assert report.note is None
        assert report.states == len(serial.store)
        assert len(sharded.cache) == len(serial.cache)
        # Same successor structure state-by-state (ids may be assigned
        # in a different order; the *graphs* must be isomorphic under
        # the identity map on state tuples).
        for sid in range(len(serial.store)):
            state = serial.store.state(sid)
            other = sharded.store.id_of(state)
            assert other is not None
            mine = [(t.label, serial.store.state(t.target), t.violation)
                    for t in serial.transitions(sid)]
            theirs = [(t.label, sharded.store.state(t.target), t.violation)
                      for t in sharded.transitions(other)]
            assert mine == theirs

    def test_checkers_on_sharded_graph_match(self):
        system = _bridge_system()
        fresh = check_safety(StateGraph(system),
                             invariants=[bridge_safety_prop()])
        sharded = StateGraph(system)
        shard_explore(sharded, jobs=2)
        warm = check_safety(sharded, invariants=[bridge_safety_prop()])
        assert warm.ok == fresh.ok
        assert warm.stats.states_stored == fresh.stats.states_stored
        assert warm.stats.transitions == fresh.stats.transitions
        assert warm.stats.states_expanded == fresh.stats.states_expanded

    def test_state_budget_leaves_graph_lazily_completable(self):
        graph = StateGraph(_bridge_system())
        report = shard_explore(graph, jobs=2, max_states=500)
        assert report.states >= 500
        assert "budget" in report.note
        full = StateGraph(_bridge_system())
        full.explore()
        assert graph.explore() == len(full.store)

    def test_stategraph_explore_jobs_wrapper(self):
        system = _bridge_system()
        serial = StateGraph(system)
        n_serial = serial.explore()
        sharded = StateGraph(system)
        assert sharded.explore(jobs=2) == n_serial


class TestShardedDegradation:
    def test_single_cpu_degrades_to_serial_with_note(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
        monkeypatch.setattr(shard_mod.os, "cpu_count", lambda: 1)
        graph = StateGraph(_bridge_system())
        report = shard_explore(graph, jobs=4)
        assert report.jobs == 1
        assert "only 1 CPU" in report.note
        assert report.states == len(graph.store)
        assert len(graph.cache) == report.states  # fully expanded anyway

    def test_unpicklable_system_degrades_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")

        def boom(_obj):
            raise TypeError("nope")

        monkeypatch.setattr(shard_mod.pickle, "dumps", boom)
        graph = StateGraph(_bridge_system())
        report = shard_explore(graph, jobs=2)
        assert report.jobs == 1
        assert "does not pickle" in report.note
        assert len(graph.cache) == report.states

    def test_jobs_one_is_plain_serial(self):
        graph = StateGraph(_bridge_system())
        report = shard_explore(graph, jobs=1)
        assert report.jobs == 1
        assert report.note is None

"""Tests for repro.mc.props: StateView and Prop declarations."""

import pytest

from repro.mc.props import Prop, StateView, global_prop, prop
from repro.psl import EndLabel, Guard, ProcessDef, Send, Seq, System, V, buffered


@pytest.fixture
def system():
    s = System("view")
    s.add_global("g", 7)
    c = s.add_channel(buffered("box", 2, "v"))
    sender = ProcessDef("s", Seq([Send("out", [5]), Send("out", [6])]),
                        chan_params=("out",), local_vars={"note": 3})
    idle = ProcessDef("idle", Seq([EndLabel(), Guard(V("g") == 99)]))
    s.spawn(sender, "alpha", chans={"out": c})
    s.spawn(idle, "beta")
    return s


class TestStateView:
    def test_global(self, system):
        v = StateView(system, system.initial_state())
        assert v.global_("g") == 7

    def test_local(self, system):
        v = StateView(system, system.initial_state())
        assert v.local("alpha", "note") == 3

    def test_location(self, system):
        v = StateView(system, system.initial_state())
        assert v.location("alpha") == system.instance_by_name("alpha").automaton.initial

    def test_chan_len_empty(self, system):
        v = StateView(system, system.initial_state())
        assert v.chan_len("box") == 0
        assert v.chan_empty("box")
        assert not v.chan_full("box")

    def test_chan_contents_after_send(self, system):
        from repro.psl import Interpreter
        interp = Interpreter(system)
        s1 = interp.transitions(interp.initial_state())[0].target
        v = StateView(system, s1)
        assert v.chan_len("box") == 1
        assert v.chan_contents("box") == ((5,),)

    def test_chan_full(self, system):
        from repro.psl import Interpreter
        interp = Interpreter(system)
        s = interp.initial_state()
        for _ in range(2):
            s = interp.transitions(s)[0].target
        v = StateView(system, s)
        assert v.chan_full("box")

    def test_at_end(self, system):
        v = StateView(system, system.initial_state())
        assert v.at_end("beta")  # end-labeled idle point
        assert not v.at_end("alpha")

    def test_terminated(self, system):
        from repro.psl import Interpreter
        interp = Interpreter(system)
        s = interp.initial_state()
        for _ in range(2):
            s = interp.transitions(s)[0].target
        v = StateView(system, s)
        assert v.terminated("alpha")

    def test_unknown_names_raise(self, system):
        v = StateView(system, system.initial_state())
        with pytest.raises(KeyError):
            v.global_("nope")
        with pytest.raises(KeyError):
            v.local("nobody", "x")
        with pytest.raises(KeyError):
            v.chan_len("nochan")


class TestPropConstruction:
    def test_prop_evaluate(self, system):
        p = prop("g7", lambda v: v.global_("g") == 7)
        assert p.evaluate(system, system.initial_state())

    def test_global_prop_declares_deps(self):
        p = global_prop("x", lambda v: True, "a", "b")
        assert p.globals_read == frozenset({"a", "b"})
        assert p.locals_read == frozenset()
        assert p.depends_only_on_globals()

    def test_undeclared_deps_are_none(self):
        p = Prop("x", lambda v: True)
        assert p.globals_read is None
        assert not p.depends_only_on_globals()

    def test_prop_with_locals_read(self):
        p = prop("x", lambda v: True, globals_read=[], locals_read=["alpha"])
        assert not p.depends_only_on_globals()

    def test_props_compare_by_declaration(self):
        fn = lambda v: True  # noqa: E731
        assert prop("a", fn) == prop("a", lambda v: False)  # fn not compared

"""Tests for guided simulation and trace replay."""

import pytest

from repro.mc import check_safety, find_state, global_prop
from repro.mc.simulate import (
    ReplayError,
    process_priority_scheduler,
    random_scheduler,
    replay,
    round_robin_scheduler,
    simulate,
)
from repro.psl import (
    Assert,
    Assign,
    Branch,
    Do,
    Guard,
    ProcessDef,
    Seq,
    System,
    V,
)


def counter_system(limit=3):
    s = System("c")
    s.add_global("g", 0)
    s.spawn(ProcessDef("p", Seq([
        Do(Branch(Guard(V("g") < limit), Assign("g", V("g") + 1)),
           Branch(Guard(V("g") == limit), __import__("repro.psl", fromlist=["Break"]).Break())),
    ])), "i")
    return s


def spinner_and_worker():
    s = System("sw")
    s.add_global("done", 0)
    s.add_global("noise", 0)
    s.spawn(ProcessDef("worker", Assign("done", 1)), "worker")
    s.spawn(ProcessDef("spinner", Do(
        Branch(Assign("noise", 1 - V("noise"))),
    )), "spinner")
    return s


class TestSimulate:
    def test_deterministic_run_completes(self):
        run = simulate(counter_system(3), random_scheduler(seed=1))
        assert run.completed
        final = run.trace.final_state
        assert final.globals_[0] == 3

    def test_random_seed_reproducible(self):
        r1 = simulate(spinner_and_worker(), random_scheduler(seed=9),
                      max_steps=30)
        r2 = simulate(spinner_and_worker(), random_scheduler(seed=9),
                      max_steps=30)
        assert [s.label.desc for s in r1.steps] == \
            [s.label.desc for s in r2.steps]

    def test_step_budget_respected(self):
        run = simulate(spinner_and_worker(), random_scheduler(seed=0),
                       max_steps=10)
        assert len(run.steps) <= 10
        assert not run.completed  # the spinner never quiesces

    def test_round_robin_runs_everyone(self):
        run = simulate(spinner_and_worker(), round_robin_scheduler(),
                       max_steps=10)
        pids = {s.label.pid for s in run.steps}
        assert pids == {0, 1}

    def test_priority_scheduler_starves(self):
        run = simulate(
            spinner_and_worker(),
            process_priority_scheduler(["spinner", "worker"]),
            max_steps=20,
        )
        assert all(s.label.process == "spinner" for s in run.steps)
        assert run.trace.final_state.globals_[0] == 0  # done never set

    def test_violations_recorded(self):
        s = System("v")
        s.add_global("g", 0)
        s.spawn(ProcessDef("p", Assert(V("g") == 1)), "i")
        run = simulate(s, random_scheduler(seed=0))
        assert run.violations
        assert "assertion violated" in run.violations[0]

    def test_pretty(self):
        run = simulate(counter_system(1), random_scheduler(seed=0))
        assert "1." in run.pretty()


class TestReplay:
    def test_counterexample_replays(self):
        """A trace produced by the checker replays cleanly."""
        s = spinner_and_worker()
        done = global_prop("done", lambda v: v.global_("done") == 1, "done")
        trace = find_state(s, done)
        run = replay(spinner_and_worker(), trace)
        assert len(run.steps) == len(trace.steps)
        assert run.trace.final_state == trace.final_state

    def test_replay_reobserves_violations(self):
        s = System("v")
        s.add_global("g", 0)
        s.spawn(ProcessDef("p", Assert(V("g") == 1)), "i")
        result = check_safety(s, check_deadlock=False)
        run = replay(s, result.trace)
        assert run.violations

    def test_foreign_trace_rejected(self):
        s1 = spinner_and_worker()
        done = global_prop("done", lambda v: v.global_("done") == 1, "done")
        trace = find_state(s1, done)
        with pytest.raises(ReplayError):
            replay(counter_system(3), trace)

    def test_tampered_trace_rejected(self):
        from repro.mc.result import Trace, TraceStep
        from repro.psl.interp import TransitionLabel
        s = spinner_and_worker()
        bogus_state = s.initial_state()._replace(globals_=(99, 99))
        bogus = Trace(initial=s.initial_state(), steps=[
            TraceStep(TransitionLabel(pid=0, process="worker", kind="local",
                                      desc="done = 1"), bogus_state),
        ])
        with pytest.raises(ReplayError, match="not enabled"):
            replay(spinner_and_worker(), bogus)

    def test_architecture_counterexample_replays(self):
        """End to end: replay the bridge crash counterexample."""
        from repro.systems.bridge import (
            BridgeConfig, build_exactly_n_bridge, crash_prop)
        cfg = BridgeConfig(1, 1, trips=1)
        arch = build_exactly_n_bridge(cfg)
        system = arch.to_system(fused=True)
        trace = find_state(system, crash_prop())
        arch2 = build_exactly_n_bridge(cfg)
        run = replay(arch2.to_system(fused=True), trace)
        assert run.trace.final_state == trace.final_state

"""Tests for repro.mc.ndfs: LTL model checking over PSL systems."""

import pytest

from repro.mc import check_ltl, global_prop
from repro.mc.result import VIOLATION_ACCEPTANCE_CYCLE
from repro.psl import Assign, Branch, Do, Guard, ProcessDef, System, V


def toggler():
    """x flips 0 -> 1 -> 0 -> ... forever."""
    s = System("toggler")
    s.add_global("x", 0)
    d = ProcessDef("t", Do(
        Branch(Guard(V("x") == 0), Assign("x", 1)),
        Branch(Guard(V("x") == 1), Assign("x", 0)),
    ))
    s.spawn(d, "t1")
    return s


def one_shot():
    """x goes 0 -> 1 and the process terminates (stutters at x=1)."""
    s = System("oneshot")
    s.add_global("x", 0)
    s.spawn(ProcessDef("p", Assign("x", 1)), "p1")
    return s


def sticky():
    """x may stay 0 forever or flip to 1 and stay."""
    s = System("sticky")
    s.add_global("x", 0)
    d = ProcessDef("p", Do(
        Branch(Guard(V("x") == 0), Assign("x", 0)),  # stay
        Branch(Guard(V("x") == 0), Assign("x", 1)),  # flip once
        Branch(Guard(V("x") == 1), Assign("x", 1)),
    ))
    s.spawn(d, "p1")
    return s


X1 = global_prop("x1", lambda v: v.global_("x") == 1, "x")
X0 = global_prop("x0", lambda v: v.global_("x") == 0, "x")
PROPS = {"x1": X1, "x0": X0}


class TestVerdicts:
    def test_gf_holds_on_toggler(self):
        assert check_ltl(toggler(), "G F x1", PROPS).ok

    def test_fg_fails_on_toggler(self):
        r = check_ltl(toggler(), "F G x1", PROPS)
        assert not r.ok
        assert r.kind == VIOLATION_ACCEPTANCE_CYCLE

    def test_g_fails_on_toggler(self):
        assert not check_ltl(toggler(), "G x0", PROPS).ok

    def test_f_holds_on_toggler(self):
        assert check_ltl(toggler(), "F x1", PROPS).ok

    def test_until_on_toggler(self):
        assert check_ltl(toggler(), "x0 U x1", PROPS).ok

    def test_next_on_toggler(self):
        # step 1 evaluates the guard, step 2 flips x to 1 deterministically
        assert not check_ltl(toggler(), "X x1", PROPS).ok
        assert check_ltl(toggler(), "X X x1", PROPS).ok

    def test_invalid_formula_prop_rejected(self):
        with pytest.raises(KeyError, match="unbound"):
            check_ltl(toggler(), "G nosuch", PROPS)


class TestStutterSemantics:
    def test_terminating_run_stutters(self):
        # after termination x stays 1 forever: F G x1 holds
        assert check_ltl(one_shot(), "F G x1", PROPS).ok

    def test_terminating_gf_holds_via_stutter(self):
        assert check_ltl(one_shot(), "G F x1", PROPS).ok

    def test_g_fails_because_initially_zero(self):
        assert not check_ltl(one_shot(), "G x1", PROPS).ok


class TestBranchingRuns:
    def test_f_fails_when_some_run_avoids(self):
        # sticky may keep x at 0 forever
        r = check_ltl(sticky(), "F x1", PROPS)
        assert not r.ok

    def test_possible_flip_not_guaranteed(self):
        # but G x0 also fails: some run flips
        assert not check_ltl(sticky(), "G x0", PROPS).ok

    def test_fg_x0_or_fg_x1_fails_piecewise(self):
        # each disjunct alone fails...
        assert not check_ltl(sticky(), "F G x0", PROPS).ok
        assert not check_ltl(sticky(), "F G x1", PROPS).ok
        # ...but every run eventually stabilizes to one of them
        assert check_ltl(sticky(), "(F G x0) || (F G x1)", PROPS).ok


class TestCounterexamples:
    def test_lasso_has_cycle_marker(self):
        r = check_ltl(toggler(), "F G x1", PROPS)
        assert r.trace is not None
        assert r.trace.cycle_start is not None
        assert 0 <= r.trace.cycle_start <= len(r.trace.steps)

    def test_lasso_cycle_returns_to_a_state(self):
        r = check_ltl(toggler(), "F G x1", PROPS)
        states = r.trace.states()
        # the final state must reappear earlier (it closes the loop)
        # at the product level; at the system level the state must
        # appear within the cycle portion
        cycle_states = states[r.trace.cycle_start:]
        assert len(cycle_states) >= 2

    def test_counterexample_violates_formula_witness(self):
        """The lasso for 'G x0' must actually visit x==1."""
        r = check_ltl(toggler(), "G x0", PROPS)
        assert any(s.globals_[0] == 1 for s in r.trace.states())

    def test_stats_populated(self):
        r = check_ltl(toggler(), "G F x1", PROPS)
        assert r.stats.states_stored > 0
        assert r.stats.transitions > 0

    def test_property_text_in_result(self):
        r = check_ltl(toggler(), "G F x1", PROPS)
        assert "x1" in r.property_text


class TestAgainstSafetyChecker:
    """G <invariant> via LTL must agree with the BFS invariant checker."""

    @pytest.mark.parametrize("limit,bound,expected", [
        (3, 5, True), (5, 3, False), (4, 4, True),
    ])
    def test_g_invariant_agrees(self, limit, bound, expected):
        from repro.mc import check_safety
        s = System("cnt")
        s.add_global("g", 0)
        s.spawn(ProcessDef("p", Do(
            Branch(Guard(V("g") < limit), Assign("g", V("g") + 1)),
        )), "i")
        prop = global_prop("ok", lambda v: v.global_("g") <= bound, "g")
        ltl_result = check_ltl(s, "G ok", {"ok": prop})
        bfs_result = check_safety(s, invariants=[prop], check_deadlock=False)
        assert ltl_result.ok == bfs_result.ok == expected


class TestBudgets:
    def test_partial_result_on_state_budget(self):
        r = check_ltl(toggler(), "G F x1", PROPS, max_states=1)
        assert r.ok and r.incomplete
        assert r.budget_exhausted == "state budget"
        assert "stopped early" in r.message

    def test_legacy_raise_on_limit(self):
        from repro.mc import StateLimitExceeded
        with pytest.raises(StateLimitExceeded):
            check_ltl(toggler(), "G F x1", PROPS, max_states=1,
                      raise_on_limit=True)

    def test_unbounded_run_is_complete(self):
        r = check_ltl(toggler(), "G F x1", PROPS)
        assert r.ok and not r.incomplete
        assert r.proved

    def test_weak_fairness_respects_budget(self):
        r = check_ltl(toggler(), "G F x1", PROPS, weak_fairness=True,
                      max_states=1)
        assert r.incomplete

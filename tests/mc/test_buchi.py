"""Tests for repro.mc.buchi: LTL -> Büchi translation (GPVW).

Since automata are checked for *language* properties indirectly through
the model checker, these tests exercise structural facts (acceptance,
labels) plus language membership via a tiny run-simulation helper.
"""



from repro.mc.buchi import BuchiAutomaton, ltl_to_buchi
from repro.mc.ltl import parse_ltl


def accepts_lasso(auto: BuchiAutomaton, stem, cycle, max_unroll=None):
    """Does the automaton accept the infinite word stem + cycle^ω?

    ``stem``/``cycle`` are lists of valuations (dicts).  We simulate the
    product of the automaton with the lasso and search for an accepting
    cycle, which is sound and complete for lasso-shaped words.
    """
    word = list(stem) + list(cycle)
    n = len(word)
    cycle_start = len(stem)

    # nodes: (position in lasso, automaton state id)
    start_nodes = [
        (0, q.id) for q in auto.initial if q.satisfied_by(word[0])
    ]
    by_id = {s.id: s for s in auto.states}

    def succ(node):
        pos, qid = node
        nxt = pos + 1 if pos + 1 < n else cycle_start
        for q in auto.successors[qid]:
            if q.satisfied_by(word[nxt]):
                yield (nxt, q.id)

    # find accepting cycle via simple DFS-based reachability on the
    # finite product graph (positions x states)
    seen = set()
    stack = list(start_nodes)
    reachable = set()
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        reachable.add(node)
        stack.extend(succ(node))
    # accepting node on a cycle: node reachable from itself
    for node in reachable:
        pos, qid = node
        if not by_id[qid].accepting:
            continue
        # BFS from node back to node
        frontier = list(succ(node))
        visited = set()
        while frontier:
            cur = frontier.pop()
            if cur == node:
                return True
            if cur in visited:
                continue
            visited.add(cur)
            frontier.extend(succ(cur))
    return False


def val(**kw):
    return dict(kw)


P, NP = val(p=True), val(p=False)
PQ = val(p=True, q=True)
Q = val(p=False, q=True)
NEITHER = val(p=False, q=False)


class TestConstruction:
    def test_automaton_nonempty(self):
        auto = ltl_to_buchi(parse_ltl("G p"))
        assert auto.n_states >= 1
        assert auto.initial

    def test_repr(self):
        auto = ltl_to_buchi(parse_ltl("F p"))
        assert "BuchiAutomaton" in repr(auto)

    def test_false_formula_has_no_initial_states(self):
        auto = ltl_to_buchi(parse_ltl("false"))
        assert auto.initial == []

    def test_state_labels_are_literal_sets(self):
        auto = ltl_to_buchi(parse_ltl("p && !q"))
        init = auto.initial[0]
        assert "p" in init.positive
        assert "q" in init.negative


class TestLanguages:
    def test_globally_p_accepts_all_p(self):
        auto = ltl_to_buchi(parse_ltl("G p"))
        assert accepts_lasso(auto, [], [P])

    def test_globally_p_rejects_one_np(self):
        auto = ltl_to_buchi(parse_ltl("G p"))
        assert not accepts_lasso(auto, [P, NP], [P])

    def test_eventually_p(self):
        auto = ltl_to_buchi(parse_ltl("F p"))
        assert accepts_lasso(auto, [NP, NP, P], [NP])
        assert not accepts_lasso(auto, [NP], [NP])

    def test_gf_p_needs_infinitely_many(self):
        auto = ltl_to_buchi(parse_ltl("G F p"))
        assert accepts_lasso(auto, [], [P, NP])
        assert not accepts_lasso(auto, [P, P], [NP])

    def test_fg_p_needs_eventual_stability(self):
        auto = ltl_to_buchi(parse_ltl("F G p"))
        assert accepts_lasso(auto, [NP, NP], [P])
        assert not accepts_lasso(auto, [], [P, NP])

    def test_until(self):
        auto = ltl_to_buchi(parse_ltl("p U q"))
        assert accepts_lasso(auto, [P, P, Q], [NEITHER])
        assert not accepts_lasso(auto, [P, NEITHER, Q], [NEITHER])
        # strong until: q must actually happen
        assert not accepts_lasso(auto, [], [P])

    def test_release(self):
        auto = ltl_to_buchi(parse_ltl("p R q"))
        # q forever (p never happens) satisfies release
        assert accepts_lasso(auto, [], [Q])
        # q until p&q, then anything
        assert accepts_lasso(auto, [Q, PQ], [NEITHER])
        # q broken before p: rejected
        assert not accepts_lasso(auto, [Q, NEITHER], [PQ])

    def test_next(self):
        auto = ltl_to_buchi(parse_ltl("X p"))
        assert accepts_lasso(auto, [NP, P], [NP])
        assert not accepts_lasso(auto, [P, NP], [NP])

    def test_implication(self):
        auto = ltl_to_buchi(parse_ltl("G (p -> q)"))
        assert accepts_lasso(auto, [], [PQ, NEITHER])
        assert not accepts_lasso(auto, [], [P])

    def test_response_property(self):
        auto = ltl_to_buchi(parse_ltl("G (p -> F q)"))
        assert accepts_lasso(auto, [], [P, Q])
        assert not accepts_lasso(auto, [Q], [P, NEITHER])

    def test_negation_complements_on_samples(self):
        """f and !f must never both accept the same lasso."""
        formulas = ["G p", "F p", "G F p", "p U q", "X p", "F G p"]
        lassos = [
            ([], [P]), ([], [NP]), ([P], [NP]), ([NP], [P]),
            ([], [P, NP]), ([P, Q], [NEITHER]), ([], [PQ]),
        ]
        for text in formulas:
            f = parse_ltl(text)
            pos = ltl_to_buchi(f)
            from repro.mc.ltl import NotF
            neg = ltl_to_buchi(NotF(f))
            for stem, cycle in lassos:
                a = accepts_lasso(pos, stem, cycle)
                b = accepts_lasso(neg, stem, cycle)
                assert a != b, (
                    f"{text} and its negation disagree on "
                    f"stem={stem} cycle={cycle}: {a} vs {b}"
                )


class TestSatisfiedBy:
    def test_positive_requirement(self):
        auto = ltl_to_buchi(parse_ltl("p"))
        q = auto.initial[0]
        assert q.satisfied_by({"p": True})
        assert not q.satisfied_by({"p": False})
        assert not q.satisfied_by({})  # missing means false

    def test_negative_requirement(self):
        auto = ltl_to_buchi(parse_ltl("!p"))
        q = auto.initial[0]
        assert q.satisfied_by({"p": False})
        assert not q.satisfied_by({"p": True})

"""Tests for repro.mc.ltl: parsing, normal forms."""

import pytest

from repro.mc.ltl import (
    AndF,
    Ap,
    Eventually,
    FalseF,
    Globally,
    Iff,
    Implies,
    LtlSyntaxError,
    Next,
    NotF,
    OrF,
    Release,
    TrueF,
    Until,
    WeakUntil,
    is_literal,
    negate,
    nnf,
    parse_ltl,
)


class TestParsing:
    def test_atom(self):
        assert parse_ltl("p") == Ap("p")

    def test_constants(self):
        assert parse_ltl("true") == TrueF()
        assert parse_ltl("false") == FalseF()

    def test_unary_operators(self):
        assert parse_ltl("G p") == Globally(Ap("p"))
        assert parse_ltl("F p") == Eventually(Ap("p"))
        assert parse_ltl("X p") == Next(Ap("p"))
        assert parse_ltl("! p") == NotF(Ap("p"))

    def test_box_diamond_aliases(self):
        assert parse_ltl("[] p") == Globally(Ap("p"))
        assert parse_ltl("<> p") == Eventually(Ap("p"))

    def test_binary_temporal(self):
        assert parse_ltl("p U q") == Until(Ap("p"), Ap("q"))
        assert parse_ltl("p W q") == WeakUntil(Ap("p"), Ap("q"))
        assert parse_ltl("p R q") == Release(Ap("p"), Ap("q"))
        assert parse_ltl("p V q") == Release(Ap("p"), Ap("q"))

    def test_boolean_connectives(self):
        assert parse_ltl("p && q") == AndF(Ap("p"), Ap("q"))
        assert parse_ltl("p || q") == OrF(Ap("p"), Ap("q"))
        assert parse_ltl("p & q") == AndF(Ap("p"), Ap("q"))
        assert parse_ltl("p | q") == OrF(Ap("p"), Ap("q"))
        assert parse_ltl("p -> q") == Implies(Ap("p"), Ap("q"))
        assert parse_ltl("p <-> q") == Iff(Ap("p"), Ap("q"))

    def test_precedence_and_over_or(self):
        f = parse_ltl("a || b && c")
        assert f == OrF(Ap("a"), AndF(Ap("b"), Ap("c")))

    def test_precedence_until_over_and(self):
        f = parse_ltl("a U b && c U d")
        assert f == AndF(Until(Ap("a"), Ap("b")), Until(Ap("c"), Ap("d")))

    def test_implies_right_associative(self):
        f = parse_ltl("a -> b -> c")
        assert f == Implies(Ap("a"), Implies(Ap("b"), Ap("c")))

    def test_until_right_associative(self):
        f = parse_ltl("a U b U c")
        assert f == Until(Ap("a"), Until(Ap("b"), Ap("c")))

    def test_unary_binds_tighter_than_binary(self):
        f = parse_ltl("G p -> F q")
        assert f == Implies(Globally(Ap("p")), Eventually(Ap("q")))

    def test_parentheses(self):
        f = parse_ltl("G (p -> F q)")
        assert f == Globally(Implies(Ap("p"), Eventually(Ap("q"))))

    def test_nested(self):
        f = parse_ltl("G (req -> (req U grant))")
        assert isinstance(f, Globally)

    def test_empty_rejected(self):
        with pytest.raises(LtlSyntaxError):
            parse_ltl("")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(LtlSyntaxError, match="trailing"):
            parse_ltl("p q")

    def test_unclosed_paren_rejected(self):
        with pytest.raises(LtlSyntaxError):
            parse_ltl("(p && q")

    def test_reserved_word_as_atom_rejected(self):
        with pytest.raises(LtlSyntaxError, match="reserved"):
            parse_ltl("p U U")

    def test_bad_character_rejected(self):
        with pytest.raises(LtlSyntaxError):
            parse_ltl("p # q")

    def test_atoms_collection(self):
        f = parse_ltl("G (a -> F (b && !c))")
        assert f.atoms() == frozenset({"a", "b", "c"})


class TestNnf:
    def test_literal_unchanged(self):
        assert nnf(Ap("p")) == Ap("p")

    def test_double_negation(self):
        assert nnf(NotF(NotF(Ap("p")))) == Ap("p")

    def test_de_morgan_and(self):
        f = nnf(NotF(AndF(Ap("p"), Ap("q"))))
        assert f == OrF(NotF(Ap("p")), NotF(Ap("q")))

    def test_not_until_is_release(self):
        f = nnf(NotF(Until(Ap("p"), Ap("q"))))
        assert f == Release(NotF(Ap("p")), NotF(Ap("q")))

    def test_not_release_is_until(self):
        f = nnf(NotF(Release(Ap("p"), Ap("q"))))
        assert f == Until(NotF(Ap("p")), NotF(Ap("q")))

    def test_eventually_desugars(self):
        assert nnf(Eventually(Ap("p"))) == Until(TrueF(), Ap("p"))

    def test_globally_desugars(self):
        assert nnf(Globally(Ap("p"))) == Release(FalseF(), Ap("p"))

    def test_not_globally(self):
        f = nnf(NotF(Globally(Ap("p"))))
        assert f == Until(TrueF(), NotF(Ap("p")))

    def test_implies_desugars(self):
        assert nnf(Implies(Ap("p"), Ap("q"))) == OrF(NotF(Ap("p")), Ap("q"))

    def test_weak_until_desugars(self):
        f = nnf(WeakUntil(Ap("a"), Ap("b")))
        assert f == Release(Ap("b"), OrF(Ap("a"), Ap("b")))

    def test_iff_desugars(self):
        f = nnf(Iff(Ap("a"), Ap("b")))
        assert isinstance(f, OrF)

    def test_next_passes_negation_through(self):
        assert nnf(NotF(Next(Ap("p")))) == Next(NotF(Ap("p")))

    def test_negate_is_nnf_of_not(self):
        f = parse_ltl("G (p -> F q)")
        assert negate(f) == nnf(NotF(f))

    def test_nnf_only_has_allowed_nodes(self):
        f = parse_ltl("!(a -> (b W c)) <-> F d")
        allowed = (Ap, NotF, AndF, OrF, Next, Until, Release, TrueF, FalseF)
        from repro.mc.ltl import walk
        for node in walk(nnf(f)):
            assert isinstance(node, allowed)
            if isinstance(node, NotF):
                assert isinstance(node.operand, Ap)


class TestLiterals:
    def test_is_literal(self):
        assert is_literal(Ap("p"))
        assert is_literal(NotF(Ap("p")))
        assert is_literal(TrueF())
        assert not is_literal(AndF(Ap("p"), Ap("q")))
        assert not is_literal(NotF(AndF(Ap("p"), Ap("q"))))


class TestStringRoundTrip:
    @pytest.mark.parametrize("text", [
        "G p",
        "F (p && q)",
        "(p U q)",
        "G (req -> F grant)",
        "!(p || q)",
        "p R (q && r)",
        "X (p -> q)",
    ])
    def test_parse_str_parse_fixpoint(self, text):
        f1 = parse_ltl(text)
        f2 = parse_ltl(str(f1))
        assert f1 == f2

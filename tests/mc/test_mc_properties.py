"""Property-based tests for the LTL pipeline (parser, nnf, checking)."""

from hypothesis import given, settings, strategies as st

from repro.mc import check_ltl, global_prop
from repro.mc.ltl import (
    AndF,
    Ap,
    Eventually,
    Globally,
    Next,
    NotF,
    OrF,
    Release,
    TrueF,
    FalseF,
    Until,
    nnf,
    parse_ltl,
    walk,
)
from repro.psl import Assign, Branch, Do, Guard, ProcessDef, System, V


def formulas(max_depth=3):
    atoms = st.sampled_from([Ap("x0"), Ap("x1"), TrueF(), FalseF()])
    return st.recursive(
        atoms,
        lambda sub: st.one_of(
            sub.map(NotF),
            sub.map(Globally),
            sub.map(Eventually),
            sub.map(Next),
            st.tuples(sub, sub).map(lambda t: AndF(*t)),
            st.tuples(sub, sub).map(lambda t: OrF(*t)),
            st.tuples(sub, sub).map(lambda t: Until(*t)),
            st.tuples(sub, sub).map(lambda t: Release(*t)),
        ),
        max_leaves=6,
    )


def toggler():
    s = System("toggler")
    s.add_global("x", 0)
    d = ProcessDef("t", Do(
        Branch(Guard(V("x") == 0), Assign("x", 1)),
        Branch(Guard(V("x") == 1), Assign("x", 0)),
    ))
    s.spawn(d, "t1")
    return s


PROPS = {
    "x0": global_prop("x0", lambda v: v.global_("x") == 0, "x"),
    "x1": global_prop("x1", lambda v: v.global_("x") == 1, "x"),
}


class TestNnfProperties:
    @given(formulas())
    @settings(max_examples=100, deadline=None)
    def test_nnf_is_idempotent(self, f):
        assert nnf(nnf(f)) == nnf(f)

    @given(formulas())
    @settings(max_examples=100, deadline=None)
    def test_nnf_negations_only_on_atoms(self, f):
        for node in walk(nnf(f)):
            if isinstance(node, NotF):
                assert isinstance(node.operand, Ap)

    @given(formulas())
    @settings(max_examples=100, deadline=None)
    def test_double_negation_eliminated(self, f):
        assert nnf(NotF(NotF(f))) == nnf(f)

    @given(formulas())
    @settings(max_examples=100, deadline=None)
    def test_nnf_preserves_atoms(self, f):
        # NNF never invents new propositions
        assert nnf(f).atoms() <= f.atoms()


class TestParserProperties:
    @given(formulas())
    @settings(max_examples=100, deadline=None)
    def test_str_round_trips_through_parser(self, f):
        # Every formula's string rendering must reparse to the same AST.
        assert parse_ltl(str(f)) == f


class TestCheckerConsistency:
    @given(formulas(max_depth=2))
    @settings(max_examples=25, deadline=None)
    def test_f_and_not_f_never_both_hold_unless_trivial(self, f):
        """On a system with multiple runs, f and !f can both FAIL but
        they can never both HOLD (the toggler has at least one run)."""
        r_pos = check_ltl(toggler(), f, PROPS)
        r_neg = check_ltl(toggler(), NotF(f), PROPS)
        assert not (r_pos.ok and r_neg.ok) or isinstance(f, (TrueF, FalseF))

    @given(formulas(max_depth=2))
    @settings(max_examples=25, deadline=None)
    def test_failed_check_produces_trace(self, f):
        r = check_ltl(toggler(), f, PROPS)
        if not r.ok:
            assert r.trace is not None
            assert r.trace.cycle_start is not None

    @given(formulas(max_depth=2))
    @settings(max_examples=25, deadline=None)
    def test_conjunction_weaker_than_parts(self, f):
        """If f && x0 holds then f holds (toggler starts at x=0...)."""
        both = check_ltl(toggler(), AndF(f, Ap("x0")), PROPS)
        if both.ok:
            assert check_ltl(toggler(), f, PROPS).ok

"""Differential suite: the shared engine vs fresh-interpreter runs.

Every checker accepts either a ``System`` (a fresh interpreter is built
and the space re-explored) or a shared :class:`~repro.mc.engine.StateGraph`
(interned states + memoized transition relation).  These tests pin the
engine-overhaul contract across every ``repro.systems`` case study:

* identical verdicts, messages, and shortest counterexamples;
* identical state/transition/expansion statistics;
* whether the graph is cold, pre-warmed by a different checker, or
  reused for a second run;
* whether a resilience sweep runs serially or over a process pool.
"""

import pytest

from repro.core import ModelLibrary, verify_resilience
from repro.core.channels import CHANNEL_SPECS
from repro.core.ports import SEND_PORT_SPECS
from repro.mc import (
    StateGraph,
    check_ltl,
    check_safety,
    check_safety_por,
    count_states,
    find_state,
)
from repro.systems.abp import abp_delivery_prop, abp_fault_scenarios, build_abp
from repro.systems.bridge import (
    BridgeConfig,
    bridge_fault_scenarios,
    bridge_safety_prop,
    build_exactly_n_bridge,
    crash_prop,
    fix_exactly_n_bridge,
)
from repro.systems.gas_station import all_fueled_prop, build_gas_station
from repro.systems.producer_consumer import simple_pair
from repro.systems.pubsub import build_pubsub
from repro.systems.rpc import build_rpc


def _bridge_fixed():
    arch = fix_exactly_n_bridge(
        build_exactly_n_bridge(BridgeConfig(1, 1, trips=1)))
    return arch.to_system(fused=True)


def _bridge_initial():
    return build_exactly_n_bridge(
        BridgeConfig(1, 1, trips=1)).to_system(fused=True)


def _producer_consumer():
    return simple_pair(SEND_PORT_SPECS[0], CHANNEL_SPECS[0],
                       messages=2).to_system(fused=True)


def _gas_station():
    return build_gas_station(customers=2).to_system(fused=True)


def _pubsub():
    return build_pubsub().to_system(fused=True)


def _rpc():
    return build_rpc().to_system(fused=True)


def _abp():
    return build_abp(messages=1, max_sends=2,
                     receiver_polls=2).to_system(fused=True)


#: (system factory, invariants factory, check_deadlock) per case study.
CASES = [
    pytest.param(_bridge_fixed, lambda: [bridge_safety_prop()], True,
                 id="bridge-fixed"),
    pytest.param(_bridge_initial, lambda: [bridge_safety_prop()], False,
                 id="bridge-initial"),
    pytest.param(_producer_consumer, lambda: [], True,
                 id="producer-consumer"),
    pytest.param(_gas_station, lambda: [], True, id="gas-station"),
    pytest.param(_pubsub, lambda: [], True, id="pubsub"),
    pytest.param(_rpc, lambda: [], True, id="rpc"),
    pytest.param(_abp, lambda: [], False, id="abp"),
]


def _assert_same_trace(cached, fresh):
    if fresh is None or cached is None:
        assert cached is None and fresh is None
        return
    assert len(cached) == len(fresh)
    assert [s.label for s in cached.steps] == [s.label for s in fresh.steps]
    assert cached.initial == fresh.initial
    if len(fresh) > 0:
        assert cached.final_state == fresh.final_state


def _assert_same_result(cached, fresh):
    assert cached.ok == fresh.ok
    assert cached.kind == fresh.kind
    assert cached.message == fresh.message
    assert cached.stats.states_stored == fresh.stats.states_stored
    assert cached.stats.transitions == fresh.stats.transitions
    assert cached.stats.states_expanded == fresh.stats.states_expanded
    _assert_same_trace(cached.trace, fresh.trace)


@pytest.mark.parametrize("build,invariants,check_deadlock", CASES)
def test_safety_and_counting_match_fresh_runs(build, invariants,
                                              check_deadlock):
    """Cold, warm, and re-used graphs all reproduce the fresh verdicts."""
    fresh_count = count_states(build())
    fresh = check_safety(build(), invariants=invariants(),
                         check_deadlock=check_deadlock)

    graph = StateGraph(build())
    cold = check_safety(graph, invariants=invariants(),
                        check_deadlock=check_deadlock)
    # The graph now holds (at least) every state the sweep visited; both
    # re-runs below must reuse the cache yet report identical numbers.
    warm = check_safety(graph, invariants=invariants(),
                        check_deadlock=check_deadlock)
    warm_count = count_states(graph)

    _assert_same_result(cold, fresh)
    _assert_same_result(warm, fresh)
    assert warm_count.states_stored == fresh_count.states_stored
    assert warm_count.transitions == fresh_count.transitions
    assert warm_count.states_expanded == fresh_count.states_expanded


#: (system factory, goal prop factory, reachable?) for witness searches.
GOAL_CASES = [
    pytest.param(_bridge_initial, crash_prop, True, id="bridge-crash"),
    pytest.param(_bridge_fixed, crash_prop, False, id="bridge-fixed-no-crash"),
    pytest.param(_abp, lambda: abp_delivery_prop(messages=1), True,
                 id="abp-delivery"),
    pytest.param(_gas_station, lambda: all_fueled_prop(customers=2), True,
                 id="gas-all-fueled"),
]


@pytest.mark.parametrize("build,goal,reachable", GOAL_CASES)
def test_find_state_matches_fresh_runs(build, goal, reachable):
    fresh = find_state(build(), goal())
    graph = StateGraph(build())
    count_states(graph)  # fully warm the transition cache first
    cached = find_state(graph, goal())
    if not reachable:
        assert fresh is None and cached is None
        return
    assert fresh is not None and cached is not None
    assert len(cached) == len(fresh)  # shortest-witness length is preserved
    assert [s.label for s in cached.steps] == [s.label for s in fresh.steps]
    assert cached.final_state == fresh.final_state


@pytest.mark.parametrize("build,holds", [
    pytest.param(_bridge_fixed, True, id="bridge-fixed"),
    pytest.param(_bridge_initial, False, id="bridge-initial"),
])
def test_ltl_matches_fresh_runs(build, holds):
    props = {"safe": bridge_safety_prop()}
    fresh = check_ltl(build(), "G safe", props)
    graph = StateGraph(build())
    check_safety(graph, check_deadlock=False)  # warm via a different checker
    cached = check_ltl(graph, "G safe", props)
    assert fresh.ok == cached.ok == holds
    assert cached.message == fresh.message
    _assert_same_trace(cached.trace, fresh.trace)


@pytest.mark.parametrize("build,invariants,check_deadlock", CASES)
def test_por_matches_fresh_runs(build, invariants, check_deadlock):
    """POR on a warm shared graph gives the verdict of a fresh POR run."""
    fresh = check_safety_por(build(), invariants=invariants(),
                             check_deadlock=check_deadlock)
    graph = StateGraph(build())
    count_states(graph)  # cached full relation feeds the ample-set filter
    cached = check_safety_por(graph, invariants=invariants(),
                              check_deadlock=check_deadlock)
    assert cached.ok == fresh.ok
    assert cached.kind == fresh.kind
    assert cached.stats.states_stored == fresh.stats.states_stored
    assert cached.stats.transitions == fresh.stats.transitions
    _assert_same_trace(cached.trace, fresh.trace)


class TestParallelResilience:
    @pytest.fixture(autouse=True)
    def _force_parallel(self, monkeypatch):
        # The pool is CPU-gated (1 CPU => serial fallback); these tests
        # pin pool behavior itself, so they must run it even on 1-CPU CI.
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")

    """jobs=N must reproduce the serial sweep verdict-for-verdict."""

    def _sweep(self, jobs):
        # The fault channels inflate the abp space well past what a unit
        # test should sweep; the state budget keeps the faulted scenarios
        # cheap *and* pins that budget-bounded UNKNOWN verdicts cross the
        # process pool identically (the baseline stays complete/robust).
        return verify_resilience(
            build_abp(messages=1, max_sends=2, receiver_polls=2),
            faults=abp_fault_scenarios()[:2],
            goal=abp_delivery_prop(messages=1),
            check_deadlock=False,
            library=ModelLibrary(),
            max_states=20_000,
            fused=True,
            jobs=jobs,
        )

    def test_parallel_matches_serial(self):
        serial = self._sweep(jobs=1)
        parallel = self._sweep(jobs=2)
        assert serial.scenario("baseline").verdict == "robust"
        assert [s.name for s in parallel] == [s.name for s in serial]
        assert [s.verdict for s in parallel] == [s.verdict for s in serial]
        assert [s.detail for s in parallel] == [s.detail for s in serial]
        assert ([s.safety.stats.states_stored for s in parallel]
                == [s.safety.stats.states_stored for s in serial])
        assert ([s.safety.stats.transitions for s in parallel]
                == [s.safety.stats.transitions for s in serial])
        for p, s in zip(parallel, serial):
            _assert_same_trace(p.trace, s.trace)

    def test_parallel_bridge_matches_serial(self):
        kwargs = dict(
            faults=bridge_fault_scenarios(),
            invariants=[bridge_safety_prop()],
            fused=True,
        )
        arch = fix_exactly_n_bridge(build_exactly_n_bridge())
        serial = verify_resilience(arch, jobs=1, library=ModelLibrary(),
                                   **kwargs)
        parallel = verify_resilience(arch, jobs=2, library=ModelLibrary(),
                                     **kwargs)
        assert [s.verdict for s in parallel] == [s.verdict for s in serial]
        assert [s.detail for s in parallel] == [s.detail for s in serial]
        assert ([s.safety.stats.states_stored for s in parallel]
                == [s.safety.stats.states_stored for s in serial])

    def test_unpicklable_goal_falls_back_to_serial(self):
        from repro.mc import global_prop
        # A lambda prop cannot cross a process boundary; the sweep must
        # fall back to the serial path, still be correct, and say so.
        lam = global_prop("delivered", lambda v: v.global_("delivered") == 1,
                          "delivered")
        report = verify_resilience(
            build_abp(messages=1, max_sends=2, receiver_polls=2),
            faults=abp_fault_scenarios()[:1],
            goal=lam,
            check_deadlock=False,
            max_states=20_000,
            fused=True,
            jobs=4,
        )
        assert len(report.scenarios) == 2  # baseline + 1 fault
        assert report.ok
        assert report.scenario("baseline").verdict == "robust"
        assert any("degraded to a serial run" in w for w in report.warnings)

    def test_single_cpu_degrades_to_serial_with_warning(self, monkeypatch):
        import repro.core.resilience as resilience_mod
        monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
        monkeypatch.setattr(resilience_mod.os, "cpu_count", lambda: 1)
        report = self._sweep(jobs=2)
        assert report.ok
        assert report.scenario("baseline").verdict == "robust"
        assert any("only 1 CPU" in w for w in report.warnings)


class TestExplorationEncodingEquivalence:
    """Fused vs composed inside a design-space exploration.

    The two encodings of one design are *different jobs* to the cache
    (distinct state vectors, distinct fingerprints) but must agree on
    every verdict — the fused optimization is supposed to be invisible
    to verification outcomes.  A cache-served second exploration must
    reproduce the first verdict-for-verdict.
    """

    def _space(self):
        from repro.design import (
            ChannelAxis,
            DesignSpace,
            EncodingAxis,
            SendPortAxis,
        )
        return DesignSpace(
            "pc_encodings",
            simple_pair(SEND_PORT_SPECS[0], CHANNEL_SPECS[0], messages=1),
            axes=[
                ChannelAxis("link", CHANNEL_SPECS[:2]),
                SendPortAxis("link", SEND_PORT_SPECS[:2],
                             component="Producer0"),
                EncodingAxis(),  # fastest axis: composed/fused adjacent
            ],
        )

    def test_encodings_fingerprint_apart_but_verify_alike(self):
        from repro.design import explore, fingerprint_job
        space = self._space()
        fingerprints = [
            fingerprint_job(v.build().to_system(fused=v.fused))
            for v in space.variants()
        ]
        assert len(set(fingerprints)) == len(fingerprints)

        report = explore(space)
        # The encoding axis is declared last, so records pair up as
        # (composed, fused) runs of the same port/channel design.
        for composed, fused in zip(report.results[0::2],
                                   report.results[1::2]):
            assert composed["fused"] is False and fused["fused"] is True
            assert composed["verdict"] == fused["verdict"]
            assert composed["detail"] == fused["detail"]
            assert composed["safety"]["ok"] == fused["safety"]["ok"]

    def test_cached_second_exploration_is_identical(self, tmp_path):
        from repro.design import ResultCache, explore
        cold = explore(self._space(), cache=ResultCache(tmp_path))
        warm = explore(self._space(), cache=ResultCache(tmp_path))
        assert all(r["cached"] for r in warm.results)
        for first, second in zip(cold.results, warm.results):
            assert first["verdict"] == second["verdict"]
            assert first["states"] == second["states"]
            assert first["detail"] == second["detail"]
        assert ([(r["variant"], r["front"]) for r in warm.ranked]
                == [(r["variant"], r["front"]) for r in cold.ranked])

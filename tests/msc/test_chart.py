"""Tests for message-sequence-chart extraction (Figure 4 reproduction)."""


from repro.core import AsynBlockingSend, SingleSlotBuffer, SynBlockingSend
from repro.mc import find_state, prop
from repro.msc import MessageSequenceChart, chart_from_trace
from repro.msc.chart import events_from_trace
from repro.psl import Interpreter
from repro.systems.producer_consumer import simple_pair


def trace_to_completion(arch):
    """Deterministically drive the system to quiescence, returning steps."""
    interp = Interpreter(arch.to_system())
    state = interp.initial_state()
    steps = []
    for _ in range(500):
        trans = interp.transitions(state)
        if not trans:
            break
        steps.append((trans[0].label, trans[0].target))
        state = trans[0].target
    return steps


class TestEventExtraction:
    def test_events_extracted(self):
        steps = trace_to_completion(
            simple_pair(SynBlockingSend(), SingleSlotBuffer()))
        events = events_from_trace(steps)
        assert events
        kinds = {e.kind for e in events}
        assert "handshake" in kinds

    def test_channel_filter(self):
        steps = trace_to_completion(
            simple_pair(SynBlockingSend(), SingleSlotBuffer()))
        events = events_from_trace(steps, channels=["link.snd_data"])
        assert events
        assert all(e.channel == "link.snd_data" for e in events)

    def test_process_filter(self):
        steps = trace_to_completion(
            simple_pair(SynBlockingSend(), SingleSlotBuffer()))
        events = events_from_trace(steps, processes=["Producer0"])
        assert events
        assert all(
            "Producer0" in (e.source, e.target) for e in events
        )

    def test_event_summary(self):
        steps = trace_to_completion(
            simple_pair(SynBlockingSend(), SingleSlotBuffer()))
        events = events_from_trace(steps)
        assert all(isinstance(e.summary, str) for e in events)


class TestChartRendering:
    def _chart(self):
        arch = simple_pair(SynBlockingSend(), SingleSlotBuffer())
        steps = trace_to_completion(arch)
        lifelines = ["Producer0", "link.Producer0.out.port", "link.channel",
                     "link.Consumer0.inp.port", "Consumer0"]
        return chart_from_trace(steps, lifelines)

    def test_render_has_header(self):
        text = self._chart().render()
        assert "Producer0" in text
        assert "link.channel" in text

    def test_render_has_arrows(self):
        text = self._chart().render()
        assert "-" in text
        assert ">" in text or "<" in text

    def test_signal_names_visible(self):
        text = self._chart().render()
        assert "SEND_SUCC" in text

    def test_empty_chart(self):
        chart = MessageSequenceChart(["a", "b"], [])
        text = chart.render()
        assert "a" in text and "b" in text


class TestLifelineOrdering:
    """chart_from_trace keeps lifelines in caller order — the property
    the run reports rely on for stable, system-declaration-ordered MSCs."""

    ORDER = ["Producer0", "link.Producer0.out.port", "link.channel",
             "link.Consumer0.inp.port", "Consumer0"]

    def _steps(self):
        return trace_to_completion(
            simple_pair(SynBlockingSend(), SingleSlotBuffer()))

    def test_header_columns_follow_caller_order(self):
        header = chart_from_trace(self._steps(), self.ORDER).render() \
            .splitlines()[0]
        positions = [header.index(name[:24]) for name in self.ORDER]
        assert positions == sorted(positions)

    def test_reversed_order_reverses_columns(self):
        steps = self._steps()
        fwd = chart_from_trace(steps, self.ORDER).render().splitlines()[0]
        rev = chart_from_trace(steps, list(reversed(self.ORDER))) \
            .render().splitlines()[0]
        assert fwd.index("Producer0") < fwd.index("Consumer0")
        assert rev.index("Consumer0") < rev.index("Producer0")

    def test_arrow_direction_tracks_column_order(self):
        steps = self._steps()
        fwd = chart_from_trace(steps, self.ORDER).render()
        rev = chart_from_trace(steps, list(reversed(self.ORDER))).render()
        # the first handshake leaves Producer0 rightward in caller order,
        # leftward when the lifelines are reversed
        assert ">" in fwd
        assert "<" in rev

    def test_events_outside_lifelines_are_dropped(self):
        steps = self._steps()
        only_pair = ["Producer0", "link.Producer0.out.port"]
        chart = chart_from_trace(steps, only_pair)
        for ev in chart.events:
            assert {ev.source, ev.target} & set(only_pair)

    def test_same_trace_same_bytes(self):
        steps = self._steps()
        a = chart_from_trace(steps, self.ORDER).render()
        b = chart_from_trace(steps, self.ORDER).render()
        assert a == b


class TestFigure4Orderings:
    """The paper's Figure 4: async vs sync blocking send scenarios."""

    def _first_trace_with_ack(self, send_spec):
        arch = simple_pair(send_spec, SingleSlotBuffer(), messages=1)
        system = arch.to_system()
        acked = prop("acked", lambda v: v.global_("acked_0") == 1)
        trace = find_state(system, acked)
        assert trace is not None
        return list(zip(trace.labels(), trace.states()[1:]))

    @staticmethod
    def _index_of_signal(steps, signal):
        for i, (label, _state) in enumerate(steps):
            if label.message and label.message[0] == signal:
                return i
        return None

    def test_async_ack_before_recv_ok(self):
        """Fig 4(a): shortest ack path has SEND_SUCC without any RECV_OK."""
        steps = self._first_trace_with_ack(AsynBlockingSend())
        succ = self._index_of_signal(steps, "SEND_SUCC")
        recv_ok = self._index_of_signal(steps, "RECV_OK")
        assert succ is not None
        assert recv_ok is None or succ < recv_ok

    def test_sync_ack_after_recv_ok(self):
        """Fig 4(b): SEND_SUCC only after IN_OK and RECV_OK."""
        steps = self._first_trace_with_ack(SynBlockingSend())
        succ = self._index_of_signal(steps, "SEND_SUCC")
        in_ok = self._index_of_signal(steps, "IN_OK")
        recv_ok = self._index_of_signal(steps, "RECV_OK")
        assert None not in (succ, in_ok, recv_ok)
        assert in_ok < recv_ok < succ

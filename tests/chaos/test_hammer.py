"""Multi-process hammer: many writers, readers, and a compactor on one
cache directory, with and without ``kill -9`` mid-write.

The robustness bar for the shared verdict store, asserted for **both**
backends:

* zero lost acknowledged verdicts — a ``put`` that returned (proven by
  an fsynced ack file) is served by every later reader, through any
  interleaving of appends, compactions, and crashes;
* zero corrupt reads — a served record always carries the payload that
  was stored for its fingerprint, never a torn or foreign one;
* the store audits clean afterwards (``repro cache verify`` exits 0).

The JSONL backend serializes writers through the advisory lock (each
writer opens, puts, closes, retrying on ``CacheLockedError``); the
SQLite backend takes genuinely concurrent writers.  The kill case uses
the ``cache.put`` failpoint, which for SQLite sits *inside* the write
transaction (after the INSERT, before the COMMIT) — a crash there must
roll back, never tear.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.design import open_cache
from repro.design.failpoints import KILL_EXIT_CODE

REPO_ROOT = Path(__file__).parents[2]

#: Acceptance floor from the issue: N>=4 writer processes, M>=50 puts.
N_WRITERS = 4
M_RECORDS = 50
N_READERS = 2
VICTIM_RECORDS = 20
VICTIM_KILL_AT = 10

_WRITER = """
import os, sys, time
from repro.design import open_cache, CacheLockedError
cache_dir, backend, wid, n, ack_dir = sys.argv[1:6]


def fp_for(wid, i):
    return ("%02d" % int(wid)) + ("%062d" % i)


def ack(fp):
    path = os.path.join(ack_dir, fp)
    with open(path, "w") as fh:
        fh.write(fp)
        fh.flush()
        os.fsync(fh.fileno())


def put_one(cache, fp):
    cache.put(fp, {"verdict": "PASS", "payload": fp[:12],
                   "worker": int(wid)})


if backend == "sqlite":
    # Concurrent-safe: one connection for the whole run.
    with open_cache(cache_dir, backend=backend) as cache:
        for i in range(int(n)):
            fp = fp_for(wid, i)
            put_one(cache, fp)
            ack(fp)
else:
    # Single-writer journal: take and release the lock per record,
    # retrying while a sibling holds it.
    for i in range(int(n)):
        fp = fp_for(wid, i)
        while True:
            try:
                with open_cache(cache_dir, backend=backend) as cache:
                    put_one(cache, fp)
                break
            except CacheLockedError:
                time.sleep(0.002)
        ack(fp)
print("writer-done", wid)
"""

_READER = """
import os, sys, time
from repro.design import open_cache
cache_dir, backend, ack_dir, rounds = sys.argv[1:5]
for _ in range(int(rounds)):
    acked = os.listdir(ack_dir)  # acks are fsynced *after* put returns
    with open_cache(cache_dir, backend=backend) as cache:
        for fp in acked:
            record = cache.get(fp)
            if record is None:
                print("LOST", fp)
                sys.exit(9)
            if record.get("payload") != fp[:12]:
                print("CORRUPT", fp, record)
                sys.exit(10)
    time.sleep(0.01)
print("reader-ok")
"""

_COMPACTOR = """
import sqlite3, sys, time
from repro.design import open_cache, CacheLockedError
cache_dir, backend, rounds = sys.argv[1:4]
for _ in range(int(rounds)):
    try:
        with open_cache(cache_dir, backend=backend) as cache:
            cache.compact()
    except CacheLockedError:
        pass  # a writer holds the journal; try again next round
    except sqlite3.OperationalError:
        pass  # sustained writer pressure; vacuum next round
    time.sleep(0.02)
print("compactor-done")
"""


def _spawn(script, args, failpoints_spec=""):
    env = {"PYTHONPATH": "src"}
    if failpoints_spec:
        env["REPRO_FAILPOINTS"] = failpoints_spec
    return subprocess.Popen(
        [sys.executable, "-c", script] + [str(a) for a in args],
        env=env, cwd=str(REPO_ROOT),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)


def _finish(proc, what, timeout=120):
    out, err = proc.communicate(timeout=timeout)
    return proc.returncode, f"{what}: rc={proc.returncode}\n{out}\n{err}"


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
class TestHammer:
    def _hammer(self, tmp_path, backend, *, with_kill):
        cache_dir = tmp_path / "cache"
        ack_dir = tmp_path / "acks"
        os.makedirs(cache_dir)
        os.makedirs(ack_dir)

        procs = []
        for wid in range(N_WRITERS):
            procs.append(("writer", _spawn(
                _WRITER, [cache_dir, backend, wid, M_RECORDS, ack_dir])))
        for _ in range(N_READERS):
            procs.append(("reader", _spawn(
                _READER, [cache_dir, backend, ack_dir, 25])))
        procs.append(("compactor", _spawn(
            _COMPACTOR, [cache_dir, backend, 10])))

        victim_fp = None
        if with_kill:
            # One more writer, killed mid-put (for SQLite: inside the
            # transaction, after the INSERT and before the COMMIT).
            victim_id = N_WRITERS
            victim_fp = ("%02d" % victim_id) + ("%062d" % VICTIM_KILL_AT)
            victim = _spawn(
                _WRITER,
                [cache_dir, backend, victim_id, VICTIM_RECORDS, ack_dir],
                failpoints_spec=f"cache.put=kill@{victim_fp}")
            rc, detail = _finish(victim, "victim")
            assert rc == KILL_EXIT_CODE, detail

        for what, proc in procs:
            rc, detail = _finish(proc, what)
            assert rc == 0, detail

        if with_kill:
            # The killed writer's run is simply rerun; the store must
            # absorb it cleanly after the crash.
            rerun = _spawn(_WRITER, [cache_dir, backend, N_WRITERS,
                                     VICTIM_RECORDS, ack_dir])
            rc, detail = _finish(rerun, "victim-rerun")
            assert rc == 0, detail

        # Zero lost acknowledged verdicts, zero corrupt reads — from a
        # fresh opener, after every process has exited.
        acked = sorted(os.listdir(ack_dir))
        expected = N_WRITERS * M_RECORDS + (VICTIM_RECORDS if with_kill
                                            else 0)
        assert len(acked) == expected
        with open_cache(cache_dir, backend=backend) as cache:
            for fp in acked:
                record = cache.get(fp)
                assert record is not None, f"lost acknowledged {fp}"
                assert record["payload"] == fp[:12], record
            audit = cache.verify()
        assert audit["ok"], audit

        # And the CLI auditor agrees.
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "cache", "verify",
             "--cache-dir", str(cache_dir)],
            env={"PYTHONPATH": "src"}, cwd=str(REPO_ROOT),
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_concurrent_hammer(self, tmp_path, backend):
        self._hammer(tmp_path, backend, with_kill=False)

    def test_concurrent_hammer_with_mid_write_kills(self, tmp_path, backend):
        self._hammer(tmp_path, backend, with_kill=True)

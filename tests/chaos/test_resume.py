"""Checkpoint/resume: an interrupted exploration picks up where it left.

Acceptance: interrupt a run after K jobs; ``explore(resume=RUN_ID)``
re-runs only the remaining jobs, performs zero cache traffic for the
completed K (they are served from the run journal), and the final
report equals the uninterrupted run's.
"""

import signal

import pytest

from repro.core import (
    AsynBlockingSend,
    FifoQueue,
    SingleSlotBuffer,
    SynBlockingSend,
)
from repro.design import (
    ChannelAxis,
    DesignSpace,
    ResultCache,
    RunJournal,
    SendPortAxis,
    explore,
)
from repro.systems.producer_consumer import simple_pair

CHANNELS = [SingleSlotBuffer(), FifoQueue(size=2)]
PORTS = [AsynBlockingSend(), SynBlockingSend()]


def _space():
    return DesignSpace(
        "pc",
        simple_pair(PORTS[0], CHANNELS[0], messages=1),
        axes=[ChannelAxis("link", CHANNELS),
              SendPortAxis("link", PORTS, component="Producer0")],
        fused=True,
    )


def _strip_volatile(record):
    out = {k: v for k, v in record.items()
           if k not in ("seconds", "cached", "resumed", "deduplicated",
                        "models_reused", "models_built")}
    if out.get("safety"):
        out["safety"] = {k: v for k, v in out["safety"].items()
                         if k != "statistics"} | {
            "states": record["safety"]["statistics"]["states_stored"]}
    return out


class InterruptAfter:
    """A reporter that raises SIGINT once N fresh variants finished."""

    interval = 1000

    def __init__(self, n):
        self.remaining = n

    def emit(self, event):
        if (event.type == "variant_finished"
                and not event.data.get("cached")):
            self.remaining -= 1
            if self.remaining == 0:
                signal.raise_signal(signal.SIGINT)

    def close(self):
        pass


class TestResume:
    def test_resume_runs_only_the_remaining_jobs(self, tmp_path):
        cache_dir = tmp_path / "cache"
        partial = explore(_space(), cache=ResultCache(cache_dir), jobs=1,
                          reporter=InterruptAfter(2))
        assert partial.interrupted
        run_id = partial.run_id

        cache = ResultCache(cache_dir)
        resumed = explore(_space(), cache=cache, resume=run_id)
        assert not resumed.interrupted
        assert resumed.complete
        assert resumed.run_id == run_id

        # The completed K came from the journal: zero cache traffic for
        # them, and the two remaining jobs were fresh misses.
        assert sum(1 for r in resumed.results if r.get("resumed")) == 2
        assert cache.hits == 0
        assert cache.misses == 2

        # The resumed report equals an uninterrupted run's.
        baseline = explore(_space(), cache=ResultCache(tmp_path / "b"))
        assert ([_strip_volatile(r) for r in resumed.results]
                == [_strip_volatile(r) for r in baseline.results])
        assert ([r["variant"] for r in resumed.ranked]
                == [r["variant"] for r in baseline.ranked])

        state = RunJournal.load(str(cache_dir / "runs"), run_id)
        assert state.finished
        assert state.attempts == 2
        assert state.pending == []
        assert len(state.completed) == 4

    def test_resume_of_a_finished_run_reverifies_nothing(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = explore(_space(), cache=ResultCache(cache_dir))
        assert first.complete

        cache = ResultCache(cache_dir)
        again = explore(_space(), cache=cache, resume=first.run_id)
        assert again.complete
        assert all(r.get("resumed") for r in again.results)
        assert cache.hits == 0 and cache.misses == 0
        assert ([_strip_volatile(r) for r in again.results]
                == [_strip_volatile(r) for r in first.results])

    def test_resume_unknown_run_id_raises_with_known_runs(self, tmp_path):
        cache_dir = tmp_path / "cache"
        report = explore(_space(), cache=ResultCache(cache_dir))
        with pytest.raises(FileNotFoundError, match=report.run_id):
            explore(_space(), cache=ResultCache(cache_dir),
                    resume="no-such-run")

    def test_resume_without_journal_dir_is_an_error(self):
        with pytest.raises(ValueError, match="journal_dir"):
            explore(_space(), resume="r1")

    def test_explicit_run_id_names_the_journal(self, tmp_path):
        cache_dir = tmp_path / "cache"
        report = explore(_space(), cache=ResultCache(cache_dir),
                         run_id="nightly-7")
        assert report.run_id == "nightly-7"
        state = RunJournal.load(str(cache_dir / "runs"), "nightly-7")
        assert state.finished

"""Shared fixtures for the chaos (fault-injection) suite.

Every test runs with a clean ``REPRO_FAILPOINTS`` environment and a
clean per-process failpoint counter, so one test's injected faults
never leak into the next.
"""

import pytest

from repro.design import failpoints


@pytest.fixture(autouse=True)
def clean_failpoints(monkeypatch):
    monkeypatch.delenv(failpoints.ENV_VAR, raising=False)
    failpoints.reset()
    yield
    failpoints.reset()


@pytest.fixture
def inject(monkeypatch):
    """Set the failpoint spec for this test: ``inject("worker.run=kill")``."""
    def _inject(spec: str) -> None:
        monkeypatch.setenv(failpoints.ENV_VAR, spec)
    return _inject

"""Fault injection against the exploration runtime.

The acceptance bar: killing workers, stalling jobs, or crashing the
cache writer degrades exactly the affected variants — never the run.
Fault-free records must come out byte-identical to a fault-free run.
"""

import signal
import subprocess
import sys

from repro.core import (
    AsynBlockingSend,
    FifoQueue,
    SingleSlotBuffer,
    SynBlockingSend,
)
from repro.design import (
    INCOMPLETE,
    ChannelAxis,
    DesignSpace,
    ResultCache,
    RetryPolicy,
    RunJournal,
    SendPortAxis,
    explore,
)
from repro.design.failpoints import KILL_EXIT_CODE
from repro.obs import CollectingReporter
from repro.systems.producer_consumer import simple_pair

CHANNELS = [SingleSlotBuffer(), FifoQueue(size=2)]
PORTS = [AsynBlockingSend(), SynBlockingSend()]

#: Retry fast in tests: deterministic faults fail every attempt anyway.
FAST_RETRY = RetryPolicy(max_retries=1, backoff_base=0.01, backoff_max=0.05)


def _space():
    return DesignSpace(
        "pc",
        simple_pair(PORTS[0], CHANNELS[0], messages=1),
        axes=[ChannelAxis("link", CHANNELS),
              SendPortAxis("link", PORTS, component="Producer0")],
        fused=True,
    )


def _strip_volatile(record):
    out = {k: v for k, v in record.items()
           if k not in ("seconds", "cached", "resumed", "deduplicated",
                        "models_reused", "models_built")}
    if out.get("safety"):
        out["safety"] = {k: v for k, v in out["safety"].items()
                         if k != "statistics"} | {
            "states": record["safety"]["statistics"]["states_stored"]}
    return out


class TestWorkerKill:
    def test_killed_workers_degrade_only_their_variants(self, tmp_path,
                                                        inject):
        baseline = explore(_space(), jobs=2)

        # Kill the workers running variants 1 and 2, every attempt.
        inject("worker.run=kill@1,2")
        collector = CollectingReporter()
        report = explore(_space(), cache=ResultCache(tmp_path / "cache"),
                         jobs=2, retry=FAST_RETRY, reporter=collector)

        verdicts = {r["index"]: r["verdict"] for r in report.results}
        assert verdicts[1] == INCOMPLETE
        assert verdicts[2] == INCOMPLETE
        assert verdicts[0] == "PASS" and verdicts[3] == "PASS"

        for record in report.failures:
            assert record["failure"]["cause"] == "worker-died"
            assert record["failure"]["attempts"] == FAST_RETRY.max_attempts
            assert str(KILL_EXIT_CODE) in record["failure"]["detail"]

        # Surviving variants are identical to the fault-free run.
        for index in (0, 3):
            assert (_strip_volatile(report.results[index])
                    == _strip_volatile(baseline.results[index]))

        assert not report.complete
        retry_events = [e for e in collector.events if e.type == "job_retry"]
        failed_events = [e for e in collector.events
                         if e.type == "job_failed"]
        assert len(retry_events) == 2  # one retry each before giving up
        assert sorted(e.scenario for e in failed_events) == sorted(
            report.failures[i]["variant"] for i in range(2))

    def test_failed_jobs_are_not_cached_and_rerun_clean(self, tmp_path,
                                                        inject):
        cache_dir = tmp_path / "cache"
        inject("worker.run=kill@1")
        broken = explore(_space(), cache=ResultCache(cache_dir), jobs=2,
                         retry=FAST_RETRY)
        assert broken.results[1]["verdict"] == INCOMPLETE

        # Fault cleared: the INCOMPLETE variant was never cached, so a
        # fresh run re-verifies it (and only it) to a real verdict.
        cache = ResultCache(cache_dir)
        healed = explore(_space(), cache=cache, jobs=2)
        assert healed.results[1]["verdict"] == "PASS"
        assert cache.hits == 3 and cache.misses == 1
        assert healed.complete

    def test_transient_checker_exception_is_retried_serially(self,
                                                             monkeypatch):
        from repro.design import scheduler
        real = scheduler._verify_variant
        crashes = []

        def flaky(variant, *args, **kwargs):
            if variant.index == 1 and not crashes:
                crashes.append(variant.index)
                raise RuntimeError("transient checker glitch")
            return real(variant, *args, **kwargs)

        monkeypatch.setattr(scheduler, "_verify_variant", flaky)
        report = explore(_space(), jobs=1, retry=FAST_RETRY)
        assert crashes == [1]  # it did fail once...
        assert all(r["verdict"] == "PASS" for r in report.results)

    def test_persistent_checker_exception_degrades_serially(self,
                                                            monkeypatch):
        from repro.design import scheduler
        real = scheduler._verify_variant

        def broken(variant, *args, **kwargs):
            if variant.index == 1:
                raise RuntimeError("deterministic checker bug")
            return real(variant, *args, **kwargs)

        monkeypatch.setattr(scheduler, "_verify_variant", broken)
        report = explore(_space(), jobs=1, retry=FAST_RETRY)
        record = next(r for r in report.results if r["index"] == 1)
        assert record["verdict"] == INCOMPLETE
        assert record["failure"]["cause"] == "checker-exception"
        assert "deterministic checker bug" in record["failure"]["detail"]
        assert sum(1 for r in report.results
                   if r["verdict"] == "PASS") == 3


class TestTimeout:
    def test_stalled_worker_times_out_to_incomplete(self, inject):
        inject("worker.run=sleep:30@2")
        report = explore(_space(), jobs=2, retry=FAST_RETRY,
                         job_timeout=1.0)
        verdicts = {r["index"]: r["verdict"] for r in report.results}
        assert verdicts[2] == INCOMPLETE
        record = next(r for r in report.results if r["index"] == 2)
        assert record["failure"]["cause"] == "timeout"
        assert record["failure"]["attempts"] == 1  # timeouts not retried
        assert sum(1 for v in verdicts.values() if v == "PASS") == 3


_CRASH_SCRIPT = """
import sys
from repro.design import ResultCache
cache = ResultCache(sys.argv[1])
cache.put("a" * 64, {"verdict": "PASS", "states": 10})
cache.put("b" * 64, {"verdict": "FAIL", "states": 20})
cache.put("c" * 64, {"verdict": "PASS", "states": 30})  # killed here
"""

_FLUSH_CRASH_SCRIPT = """
import sys
from repro.design import ResultCache
cache = ResultCache(sys.argv[1])
cache.put("a" * 64, {"verdict": "PASS", "states": 10})
cache.flush()  # killed at the index-write failpoint
"""


class TestCacheCrash:
    def _run(self, script, cache_dir, failpoints_spec):
        return subprocess.run(
            [sys.executable, "-c", script, str(cache_dir)],
            env={"PYTHONPATH": "src", "REPRO_FAILPOINTS": failpoints_spec},
            cwd=str(__import__("pathlib").Path(__file__).parents[2]),
            capture_output=True, text=True)

    def test_crash_mid_put_loses_only_the_inflight_record(self, tmp_path):
        proc = self._run(_CRASH_SCRIPT, tmp_path,
                         "cache.put=kill@" + "c" * 64)
        assert proc.returncode == KILL_EXIT_CODE, proc.stderr

        cache = ResultCache(tmp_path)  # reopens cleanly, rebuilds index
        assert cache.get("a" * 64)["verdict"] == "PASS"
        assert cache.get("b" * 64)["verdict"] == "FAIL"
        assert cache.get("c" * 64) is None  # at most the in-flight record
        assert cache.verify()["ok"]

    def test_crash_between_journal_append_and_index_write(self, tmp_path):
        proc = self._run(_FLUSH_CRASH_SCRIPT, tmp_path, "cache.index=kill")
        assert proc.returncode == KILL_EXIT_CODE, proc.stderr
        assert not (tmp_path / "index.json").exists()

        # The journal append was durable; reopening rebuilds the index.
        cache = ResultCache(tmp_path)
        assert cache.get("a" * 64)["verdict"] == "PASS"
        assert (tmp_path / "index.json").exists()
        assert cache.verify()["ok"]


class TestSerialInterrupt:
    def test_sigint_mid_run_returns_partial_report(self, tmp_path):
        class InterruptAfter:
            """Raise SIGINT once N variants have finished verifying."""

            interval = 1000

            def __init__(self, n):
                self.remaining = n

            def emit(self, event):
                if event.type == "variant_finished" and \
                        not event.data.get("cached"):
                    self.remaining -= 1
                    if self.remaining == 0:
                        signal.raise_signal(signal.SIGINT)

            def close(self):
                pass

        cache = ResultCache(tmp_path / "cache")
        report = explore(_space(), cache=cache, jobs=1,
                         reporter=InterruptAfter(2))
        assert report.interrupted
        assert not report.complete
        assert report.run_id is not None
        done = [r for r in report.results if r["verdict"] == "PASS"]
        skipped = [r for r in report.results if r["verdict"] == "SKIPPED"]
        assert len(done) == 2 and len(skipped) == 2
        assert "interrupted" in skipped[0]["detail"]

        state = RunJournal.load(str(tmp_path / "cache" / "runs"),
                                report.run_id)
        assert state.interrupted
        assert len(state.completed) == 2
        assert len(state.pending) == 2

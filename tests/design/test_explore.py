"""The exploration scheduler: caching, parallelism, policies, ranking.

Differential contract mirrored from the resilience sweeps: serial,
parallel, and cache-served explorations must produce identical ranked
output.
"""

import pytest

from repro.core import (
    AsynBlockingSend,
    FifoQueue,
    ModelLibrary,
    SingleSlotBuffer,
    SynBlockingSend,
)
from repro.design import (
    FIRST_PASS,
    ChannelAxis,
    DesignSpace,
    ResultCache,
    SendPortAxis,
    explore,
    rank_records,
)
from repro.obs import CollectingReporter
from repro.systems.producer_consumer import simple_pair

CHANNELS = [SingleSlotBuffer(), FifoQueue(size=2)]
PORTS = [AsynBlockingSend(), SynBlockingSend()]


def _space():
    return DesignSpace(
        "pc",
        simple_pair(PORTS[0], CHANNELS[0], messages=1),
        axes=[ChannelAxis("link", CHANNELS),
              SendPortAxis("link", PORTS, component="Producer0")],
        fused=True,
    )


def _strip_volatile(record):
    # seconds is wall clock; cached/deduplicated are provenance; the
    # model-library counters depend on which process built what.
    out = {k: v for k, v in record.items()
           if k not in ("seconds", "cached", "deduplicated",
                        "models_reused", "models_built")}
    if out.get("safety"):
        out["safety"] = {k: v for k, v in out["safety"].items()
                         if k != "statistics"} | {
            "states": record["safety"]["statistics"]["states_stored"]}
    return out


class TestExhaustive:
    def test_results_follow_enumeration_order(self):
        space = _space()
        report = explore(space)
        assert [r["variant"] for r in report.results] == [
            v.name for v in space.variants()]
        assert [r["index"] for r in report.results] == [0, 1, 2, 3]
        assert all(r["verdict"] == "PASS" for r in report.results)
        assert report.complete and report.any_pass

    def test_record_shape(self):
        record = explore(_space()).results[0]
        for key in ("space", "variant", "index", "labels", "fused",
                    "verdict", "detail", "states", "seconds", "budget_hit",
                    "safety", "models_reused", "models_built", "cached"):
            assert key in record
        assert record["space"] == "pc"
        assert record["fused"] is True
        assert record["states"] > 0

    def test_shared_library_reuses_models(self):
        library = ModelLibrary()
        report = explore(_space(), library=library)
        assert library.stats.hits > 0
        assert report.library_snapshot[2] > 0  # misses: something was built

    def test_ranked_is_pareto_annotated(self):
        report = explore(_space())
        fronts = [r["front"] for r in report.ranked]
        assert fronts == sorted(fronts)
        assert report.best is report.ranked[0]
        assert report.best["verdict"] == "PASS"


class TestCache:
    def test_warm_run_serves_everything_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = explore(_space(), cache=cache)
        assert cold.cached_count == 0

        warm_cache = ResultCache(tmp_path)
        warm = explore(_space(), cache=warm_cache)
        assert warm.cached_count == len(warm.results)
        hit_ratio = warm_cache.stats()["hits"] / len(warm.results)
        assert hit_ratio >= 0.9  # the headline cache claim (here: 1.0)

        # Verdict-for-verdict identical, only provenance flags differ.
        assert ([_strip_volatile(r) for r in warm.results]
                == [_strip_volatile(r) for r in cold.results])
        assert ([r["variant"] for r in warm.ranked]
                == [r["variant"] for r in cold.ranked])

    def test_cache_disabled_runs_everything(self, tmp_path):
        report = explore(_space(), cache=None)
        assert report.cache_stats is None
        assert report.cached_count == 0

    def test_identical_bases_deduplicate_within_run(self, tmp_path):
        arch = simple_pair(PORTS[1], CHANNELS[0], messages=1)
        space = DesignSpace("pc", [("a", arch), ("b", arch.copy())],
                            fused=True)
        cache = ResultCache(tmp_path)
        report = explore(space, cache=cache)
        assert len(report.results) == 2
        assert report.results[1].get("deduplicated") is True
        assert report.results[0]["states"] == report.results[1]["states"]
        # The twin is served in-process: one verification, one stored record.
        assert cache.stats()["stored"] == 1
        # Identity fields still describe the twin, not the donor.
        assert report.results[1]["variant"] == "b"
        assert report.results[1]["base"] == "b"


class TestParallel:
    def test_parallel_matches_serial(self):
        serial = explore(_space(), jobs=1)
        parallel = explore(_space(), jobs=2)
        assert ([_strip_volatile(r) for r in parallel.results]
                == [_strip_volatile(r) for r in serial.results])
        assert ([(r["variant"], r["front"]) for r in parallel.ranked]
                == [(r["variant"], r["front"]) for r in serial.ranked])

    def test_unpicklable_space_falls_back_to_serial(self):
        from repro.mc import global_prop
        lam = global_prop("bound", lambda v: v.global_("consumed_0") in (0, 1),
                          "consumed_0")
        collector = CollectingReporter()
        report = explore(_space(), invariants=[lam], jobs=4,
                         reporter=collector)
        assert len(report.results) == 4
        assert all(r["verdict"] == "PASS" for r in report.results)
        # The degradation is audible: a warning on the report and an
        # engine event, not a silent serial run.
        assert any("degraded to a serial run" in w for w in report.warnings)
        warnings = [e for e in collector.events if e.type == "warning"]
        assert len(warnings) == 1
        assert "pickle" in warnings[0].data["message"]

    def test_fault_free_parallel_run_has_no_warnings(self):
        report = explore(_space(), jobs=2)
        assert report.warnings == []


class TestPolicies:
    def test_first_pass_stops_early(self):
        report = explore(_space(), policy=FIRST_PASS)
        verdicts = [r["verdict"] for r in report.results]
        assert verdicts.count("PASS") == 1
        assert verdicts.count("SKIPPED") == len(verdicts) - 1
        assert report.stopped_early
        assert not report.complete
        assert report.best["verdict"] == "PASS"
        # Cheapest-first: the single-slot buffer variants run before the
        # deeper fifo ones, so the winner is a single-slot design.
        assert "single_slot_buffer" in report.best["variant"]

    def test_first_pass_parallel_matches_serial(self):
        serial = explore(_space(), policy=FIRST_PASS, jobs=1)
        parallel = explore(_space(), policy=FIRST_PASS, jobs=2)
        assert ([r["verdict"] for r in parallel.results]
                == [r["verdict"] for r in serial.results])
        assert parallel.best["variant"] == serial.best["variant"]

    def test_budget_exhaustion_yields_unknown(self):
        report = explore(_space(), max_states=10)
        assert all(r["verdict"] == "UNKNOWN" for r in report.results)
        assert all(r["budget_hit"] for r in report.results)
        assert report.any_budget_hit
        assert not report.complete


class TestEvents:
    def test_event_stream_brackets_every_variant(self):
        reporter = CollectingReporter()
        report = explore(_space(), reporter=reporter)
        events = reporter.events
        assert events[0].type == "exploration_started"
        assert events[0].data["variants"] == 4
        assert events[-1].type == "exploration_finished"
        assert events[-1].data["best"] == report.best["variant"]
        starts = [e for e in events if e.type == "variant_started"]
        ends = [e for e in events if e.type == "variant_finished"]
        assert [e.scenario for e in starts] == [e.scenario for e in ends]
        assert [e.scenario for e in starts] == [
            r["variant"] for r in report.results]

    def test_cached_variants_are_bracketed_too(self, tmp_path):
        cache = ResultCache(tmp_path)
        explore(_space(), cache=cache)
        reporter = CollectingReporter()
        explore(_space(), cache=ResultCache(tmp_path), reporter=reporter)
        starts = [e for e in reporter.events if e.type == "variant_started"]
        assert len(starts) == 4
        assert all(e.data["cached"] for e in starts)


class TestRanking:
    def _record(self, name, verdict, states, worst=None):
        record = {"variant": name, "verdict": verdict, "states": states}
        if worst is not None:
            record["resilience"] = {"worst": worst}
        return record

    def test_pass_fronts_precede_fail(self):
        ranked = rank_records([
            self._record("bad", "FAIL", 10),
            self._record("good", "PASS", 100),
        ])
        assert [r["variant"] for r in ranked] == ["good", "bad"]
        assert [r["front"] for r in ranked] == [1, 1]  # neither dominates

    def test_dominated_record_falls_to_second_front(self):
        ranked = rank_records([
            self._record("small", "PASS", 10),
            self._record("dominated", "PASS", 20),
        ])
        assert [r["front"] for r in ranked] == [1, 2]

    def test_robust_outranks_degraded_within_front(self):
        ranked = rank_records([
            self._record("fragile_small", "PASS", 10, worst="degraded"),
            self._record("robust_large", "PASS", 100, worst="robust"),
        ])
        assert [r["variant"] for r in ranked] == [
            "robust_large", "fragile_small"]
        assert [r["front"] for r in ranked] == [1, 1]

    def test_rank_is_pure(self):
        records = [self._record("a", "PASS", 10)]
        ranked = rank_records(records)
        assert "front" not in records[0]
        assert ranked[0] is not records[0]


class TestTable:
    def test_table_is_deterministic_and_wall_clock_free(self, tmp_path):
        report = explore(_space(), cache=ResultCache(tmp_path))
        table = report.table()
        assert table == report.table()
        assert "seconds" not in table
        assert "best:" in table
        for record in report.results:
            assert record["variant"] in table

    def test_run_report_round_trips(self, tmp_path):
        report = explore(_space())
        run = report.to_run_report(command="repro explore pc")
        path = tmp_path / "report.json"
        run.save(str(path))
        from repro.obs.report import RunReport
        loaded = RunReport.load(str(path))
        md = loaded.to_markdown()
        assert "Design-space exploration" in md
        assert report.best["variant"] in md


@pytest.mark.parametrize("jobs", [1, 2])
def test_exploration_with_faults_reports_resilience(jobs, tmp_path):
    from repro.core import DroppingBuffer
    from repro.core.resilience import ChannelFault, FaultScenario
    fault = FaultScenario(
        "lossy_link", [ChannelFault("link", DroppingBuffer(size=1))])
    report = explore(_space(), faults=[fault], jobs=jobs)
    passing = [r for r in report.results if r["verdict"] == "PASS"]
    assert passing
    for record in passing:
        assert record["resilience"]["worst"] in (
            "robust", "degraded", "broken", "unknown")
        assert [s["name"] for s in record["resilience"]["scenarios"]] == [
            "lossy_link"]

"""Tests for declarative design spaces: axes, constraints, enumeration."""

import pytest

from repro.core import (
    AsynBlockingSend,
    DroppingBuffer,
    FifoQueue,
    SingleSlotBuffer,
    SynBlockingSend,
    TimeoutReceive,
)
from repro.core.resilience import ChannelFault, FaultScenario
from repro.design import (
    COMPOSED,
    FUSED,
    ChannelAxis,
    DesignSpace,
    DesignSpaceError,
    EncodingAxis,
    FaultAxis,
    ReceivePortAxis,
    SendPortAxis,
)
from repro.systems.producer_consumer import simple_pair

CHANNELS = [SingleSlotBuffer(), FifoQueue(size=2)]
PORTS = [AsynBlockingSend(), SynBlockingSend()]


def _arch():
    return simple_pair(PORTS[0], CHANNELS[0], messages=1)


def _space(**kwargs):
    return DesignSpace(
        "pc",
        _arch(),
        axes=[ChannelAxis("link", CHANNELS),
              SendPortAxis("link", PORTS, component="Producer0")],
        **kwargs,
    )


class TestEnumeration:
    def test_product_order_last_axis_fastest(self):
        names = [v.name for v in _space().variants()]
        assert names == [
            "chan[link]=single_slot_buffer/send[link.Producer0]=asyn_blocking_send",
            "chan[link]=single_slot_buffer/send[link.Producer0]=syn_blocking_send",
            "chan[link]=fifo_queue(2)/send[link.Producer0]=asyn_blocking_send",
            "chan[link]=fifo_queue(2)/send[link.Producer0]=syn_blocking_send",
        ]

    def test_enumeration_is_deterministic(self):
        first = [(v.index, v.name) for v in _space().variants()]
        second = [(v.index, v.name) for v in _space().variants()]
        assert first == second
        assert [i for i, _ in first] == [0, 1, 2, 3]

    def test_variant_labels_and_choice(self):
        v = _space().variants()[3]
        assert v.labels["chan[link]"] == "fifo_queue(2)"
        assert v.labels["send[link.Producer0]"] == "syn_blocking_send"
        assert v.choice("send[link.Producer0]") == "syn_blocking_send"
        with pytest.raises(KeyError):
            v.choice("no_such_axis")

    def test_multiple_bases_prefix_names(self):
        space = DesignSpace(
            "pc", [("small", _arch()), ("large", _arch())],
            axes=[SendPortAxis("link", PORTS, component="Producer0")])
        names = [v.name for v in space.variants()]
        assert names[0].startswith("small/")
        assert names[2].startswith("large/")
        assert len(names) == 4

    def test_constraints_filter_and_reindex(self):
        space = _space(constraints=[
            lambda v: v.choice("send[link.Producer0]") == "syn_blocking_send"])
        variants = space.variants()
        assert len(variants) == 2
        assert [v.index for v in variants] == [0, 1]
        assert all("syn_blocking_send" in v.name for v in variants)


class TestBuild:
    def test_build_applies_channel_and_port_swaps(self):
        v = _space().variants()[3]
        arch = v.build()
        conn = arch.connector("link")
        assert conn.channel.key() == FifoQueue(size=2).key()
        senders = {a.component: a.spec for a in conn.senders}
        assert senders["Producer0"].key() == SynBlockingSend().key()

    def test_build_does_not_mutate_base(self):
        space = _space()
        space.variants()[3].build()
        base = space.bases[0][1]
        assert base.connector("link").channel.key() == CHANNELS[0].key()

    def test_receive_port_axis_swaps_all_receivers(self):
        space = DesignSpace(
            "pc", _arch(),
            axes=[ReceivePortAxis("link", [TimeoutReceive()])])
        arch = space.variants()[0].build()
        specs = {a.spec.key() for a in arch.connector("link").receivers}
        assert specs == {TimeoutReceive().key()}

    def test_encoding_axis_overrides_space_default(self):
        space = DesignSpace("pc", _arch(), axes=[EncodingAxis()], fused=True)
        by_label = {v.labels["encoding"]: v for v in space.variants()}
        assert by_label[COMPOSED].fused is False
        assert by_label[FUSED].fused is True

    def test_space_fused_default_applies_without_encoding_axis(self):
        assert all(v.fused for v in _space(fused=True).variants())
        assert not any(v.fused for v in _space().variants())

    def test_fault_axis_attaches_scenario(self):
        scenario = FaultScenario(
            "lossy", [ChannelFault("link", DroppingBuffer(size=1))])
        space = DesignSpace(
            "pc", _arch(), axes=[FaultAxis([None, scenario])])
        variants = space.variants()
        assert variants[0].labels["fault"] == "none"
        assert variants[0].scenario is None
        assert variants[1].labels["fault"] == "lossy"
        faulted = variants[1].build()
        assert (faulted.connector("link").channel.key()
                == DroppingBuffer(size=1).key())


class TestValidation:
    def test_empty_axis_choices_rejected(self):
        with pytest.raises(DesignSpaceError):
            DesignSpace("pc", _arch(), axes=[ChannelAxis("link", [])])

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(DesignSpaceError):
            DesignSpace("pc", _arch(), axes=[
                ChannelAxis("link", CHANNELS),
                ChannelAxis("link", CHANNELS),
            ])

    def test_unknown_connector_rejected_at_enumeration(self):
        space = DesignSpace("pc", _arch(),
                            axes=[ChannelAxis("no_such_connector", CHANNELS)])
        with pytest.raises(DesignSpaceError):
            space.variants()

    def test_duplicate_base_labels_rejected(self):
        with pytest.raises(DesignSpaceError):
            DesignSpace("pc", [("a", _arch()), ("a", _arch())])

    def test_encoding_axis_validates_choices(self):
        with pytest.raises(DesignSpaceError):
            EncodingAxis(choices=("composed", "promela"))


class TestCostHints:
    def test_bigger_channels_cost_more(self):
        space = _space()
        small, large = space.variants()[0], space.variants()[2]
        assert small.cost_hint() < large.cost_hint()

    def test_fused_encoding_is_preferred(self):
        space = DesignSpace("pc", _arch(), axes=[EncodingAxis()])
        by_label = {v.labels["encoding"]: v for v in space.variants()}
        assert by_label[FUSED].cost_hint() < by_label[COMPOSED].cost_hint()

"""The persistent content-addressed result cache (JSONL backend)."""

import json

import pytest

from repro.design import CACHE_SCHEMA, CacheLockedError, ResultCache

FP_A = "a" * 64
FP_B = "b" * 64
FP_C = "c" * 64


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP_A, {"verdict": "PASS", "states": 42})
        got = cache.get(FP_A)
        assert got["verdict"] == "PASS"
        assert got["schema"] == CACHE_SCHEMA
        assert got["fingerprint"] == FP_A
        assert cache.get(FP_B) is None

    def test_persistence_across_instances(self, tmp_path):
        ResultCache(tmp_path).put(FP_A, {"verdict": "FAIL"})
        reopened = ResultCache(tmp_path)
        assert FP_A in reopened
        assert len(reopened) == 1
        assert reopened.get(FP_A)["verdict"] == "FAIL"

    def test_records_are_appended_immediately(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP_A, {"verdict": "PASS"})
        # No flush() — a crashed run must not lose completed work.
        lines = (tmp_path / "results.jsonl").read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["fingerprint"] == FP_A

    def test_last_record_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP_A, {"verdict": "UNKNOWN"})
        cache.put(FP_A, {"verdict": "PASS"})
        assert ResultCache(tmp_path).get(FP_A)["verdict"] == "PASS"

    def test_stats_count_hits_misses_stored(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get(FP_A)
        cache.put(FP_A, {"verdict": "PASS"})
        cache.get(FP_A)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stored"] == 1


class TestResilienceToDamage:
    def test_corrupt_lines_are_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP_A, {"verdict": "PASS"})
        with open(tmp_path / "results.jsonl", "a") as fh:
            fh.write("{not json\n")
            fh.write(json.dumps({"schema": "other/1",
                                 "fingerprint": FP_B}) + "\n")
            fh.write(json.dumps({"schema": CACHE_SCHEMA}) + "\n")
        reopened = ResultCache(tmp_path)
        assert len(reopened) == 1  # only the well-formed record survives
        assert reopened.get(FP_A)["verdict"] == "PASS"
        assert reopened.get(FP_B) is None
        stats = reopened.stats()
        # Unparseable line = corrupt (damage); well-formed-but-foreign
        # lines (other schema, no fingerprint) = skipped.
        assert stats["corrupt_lines"] == 1
        assert stats["skipped_lines"] == 2

    def test_stats_and_verify_classify_lines_identically(self, tmp_path):
        # One of each line class: live, superseded, legacy, foreign
        # schema, no fingerprint, unparseable, failed checksum.
        cache = ResultCache(tmp_path)
        cache.put(FP_A, {"verdict": "UNKNOWN"})
        cache.put(FP_A, {"verdict": "PASS"})
        with open(tmp_path / "results.jsonl", "a") as fh:
            fh.write(json.dumps({"schema": CACHE_SCHEMA,
                                 "fingerprint": FP_B,
                                 "verdict": "PASS"}) + "\n")  # legacy
            fh.write(json.dumps({"schema": "other/1",
                                 "fingerprint": FP_B}) + "\n")
            fh.write(json.dumps({"schema": CACHE_SCHEMA}) + "\n")
            fh.write("{not json\n")
            fh.write(json.dumps({"schema": CACHE_SCHEMA,
                                 "fingerprint": FP_B, "crc": 1,
                                 "verdict": "FAIL"}) + "\n")  # bad crc
        reopened = ResultCache(tmp_path)
        stats = reopened.stats()
        audit = reopened.verify()
        for key in ("corrupt_lines", "skipped_lines", "legacy_lines"):
            assert stats[key] == audit[key], key
        assert audit["corrupt_lines"] == 2
        assert audit["skipped_lines"] == 2
        assert audit["legacy_lines"] == 1
        assert audit["superseded_lines"] == 1
        assert audit["records"] == len(reopened) == 2

    def test_missing_directory_is_created(self, tmp_path):
        nested = tmp_path / "deep" / "cache"
        ResultCache(nested).put(FP_A, {"verdict": "PASS"})
        assert (nested / "results.jsonl").exists()

    def test_corrupt_index_json_is_rebuilt_from_journal(self, tmp_path):
        # Regression: a truncated/garbled index.json used to be fatal;
        # the journal is the source of truth, the index only a snapshot.
        cache = ResultCache(tmp_path)
        cache.put(FP_A, {"verdict": "PASS"})
        cache.flush()
        (tmp_path / "index.json").write_text('{"schema": "repro.desi')
        reopened = ResultCache(tmp_path)
        assert reopened.get(FP_A)["verdict"] == "PASS"
        index = json.loads((tmp_path / "index.json").read_text())
        assert index["fingerprints"] == [FP_A]
        assert reopened.verify()["ok"]

    def test_stale_index_is_refreshed_on_open(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP_A, {"verdict": "PASS"})
        cache.flush()
        cache.put(FP_B, {"verdict": "FAIL"})  # journaled, not snapshotted
        reopened = ResultCache(tmp_path)
        index = json.loads((tmp_path / "index.json").read_text())
        assert index["fingerprints"] == sorted([FP_A, FP_B])
        assert reopened.verify()["index_fresh"]

    def test_checksum_detects_flipped_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP_A, {"verdict": "PASS"})
        path = tmp_path / "results.jsonl"
        path.write_text(path.read_text().replace('"PASS"', '"FAIL"'))
        reopened = ResultCache(tmp_path)
        assert reopened.get(FP_A) is None  # damaged record is not served
        audit = reopened.verify()
        assert audit["corrupt_lines"] == 1
        assert not audit["ok"]

    def test_legacy_lines_without_crc_still_load(self, tmp_path):
        record = {"schema": CACHE_SCHEMA, "fingerprint": FP_A,
                  "verdict": "PASS"}
        (tmp_path / "results.jsonl").write_text(json.dumps(record) + "\n")
        cache = ResultCache(tmp_path)
        assert cache.get(FP_A)["verdict"] == "PASS"
        assert cache.stats()["legacy_lines"] == 1


class TestVerifyAndCompact:
    def test_verify_clean_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP_A, {"verdict": "PASS"})
        cache.flush()
        audit = cache.verify()
        assert audit == {"backend": "jsonl", "records": 1, "lines": 1,
                         "superseded_lines": 0, "corrupt_lines": 0,
                         "skipped_lines": 0, "legacy_lines": 0,
                         "index_fresh": True, "ok": True}

    def test_compact_drops_superseded_and_upgrades_legacy(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP_A, {"verdict": "UNKNOWN"})
        cache.put(FP_A, {"verdict": "PASS"})
        cache.put(FP_B, {"verdict": "FAIL"})
        outcome = cache.compact()
        assert outcome == {"before_lines": 3, "after_lines": 2}
        reopened = ResultCache(tmp_path)
        assert reopened.get(FP_A)["verdict"] == "PASS"
        assert reopened.get(FP_B)["verdict"] == "FAIL"
        assert reopened.verify()["superseded_lines"] == 0


class TestIndex:
    def test_flush_writes_index(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP_B, {"verdict": "PASS"})
        cache.put(FP_A, {"verdict": "FAIL"})
        cache.flush()
        index = json.loads((tmp_path / "index.json").read_text())
        assert index["schema"] == CACHE_SCHEMA
        assert index["records"] == 2
        assert index["results_bytes"] > 0
        assert index["fingerprints"] == sorted([FP_A, FP_B])

    def test_flush_uses_unique_temp_names(self, tmp_path):
        # Regression: the fixed "index.json.tmp" path let two processes
        # interleave write/replace and publish a torn snapshot.  A
        # squatter at the old path must survive a flush untouched.
        sentinel = tmp_path / "index.json.tmp"
        sentinel.write_text("squatter")
        cache = ResultCache(tmp_path)
        cache.put(FP_A, {"verdict": "PASS"})
        cache.flush()
        assert sentinel.read_text() == "squatter"
        index = json.loads((tmp_path / "index.json").read_text())
        assert index["fingerprints"] == [FP_A]
        # and no temp litter is left behind
        stray = [p.name for p in tmp_path.iterdir()
                 if p.name.startswith("index.json.") and p != sentinel
                 and p.name != "index.json"]
        assert stray == []


class TestWriterLock:
    def test_second_concurrent_writer_fails_loudly(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put(FP_A, {"verdict": "PASS"})
        second = ResultCache(tmp_path)
        assert second.get(FP_A)["verdict"] == "PASS"  # reads never lock
        with pytest.raises(CacheLockedError):
            second.put(FP_B, {"verdict": "FAIL"})
        with pytest.raises(CacheLockedError):
            second.compact()
        first.close()

    def test_close_releases_the_lock(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put(FP_A, {"verdict": "PASS"})
        first.close()
        second = ResultCache(tmp_path)
        second.put(FP_B, {"verdict": "FAIL"})  # lock is free again
        second.close()
        assert len(ResultCache(tmp_path)) == 2

    def test_context_manager_closes(self, tmp_path):
        with ResultCache(tmp_path) as cache:
            cache.put(FP_A, {"verdict": "PASS"})
        with ResultCache(tmp_path) as cache:  # would raise if still held
            cache.put(FP_B, {"verdict": "FAIL"})

    def test_relock_resyncs_from_disk(self, tmp_path):
        # Regression for the lost-acknowledged-write window: writer A
        # appends and closes; writer B (opened *before* that append)
        # compacts.  B must first re-read the journal under the lock, or
        # A's acknowledged record vanishes through the os.replace.
        b = ResultCache(tmp_path)
        with ResultCache(tmp_path) as a:
            a.put(FP_A, {"verdict": "PASS"})
        b.compact()
        b.close()
        assert ResultCache(tmp_path).get(FP_A)["verdict"] == "PASS"


class TestFsck:
    def test_fsck_drops_damage_and_rewrites(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP_A, {"verdict": "UNKNOWN"})
        cache.put(FP_A, {"verdict": "PASS"})
        with open(tmp_path / "results.jsonl", "a") as fh:
            fh.write("{torn\n")
            fh.write(json.dumps({"schema": "other/1"}) + "\n")
        cache.close()
        fixer = ResultCache(tmp_path)
        outcome = fixer.fsck()
        fixer.close()
        assert outcome["backend"] == "jsonl"
        assert outcome["dropped_corrupt"] == 1
        assert outcome["dropped_skipped"] == 1
        assert outcome["dropped_superseded"] == 1
        assert outcome["after_lines"] == 1
        clean = ResultCache(tmp_path)
        assert clean.get(FP_A)["verdict"] == "PASS"
        audit = clean.verify()
        assert audit["ok"] and audit["corrupt_lines"] == 0

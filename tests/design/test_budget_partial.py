"""Budget exhaustion mid-sweep: partial results, never a crash.

A tight ``max_states`` must degrade every affected variant to UNKNOWN
while the exploration still returns a full, ranked, deterministic
report — identically for serial and parallel runs.
"""

from repro.core import (
    AsynBlockingSend,
    FifoQueue,
    SingleSlotBuffer,
    SynBlockingSend,
)
from repro.design import (
    ChannelAxis,
    DesignSpace,
    ResultCache,
    SendPortAxis,
    explore,
)
from repro.mc.budget import BUDGET_INTERRUPT, Budget
from repro.obs import CollectingReporter
from repro.systems.producer_consumer import simple_pair

CHANNELS = [SingleSlotBuffer(), FifoQueue(size=2)]
PORTS = [AsynBlockingSend(), SynBlockingSend()]


def _space():
    return DesignSpace(
        "pc",
        simple_pair(PORTS[0], CHANNELS[0], messages=1),
        axes=[ChannelAxis("link", CHANNELS),
              SendPortAxis("link", PORTS, component="Producer0")],
        fused=True,
    )


def _strip_volatile(record):
    out = {k: v for k, v in record.items()
           if k not in ("seconds", "cached", "resumed", "deduplicated",
                        "models_reused", "models_built")}
    if out.get("safety"):
        out["safety"] = {k: v for k, v in out["safety"].items()
                         if k != "statistics"} | {
            "states": record["safety"]["statistics"]["states_stored"]}
    return out


class TestBudgetMidSweep:
    def test_partial_results_are_returned_for_every_variant(self):
        report = explore(_space(), max_states=10)
        assert len(report.results) == 4
        assert all(r["verdict"] == "UNKNOWN" for r in report.results)
        assert all(r["budget_hit"] for r in report.results)
        assert report.any_budget_hit and not report.complete
        # Partial records still carry the work done so far.
        assert all(r["safety"]["statistics"]["states_stored"] > 0
                   for r in report.results)

    def test_states_expanded_is_monotone_in_progress_events(self):
        collector = CollectingReporter(interval=5)
        explore(_space(), max_states=50, reporter=collector)
        per_variant = {}
        for event in collector.events:
            if event.type == "progress":
                per_variant.setdefault(event.scenario, []).append(
                    event.data["states_expanded"])
        assert per_variant  # the tight interval produced progress ticks
        for name, counts in per_variant.items():
            assert counts == sorted(counts), name

    def test_serial_equals_parallel_under_tight_budget(self, tmp_path):
        serial = explore(_space(), max_states=10, jobs=1)
        parallel = explore(_space(), max_states=10, jobs=2)
        assert ([_strip_volatile(r) for r in serial.results]
                == [_strip_volatile(r) for r in parallel.results])
        assert ([r["variant"] for r in serial.ranked]
                == [r["variant"] for r in parallel.ranked])

    def test_budget_partial_runs_are_not_poisoned_by_cache(self, tmp_path):
        # UNKNOWN verdicts are cached (same budget -> same fingerprint),
        # but raising the budget changes the fingerprint and re-runs.
        cache = ResultCache(tmp_path)
        tight = explore(_space(), cache=cache, max_states=10)
        assert all(r["verdict"] == "UNKNOWN" for r in tight.results)
        roomy = explore(_space(), cache=ResultCache(tmp_path),
                        max_states=100000)
        assert all(r["verdict"] == "PASS" for r in roomy.results)


class TestInterruptMarker:
    def test_budget_stop_callable_interrupts_gracefully(self):
        budget = Budget(max_states=1000, stop=lambda: True)
        assert budget.exceeded(0) == BUDGET_INTERRUPT
        assert not budget.unbounded

    def test_interrupt_marker_never_raises_even_under_raise_on_limit(self):
        budget = Budget(raise_on_limit=True, stop=lambda: True)
        assert budget.exceeded(10**9) == BUDGET_INTERRUPT

    def test_stop_false_defers_to_numeric_limits(self):
        budget = Budget(max_states=5, stop=lambda: False)
        assert budget.exceeded(3) is None
        assert budget.exceeded(6) == "state budget"

"""The concurrent SQLite/WAL verdict store and the backend factory."""

import json
import sqlite3
import warnings

import pytest

from repro.design import (
    CACHE_SCHEMA,
    CacheBackend,
    CacheCorruptionWarning,
    ResultCache,
    SqliteResultCache,
    detect_backend,
    migrate_jsonl_to_sqlite,
    open_cache,
)

FP_A = "a" * 64
FP_B = "b" * 64


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        with SqliteResultCache(tmp_path) as cache:
            cache.put(FP_A, {"verdict": "PASS", "states": 42})
            got = cache.get(FP_A)
            assert got["verdict"] == "PASS"
            assert got["schema"] == CACHE_SCHEMA
            assert got["fingerprint"] == FP_A
            assert cache.get(FP_B) is None

    def test_persistence_across_instances(self, tmp_path):
        with SqliteResultCache(tmp_path) as cache:
            cache.put(FP_A, {"verdict": "FAIL"})
        with SqliteResultCache(tmp_path) as reopened:
            assert FP_A in reopened
            assert len(reopened) == 1
            assert reopened.get(FP_A)["verdict"] == "FAIL"

    def test_last_record_wins(self, tmp_path):
        with SqliteResultCache(tmp_path) as cache:
            cache.put(FP_A, {"verdict": "UNKNOWN"})
            cache.put(FP_A, {"verdict": "PASS"})
        with SqliteResultCache(tmp_path) as cache:
            assert cache.get(FP_A)["verdict"] == "PASS"
            assert len(cache) == 1

    def test_stats_shape(self, tmp_path):
        with SqliteResultCache(tmp_path) as cache:
            cache.get(FP_A)
            cache.put(FP_A, {"verdict": "PASS"})
            cache.get(FP_A)
            stats = cache.stats()
        assert stats["backend"] == "sqlite"
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stored"] == 1
        assert stats["records"] == 1
        assert stats["results_bytes"] > 0

    def test_reopens_transparently_after_close(self, tmp_path):
        cache = SqliteResultCache(tmp_path)
        cache.put(FP_A, {"verdict": "PASS"})
        cache.close()
        assert cache.get(FP_A)["verdict"] == "PASS"  # lazily reopened
        cache.close()

    def test_items_sorted_and_uncounted(self, tmp_path):
        with SqliteResultCache(tmp_path) as cache:
            cache.put(FP_B, {"verdict": "FAIL"})
            cache.put(FP_A, {"verdict": "PASS"})
            pairs = list(cache.items())
            assert [fp for fp, _ in pairs] == [FP_A, FP_B]
            assert cache.hits == 0 and cache.misses == 0

    def test_satisfies_the_backend_protocol(self, tmp_path):
        with SqliteResultCache(tmp_path) as sql_cache:
            assert isinstance(sql_cache, CacheBackend)
        with ResultCache(tmp_path / "j") as jsonl_cache:
            assert isinstance(jsonl_cache, CacheBackend)


class TestIntegrity:
    def _tamper(self, tmp_path, fingerprint, column_value):
        conn = sqlite3.connect(tmp_path / "cache.sqlite")
        conn.execute("UPDATE records SET record = ? WHERE fingerprint = ?",
                     (column_value, fingerprint))
        conn.commit()
        conn.close()

    def test_crc_mismatch_is_a_miss_not_a_wrong_verdict(self, tmp_path):
        with SqliteResultCache(tmp_path) as cache:
            good = cache.put(FP_A, {"verdict": "PASS"})
        flipped = dict(good)
        flipped["verdict"] = "FAIL"  # same shape, wrong content
        self._tamper(tmp_path, FP_A, json.dumps(flipped, sort_keys=True,
                                                separators=(",", ":")))
        with SqliteResultCache(tmp_path) as cache:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert cache.get(FP_A) is None
            assert any(issubclass(w.category, CacheCorruptionWarning)
                       for w in caught)
            assert cache.misses == 1
            assert cache.corrupt_records == 1
            # the damaged row was dropped; a fresh verdict can land
            cache.put(FP_A, {"verdict": "PASS"})
            assert cache.get(FP_A)["verdict"] == "PASS"

    def test_verify_counts_corrupt_rows(self, tmp_path):
        with SqliteResultCache(tmp_path) as cache:
            cache.put(FP_A, {"verdict": "PASS"})
            cache.put(FP_B, {"verdict": "FAIL"})
        self._tamper(tmp_path, FP_A, "{not json")
        with SqliteResultCache(tmp_path) as cache:
            audit = cache.verify()
            assert audit["backend"] == "sqlite"
            assert audit["records"] == 2
            assert audit["corrupt_records"] == 1
            assert not audit["ok"]

    def test_fsck_repairs_corrupt_rows(self, tmp_path):
        with SqliteResultCache(tmp_path) as cache:
            cache.put(FP_A, {"verdict": "PASS"})
            cache.put(FP_B, {"verdict": "FAIL"})
        self._tamper(tmp_path, FP_A, "{not json")
        with SqliteResultCache(tmp_path) as cache:
            outcome = cache.fsck()
            assert outcome["repaired"] == 1
            assert outcome["after_records"] == 1
            assert cache.verify()["ok"]
            assert cache.get(FP_B)["verdict"] == "FAIL"

    def test_garbage_file_is_quarantined_and_degrades_to_misses(
            self, tmp_path):
        with SqliteResultCache(tmp_path) as cache:
            cache.put(FP_A, {"verdict": "PASS"})
        with open(tmp_path / "cache.sqlite", "r+b") as fh:
            fh.write(b"GARBAGE" * 4096)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cache = SqliteResultCache(tmp_path)
        assert any(issubclass(w.category, CacheCorruptionWarning)
                   for w in caught)
        assert cache.quarantined is not None
        assert cache.get(FP_A) is None  # a miss, never a wrong verdict
        assert cache.misses == 1
        quarantined = list(tmp_path.glob("cache.sqlite.quarantined-*"))
        assert quarantined  # damaged bytes kept for post-mortems
        cache.put(FP_A, {"verdict": "PASS"})  # fresh store works
        assert cache.verify()["ok"]
        assert cache.verify()["quarantined"] == cache.quarantined
        cache.close()


class TestEviction:
    def test_lru_eviction_keeps_the_hot_records(self, tmp_path):
        fps = ["%064d" % i for i in range(60)]
        with SqliteResultCache(tmp_path) as cache:
            for fp in fps:
                cache.put(fp, {"verdict": "PASS", "pad": "x" * 2000})
        cap = cache._size_bytes()  # exactly full: the next put overflows
        with SqliteResultCache(tmp_path, max_bytes=cap) as cache:
            for hot in fps[:5]:
                assert cache.get(hot) is not None  # touch: now hot
            cache.put("f" * 64, {"verdict": "PASS", "pad": "y" * 2000})
            assert cache.evicted > 0
            assert cache._size_bytes() <= cap
            assert cache.get("f" * 64) is not None  # the new record
            for hot in fps[:5]:  # recently-served records survived
                assert cache.get(hot) is not None
            # and the casualties were the coldest, untouched records
            assert len(cache) == 61 - cache.evicted

    def test_busy_writer_is_retried(self, tmp_path):
        with SqliteResultCache(tmp_path) as cache:
            cache.put(FP_A, {"verdict": "PASS"})
            # Hold the write lock from a second raw connection, release
            # it from a timer thread while the cache's put is retrying.
            import threading
            blocker = sqlite3.connect(tmp_path / "cache.sqlite",
                                      check_same_thread=False)
            blocker.isolation_level = None
            blocker.execute("BEGIN IMMEDIATE")
            timer = threading.Timer(0.15, lambda: (
                blocker.execute("COMMIT"), blocker.close()))
            timer.start()
            try:
                cache.put(FP_B, {"verdict": "FAIL"})  # must not raise
            finally:
                timer.join()
            assert cache.get(FP_B)["verdict"] == "FAIL"


class TestBackendFactory:
    def test_fresh_directory_defaults_to_sqlite(self, tmp_path):
        assert detect_backend(tmp_path) == "sqlite"
        with open_cache(tmp_path) as cache:
            assert cache.stats()["backend"] == "sqlite"
        assert (tmp_path / "cache.sqlite").exists()

    def test_existing_jsonl_directory_stays_jsonl(self, tmp_path):
        with ResultCache(tmp_path) as seed:
            seed.put(FP_A, {"verdict": "PASS"})
        assert detect_backend(tmp_path) == "jsonl"
        with open_cache(tmp_path) as cache:
            assert cache.stats()["backend"] == "jsonl"
            assert cache.get(FP_A)["verdict"] == "PASS"

    def test_explicit_backend_wins(self, tmp_path):
        with open_cache(tmp_path, backend="jsonl") as cache:
            assert cache.stats()["backend"] == "jsonl"

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown cache backend"):
            open_cache(tmp_path, backend="dbm")

    def test_max_bytes_rejected_on_jsonl(self, tmp_path):
        with pytest.raises(ValueError, match="sqlite backend"):
            open_cache(tmp_path, backend="jsonl", max_bytes=1024)


class TestMigrate:
    def test_round_trip_preserves_every_verdict(self, tmp_path):
        fps = ["%064d" % i for i in range(10)]
        with ResultCache(tmp_path) as jsonl_cache:
            for i, fp in enumerate(fps):
                jsonl_cache.put(fp, {"verdict": "PASS", "states": i})
            jsonl_cache.put(fps[0], {"verdict": "FAIL"})  # superseded
            before = {fp: {k: v for k, v in record.items() if k != "crc"}
                      for fp, record in jsonl_cache.items()}
        summary = migrate_jsonl_to_sqlite(tmp_path)
        assert summary["migrated"] == len(fps)
        assert summary["verified"] == len(fps)
        assert detect_backend(tmp_path) == "sqlite"
        assert (tmp_path / "results.jsonl.migrated").exists()
        assert not (tmp_path / "results.jsonl").exists()
        with open_cache(tmp_path) as migrated:
            after = dict(migrated.items())
        assert after == before  # identical verdict set, field for field

    def test_damaged_lines_are_left_behind_not_migrated(self, tmp_path):
        with ResultCache(tmp_path) as jsonl_cache:
            jsonl_cache.put(FP_A, {"verdict": "PASS"})
        with open(tmp_path / "results.jsonl", "a") as fh:
            fh.write("{torn line\n")
            fh.write(json.dumps({"schema": "other/1"}) + "\n")
        summary = migrate_jsonl_to_sqlite(tmp_path)
        assert summary["migrated"] == 1
        assert summary["corrupt_lines"] == 1
        assert summary["skipped_lines"] == 1
        with open_cache(tmp_path) as migrated:
            assert migrated.get(FP_A)["verdict"] == "PASS"
            assert migrated.verify()["ok"]


class TestExploreOnSqlite:
    def test_explore_serves_warm_run_fully_from_cache(self, tmp_path):
        from repro.core import SingleSlotBuffer, SynBlockingSend
        from repro.design import ChannelAxis, DesignSpace, explore
        from repro.systems.producer_consumer import simple_pair

        space = DesignSpace(
            "pc-sql",
            simple_pair(SynBlockingSend(), SingleSlotBuffer(), messages=1),
            axes=[ChannelAxis("link", [SingleSlotBuffer()])],
        )
        with open_cache(tmp_path) as cache:
            cold = explore(space, cache=cache)
            assert cold.cache_stats["stored"] == len(cold.results)
        with open_cache(tmp_path) as cache:
            warm = explore(space, cache=cache)
        assert all(r["cached"] for r in warm.results)
        assert warm.cache_stats["hits"] == len(warm.results)
        assert [r["verdict"] for r in warm.results] == [
            r["verdict"] for r in cold.results]

"""Fingerprint stability and sensitivity.

The cache is only sound if fingerprints are (a) identical for
semantically identical jobs — across processes, interpreter runs, and
``PYTHONHASHSEED`` values — and (b) different whenever anything that
could change the verdict changes.
"""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.core import FifoQueue, SingleSlotBuffer
from repro.core.channels import CHANNEL_SPECS
from repro.core.ports import SEND_PORT_SPECS
from repro.design import fingerprint_job, fingerprint_system
from repro.mc import global_prop
from repro.systems.bridge import bridge_safety_prop
from repro.systems.producer_consumer import simple_pair

SRC = str(Path(__file__).resolve().parent.parent.parent / "src")


def _system(fused=True, channel=None):
    arch = simple_pair(SEND_PORT_SPECS[0],
                       channel or CHANNEL_SPECS[0], messages=1)
    return arch.to_system(fused=fused)


class TestStability:
    def test_same_job_same_fingerprint(self):
        a = fingerprint_job(_system(), invariants=[bridge_safety_prop()])
        b = fingerprint_job(_system(), invariants=[bridge_safety_prop()])
        assert a == b

    def test_fingerprint_is_hex_sha256(self):
        for fp in (fingerprint_system(_system()), fingerprint_job(_system())):
            assert len(fp) == 64
            int(fp, 16)  # hex or this raises

    def test_ltl_props_mapping_and_sequence_agree(self):
        p = global_prop("done", lambda v: v.global_("consumed_0") == 1,
                        "consumed_0")
        a = fingerprint_job(_system(), ltl="F done", ltl_props={"done": p})
        b = fingerprint_job(_system(), ltl="F done", ltl_props=[p])
        assert a == b


class TestSensitivity:
    def test_encoding_changes_fingerprint(self):
        assert (fingerprint_job(_system(fused=True))
                != fingerprint_job(_system(fused=False)))

    def test_channel_changes_fingerprint(self):
        assert (fingerprint_job(_system(channel=SingleSlotBuffer()))
                != fingerprint_job(_system(channel=FifoQueue(size=2))))

    def test_invariants_change_fingerprint(self):
        assert (fingerprint_job(_system())
                != fingerprint_job(_system(),
                                   invariants=[bridge_safety_prop()]))

    def test_budgets_change_fingerprint(self):
        assert (fingerprint_job(_system())
                != fingerprint_job(_system(), max_states=1000))
        assert (fingerprint_job(_system(), max_states=1000)
                != fingerprint_job(_system(), max_states=2000))

    def test_deadlock_flag_changes_fingerprint(self):
        assert (fingerprint_job(_system(), check_deadlock=True)
                != fingerprint_job(_system(), check_deadlock=False))


# What a fresh interpreter must agree on: the job fingerprint, the
# ProcessDef canonical digests backing it, and the library canonical
# form — the satellite contract behind cross-run cache hits.
_PIN_SCRIPT = textwrap.dedent("""
    import json
    from repro.core import ModelLibrary
    from repro.core.channels import CHANNEL_SPECS
    from repro.core.ports import SEND_PORT_SPECS
    from repro.design import fingerprint_job
    from repro.systems.producer_consumer import simple_pair

    library = ModelLibrary()
    arch = simple_pair(SEND_PORT_SPECS[0], CHANNEL_SPECS[0], messages=1)
    system = arch.to_system(library=library, fused=True)
    print(json.dumps({
        "job": fingerprint_job(system, max_states=5000),
        "defs": [d.canonical_digest() for d in system.definitions()],
        "library": library.canonical(),
    }))
""")


def _pin_in_subprocess(hash_seed):
    env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED=hash_seed)
    out = subprocess.run([sys.executable, "-c", _PIN_SCRIPT], env=env,
                         capture_output=True, text=True, check=True)
    import json
    return json.loads(out.stdout)


class TestCrossInterpreterPin:
    def test_fingerprints_survive_interpreter_restarts(self):
        """Two interpreters with adversarial hash seeds must agree."""
        seed0 = _pin_in_subprocess("0")
        seed1 = _pin_in_subprocess("1")
        assert seed0 == seed1

    def test_subprocess_agrees_with_this_process(self):
        from repro.core import ModelLibrary
        library = ModelLibrary()
        arch = simple_pair(SEND_PORT_SPECS[0], CHANNEL_SPECS[0], messages=1)
        system = arch.to_system(library=library, fused=True)
        here = {
            "job": fingerprint_job(system, max_states=5000),
            "defs": [d.canonical_digest() for d in system.definitions()],
            "library": library.canonical(),
        }
        assert here == _pin_in_subprocess("0")

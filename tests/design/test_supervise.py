"""The supervised worker pool: classification, retries, timeouts."""

import os

from repro.design import (
    CAUSE_EXCEPTION,
    CAUSE_TIMEOUT,
    CAUSE_WORKER_DIED,
    RetryPolicy,
    SupervisedPool,
)


# Worker tasks must be importable from the child process.

def _double(payload):
    return payload * 2


def _die_if_odd(payload):
    if payload % 2:
        os._exit(77)
    return payload


def _raise_if_negative(payload):
    if payload < 0:
        raise ValueError(f"bad payload {payload}")
    return payload


def _sleep_for(payload):
    import time
    time.sleep(payload)
    return payload


class TestHappyPath:
    def test_results_in_submission_order(self):
        pool = SupervisedPool(3)
        outcomes = pool.run(_double, [3, 1, 2])
        assert [o.result for o in outcomes] == [6, 2, 4]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_keys_label_outcomes(self):
        pool = SupervisedPool(2)
        outcomes = pool.run(_double, [1, 2], keys=["x", "y"])
        assert [o.key for o in outcomes] == ["x", "y"]


class TestCrashClassification:
    def test_dead_worker_fails_only_its_job(self):
        pool = SupervisedPool(2, retry=RetryPolicy(max_retries=0))
        outcomes = pool.run(_die_if_odd, [0, 1, 2, 3, 4])
        assert [o.ok for o in outcomes] == [True, False, True, False, True]
        for bad in (outcomes[1], outcomes[3]):
            assert bad.failure.cause == CAUSE_WORKER_DIED
            assert "77" in bad.failure.detail

    def test_worker_exception_is_classified_with_traceback(self):
        pool = SupervisedPool(2, retry=RetryPolicy(max_retries=0))
        outcomes = pool.run(_raise_if_negative, [1, -1])
        assert outcomes[0].ok
        failure = outcomes[1].failure
        assert failure.cause == CAUSE_EXCEPTION
        assert "bad payload -1" in failure.detail

    def test_timeout_terminates_and_classifies(self):
        pool = SupervisedPool(2, timeout=0.3,
                              retry=RetryPolicy(max_retries=0))
        outcomes = pool.run(_sleep_for, [0.0, 30.0])
        assert outcomes[0].ok
        assert outcomes[1].failure.cause == CAUSE_TIMEOUT

    def test_timeouts_are_not_retried_by_default(self):
        pool = SupervisedPool(1, timeout=0.3)
        outcomes = pool.run(_sleep_for, [30.0])
        assert outcomes[0].failure.attempts == 1


class TestRetries:
    def test_deterministic_death_exhausts_retries(self):
        retries = []
        pool = SupervisedPool(
            1, retry=RetryPolicy(max_retries=2, backoff_base=0.01))
        outcomes = pool.run(
            _die_if_odd, [1],
            on_retry=lambda key, cause, attempt, delay:
                retries.append((key, cause, attempt)))
        assert outcomes[0].failure.attempts == 3
        assert retries == [(0, CAUSE_WORKER_DIED, 1),
                           (0, CAUSE_WORKER_DIED, 2)]

    def test_backoff_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy()
        assert policy.backoff(1, seed="k") == policy.backoff(1, seed="k")
        assert policy.backoff(1, seed="k") != policy.backoff(1, seed="j")

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_max=0.3, jitter=0.0)
        assert policy.backoff(1) == 0.1
        assert policy.backoff(2) == 0.2
        assert policy.backoff(5) == 0.3


class TestStopping:
    def test_stop_after_truncates_at_trigger(self):
        pool = SupervisedPool(1)
        outcomes = pool.run(
            _double, [1, 2, 3, 4],
            stop_after=lambda o: o.result == 4)
        assert [o.result for o in outcomes] == [2, 4]

    def test_stop_event_drains_gracefully(self):
        import threading
        flag = threading.Event()
        flag.set()
        pool = SupervisedPool(2)
        outcomes = pool.run(_double, [1, 2, 3])
        assert len(outcomes) == 3  # sanity: unset flag runs everything
        assert pool.run(_double, [1, 2, 3], stop=flag) == []

"""The checksummed run journal behind checkpoint/resume."""

import json

import pytest

from repro.design import JOURNAL_SCHEMA, RunJournal, list_runs
from repro.design.journal import (
    append_entry,
    entry_crc,
    read_entries,
    verify_entry,
)

FP_A = "a" * 64
FP_B = "b" * 64


class TestLineFormat:
    def test_crc_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "w") as fh:
            append_entry(fh, {"schema": JOURNAL_SCHEMA, "event": "done"})
        (entry, _raw), = read_entries(str(path))
        assert entry is not None
        assert verify_entry(entry)
        assert entry["crc"] == entry_crc(entry)

    def test_crc_ignores_key_order(self):
        assert (entry_crc({"a": 1, "b": 2})
                == entry_crc({"b": 2, "a": 1}))

    def test_flipped_byte_fails_verification(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "w") as fh:
            append_entry(fh, {"schema": JOURNAL_SCHEMA, "event": "done",
                              "fingerprint": FP_A})
        damaged = path.read_text().replace(FP_A, FP_B)
        path.write_text(damaged)
        (entry, raw), = read_entries(str(path))
        assert entry is None  # checksum mismatch
        assert FP_B in raw

    def test_torn_tail_line_reads_as_corrupt(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "w") as fh:
            append_entry(fh, {"schema": JOURNAL_SCHEMA, "event": "a"})
            fh.write('{"schema": "repro.design-run/1", "event": "tru')
        entries = list(read_entries(str(path)))
        assert entries[0][0] is not None
        assert entries[1][0] is None


class TestRunJournal:
    def test_mints_run_id_and_creates_journal(self, tmp_path):
        with RunJournal(tmp_path) as journal:
            journal.record("run_started", total=4)
        assert list_runs(tmp_path) == [journal.run_id]
        lines = open(journal.path).read().splitlines()
        assert json.loads(lines[0])["event"] == "run_started"

    def test_load_folds_done_and_failed(self, tmp_path):
        with RunJournal(tmp_path, run_id="r1") as journal:
            journal.record("run_started", total=2)
            journal.record("scheduled", fingerprint=FP_A)
            journal.record("scheduled", fingerprint=FP_B)
            journal.record("done", fingerprint=FP_A,
                           record={"verdict": "PASS"})
            journal.record("failed", fingerprint=FP_B,
                           cause="worker-died", attempts=2)
        state = RunJournal.load(tmp_path, "r1")
        assert state.completed[FP_A] == {"verdict": "PASS"}
        assert state.failed[FP_B]["cause"] == "worker-died"
        assert state.pending == []
        assert not state.finished and not state.interrupted

    def test_done_beats_failed_across_attempts(self, tmp_path):
        with RunJournal(tmp_path, run_id="r1") as journal:
            journal.record("run_started", total=1)
            journal.record("scheduled", fingerprint=FP_A)
            journal.record("failed", fingerprint=FP_A, cause="timeout",
                           attempts=1)
            journal.record("interrupted")
        # A resumed attempt appends to the same journal and succeeds.
        with RunJournal(tmp_path, run_id="r1") as journal:
            journal.record("run_started", total=1)
            journal.record("done", fingerprint=FP_A,
                           record={"verdict": "PASS"})
            journal.record("run_finished")
        state = RunJournal.load(tmp_path, "r1")
        assert state.attempts == 2
        assert FP_A in state.completed
        assert FP_A not in state.failed
        assert state.finished and not state.interrupted

    def test_pending_is_scheduled_minus_done_and_failed(self, tmp_path):
        with RunJournal(tmp_path, run_id="r1") as journal:
            journal.record("run_started", total=2)
            journal.record("scheduled", fingerprint=FP_A)
            journal.record("scheduled", fingerprint=FP_B)
            journal.record("done", fingerprint=FP_A,
                           record={"verdict": "PASS"})
            journal.record("interrupted")
        state = RunJournal.load(tmp_path, "r1")
        assert state.pending == [FP_B]
        assert state.interrupted

    def test_corrupt_lines_are_counted_not_fatal(self, tmp_path):
        with RunJournal(tmp_path, run_id="r1") as journal:
            journal.record("run_started", total=1)
            journal.record("done", fingerprint=FP_A,
                           record={"verdict": "PASS"})
        with open(journal.path, "a") as fh:
            fh.write("garbage\n")
        state = RunJournal.load(tmp_path, "r1")
        assert state.corrupt_lines == 1
        assert FP_A in state.completed

    def test_load_unknown_run_lists_known_runs(self, tmp_path):
        with RunJournal(tmp_path, run_id="exists") as journal:
            journal.record("run_started")
        with pytest.raises(FileNotFoundError, match="exists"):
            RunJournal.load(tmp_path, "missing")

    def test_list_runs_empty_directory(self, tmp_path):
        assert list_runs(tmp_path / "nope") == []

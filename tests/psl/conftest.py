"""Shared helpers for PSL interpreter tests."""

import pytest

from repro.psl import Interpreter, System


def make_system(*procs, globals_=None, channels=()):
    """Assemble a system from (ProcessDef, name, chans, args) tuples."""
    s = System("test")
    for name, init in (globals_ or {}).items():
        s.add_global(name, init)
    for ch in channels:
        s.add_channel(ch)
    for entry in procs:
        definition, name = entry[0], entry[1]
        chans = entry[2] if len(entry) > 2 else None
        args = entry[3] if len(entry) > 3 else None
        s.spawn(definition, name, chans=chans, args=args)
    return s


def explore_all(interp, max_states=100_000):
    """Exhaustive reachable-state exploration; returns (states, deadlocks, violations)."""
    init = interp.initial_state()
    seen = {init}
    frontier = [init]
    deadlocks = []
    violations = []
    while frontier:
        state = frontier.pop()
        trans = interp.transitions(state)
        if not trans and not interp.is_valid_end_state(state):
            deadlocks.append(state)
        for t in trans:
            if t.violation:
                violations.append(t.violation)
            if t.target not in seen:
                seen.add(t.target)
                if len(seen) > max_states:
                    raise RuntimeError("state explosion in test")
                frontier.append(t.target)
    return seen, deadlocks, violations


@pytest.fixture
def build():
    def _build(*procs, globals_=None, channels=()):
        system = make_system(*procs, globals_=globals_, channels=channels)
        return Interpreter(system)
    return _build

"""Tests for repro.psl.compiler: statement trees to control-flow automata."""

import pytest

from repro.psl.compiler import (
    OpAssign,
    OpElse,
    OpGuard,
    OpRecv,
    OpSend,
    OpSkip,
    compile_body,
)
from repro.psl.errors import CompileError
from repro.psl.expr import C, V
from repro.psl.stmt import (
    Assign,
    Branch,
    Break,
    Do,
    Else,
    EndLabel,
    Guard,
    If,
    Recv,
    Send,
    Seq,
    Skip,
)


def ops_of(auto):
    return [e.op for e in auto.edges]


class TestSequencing:
    def test_single_statement(self):
        auto = compile_body(Assign("x", 1))
        assert len(auto.edges) == 1
        assert auto.edges[0].src == auto.initial

    def test_chain_length(self):
        auto = compile_body(Seq([Assign("x", 1), Assign("x", 2), Assign("x", 3)]))
        assert len(auto.edges) == 3
        # the chain is linear: each edge's dst is the next edge's src
        e1, e2, e3 = auto.edges
        assert e1.dst == e2.src
        assert e2.dst == e3.src

    def test_final_location_is_end_state(self):
        auto = compile_body(Assign("x", 1))
        assert auto.edges[0].dst in auto.end_locations

    def test_empty_seq_compiles_to_skip(self):
        auto = compile_body(Seq([]))
        assert len(auto.edges) == 1
        assert isinstance(auto.edges[0].op, OpSkip)


class TestSelection:
    def test_if_branches_share_entry(self):
        auto = compile_body(If(
            Branch(Guard(V("x") == 1), Assign("y", 1)),
            Branch(Guard(V("x") == 2), Assign("y", 2)),
        ))
        entry_edges = auto.out_edges(auto.initial)
        assert len(entry_edges) == 2
        assert all(isinstance(e.op, OpGuard) for e in entry_edges)

    def test_if_branches_converge(self):
        auto = compile_body(Seq([
            If(Branch(Guard(V("x") == 1)), Branch(Guard(V("x") == 2))),
            Assign("z", 1),
        ]))
        targets = {e.dst for e in auto.out_edges(auto.initial)}
        assert len(targets) == 1  # both branches land on the same location

    def test_else_edge_compiled(self):
        auto = compile_body(If(Branch(Guard(V("x") == 1)), Branch(Else())))
        kinds = {type(e.op) for e in auto.out_edges(auto.initial)}
        assert OpElse in kinds


class TestLoops:
    def test_do_loops_back_to_entry(self):
        auto = compile_body(Do(Branch(Guard(V("x") == 0), Assign("x", 1))))
        entry = auto.initial
        # follow the branch: guard then assign; assign must come back to entry
        guard_edge = auto.out_edges(entry)[0]
        assign_edge = auto.out_edges(guard_edge.dst)[0]
        assert assign_edge.dst == entry

    def test_break_exits_loop(self):
        auto = compile_body(Seq([
            Do(Branch(Guard(V("x") == 0), Break())),
            Assign("done", 1),
        ]))
        # after break-simplification, the guard edge should jump straight
        # to the location whose out-edge is the final assignment
        guard_edge = auto.out_edges(auto.initial)[0]
        after = auto.out_edges(guard_edge.dst)
        assert len(after) == 1
        assert isinstance(after[0].op, OpAssign)

    def test_break_outside_loop_rejected(self):
        with pytest.raises(CompileError, match="outside"):
            compile_body(Break())

    def test_nested_break_targets_inner_loop(self):
        body = Do(Branch(
            Guard(V("x") == 0),
            Do(Branch(Guard(V("y") == 0), Break())),
            Assign("after_inner", 1),
        ))
        auto = compile_body(body)
        # compiles without error and reaches the after-inner assignment
        assert any(
            isinstance(e.op, OpAssign) and e.op.name == "after_inner"
            for e in auto.edges
        )


class TestBreakSimplification:
    def test_break_steps_are_contracted(self):
        """`break` must be a control transfer, not an execution step."""
        auto = compile_body(Seq([
            Do(Branch(Guard(V("x") == 0), Break())),
            Assign("z", 1),
        ]))
        assert not any(
            isinstance(e.op, OpSkip) and e.op.desc == "break" for e in auto.edges
        )

    def test_explicit_skip_is_kept(self):
        auto = compile_body(Seq([Skip(), Assign("x", 1)]))
        assert any(isinstance(e.op, OpSkip) for e in auto.edges)


class TestEndLabels:
    def test_endlabel_marks_loop_head(self):
        auto = compile_body(Seq([
            EndLabel(),
            Do(Branch(Guard(V("x") == 0), Assign("x", 1))),
        ]))
        assert auto.initial in auto.end_locations

    def test_endlabel_mid_sequence(self):
        auto = compile_body(Seq([
            Assign("x", 1),
            EndLabel(),
            Assign("x", 2),
        ]))
        mid = auto.out_edges(auto.initial)[0].dst
        assert mid in auto.end_locations

    def test_trailing_endlabel_marks_exit(self):
        auto = compile_body(Seq([Assign("x", 1), EndLabel()]))
        assert auto.edges[0].dst in auto.end_locations

    def test_bare_endlabel_rejected_outside_seq(self):
        with pytest.raises(CompileError):
            compile_body(EndLabel())


class TestMetadata:
    def test_channel_params_used(self):
        auto = compile_body(Seq([
            Send("a", [C(1)]),
            Recv("b", ["x"]),
        ]))
        assert auto.channel_params_used() == frozenset({"a", "b"})

    def test_bound_names(self):
        auto = compile_body(Seq([
            Assign("x", V("y") + 1),
            Recv("c", ["z"]),
        ]))
        assert auto.bound_names() == frozenset({"x", "y", "z"})

    def test_reads_writes_on_ops(self):
        send = OpSend("c", (V("a") + V("b"),), "desc")
        assert send.reads() == frozenset({"a", "b"})
        recv = OpRecv("c", tuple(), False, False, "desc")
        assert recv.writes() == frozenset()

    def test_edges_from_table_complete(self):
        auto = compile_body(Seq([Assign("x", 1), Assign("y", 2)]))
        assert len(auto.edges_from) == auto.n_locations
        assert sum(len(es) for es in auto.edges_from) == len(auto.edges)

"""Differential suite: compiled execution ≡ tree-walk on every system.

Every architecture shipped in ``repro.systems`` runs through both
backends, fused and composed: identical transition labels, identical
successor sets, and identical ``check_safety`` verdicts (down to
``states_expanded``).  This is the safety net behind ``--no-jit`` — the
flag may change speed, never a verdict.

Exploration is capped per case so the whole suite stays fast; both
backends get the same cap, so any divergence still trips the asserts.
"""

import pytest

from repro.core import SingleSlotBuffer, SynBlockingSend
from repro.mc import StateGraph, check_safety
from repro.psl.interp import Interpreter
from repro.psl.jit import CompiledInterpreter, make_interpreter
from repro.systems.abp import build_abp
from repro.systems.bridge import (
    bridge_safety_prop,
    build_exactly_n_bridge,
    fix_exactly_n_bridge,
)
from repro.systems.dining import build_dining
from repro.systems.gas_station import build_gas_station
from repro.systems.producer_consumer import simple_pair
from repro.systems.pubsub import build_pubsub
from repro.systems.rpc import build_rpc

ARCHES = {
    "bridge": lambda: fix_exactly_n_bridge(build_exactly_n_bridge()),
    "bridge_buggy": lambda: build_exactly_n_bridge(),
    "abp": lambda: build_abp(messages=1, max_sends=2),
    "gas_station": lambda: build_gas_station(customers=2,
                                             selective_delivery=True),
    "producer_consumer": lambda: simple_pair(
        SynBlockingSend(), SingleSlotBuffer(), messages=2),
    "dining": lambda: build_dining(philosophers=2),
    "pubsub": lambda: build_pubsub(),
    "rpc": lambda: build_rpc(),
}

CASES = [
    pytest.param(name, fused, id=f"{name}-{'fused' if fused else 'composed'}")
    for name in ARCHES for fused in (True, False)
]

#: State budget per case — big enough to cover whole small systems and
#: a meaningful prefix of the large ones, small enough to keep the
#: 32-case matrix under a few seconds per backend.
CAP = 2000


def _label_key(label):
    return (label.pid, label.process, label.kind, label.desc, label.chan,
            label.message, label.partner_pid, label.partner)


def _walk(interp, limit=CAP):
    """Deterministic bounded BFS: (edge list, number of distinct states).

    States are numbered in encounter order, so two interpreters with
    identical per-state transition lists produce identical edge lists —
    any reordering, relabeling, or divergent successor shows up as a
    plain list inequality.
    """
    init = interp.initial_state()
    ids = {init: 0}
    order = [init]
    edges = []
    frontier = 0
    while frontier < len(order) and frontier < limit:
        state = order[frontier]
        for t in interp.transitions(state):
            tid = ids.get(t.target)
            if tid is None:
                tid = len(order)
                ids[t.target] = tid
                order.append(t.target)
            edges.append((frontier, _label_key(t.label), tid, t.violation))
        frontier += 1
    return edges, len(order)


class TestTransitionEquivalence:
    @pytest.mark.parametrize("name,fused", CASES)
    def test_same_labels_and_successors(self, name, fused):
        system = ARCHES[name]().to_system(fused=fused)
        compiled = make_interpreter(system, jit=True)
        treewalk = make_interpreter(system, jit=False)
        assert isinstance(compiled, CompiledInterpreter)
        assert type(treewalk) is Interpreter
        assert compiled.initial_state() == treewalk.initial_state()
        assert _walk(compiled) == _walk(treewalk)


class TestVerdictEquivalence:
    @pytest.mark.parametrize("name,fused", CASES)
    def test_check_safety_agrees(self, name, fused):
        arch = ARCHES[name]()
        invariants = [bridge_safety_prop()] if name.startswith("bridge") \
            else []
        results = []
        for jit in (True, False):
            graph = StateGraph(arch.to_system(fused=fused), jit=jit)
            results.append(check_safety(graph, invariants=invariants,
                                        max_states=CAP))
        jitted, walked = results
        assert jitted.ok == walked.ok
        assert jitted.incomplete == walked.incomplete
        assert jitted.kind == walked.kind
        assert jitted.message == walked.message
        assert jitted.stats.states_stored == walked.stats.states_stored
        assert jitted.stats.states_expanded == walked.stats.states_expanded
        assert jitted.stats.transitions == walked.stats.transitions
        if jitted.trace is not None or walked.trace is not None:
            mine = [s.label.pretty() for s in jitted.trace.steps]
            theirs = [s.label.pretty() for s in walked.trace.steps]
            assert mine == theirs

    def test_buggy_bridge_fails_identically_in_full(self):
        # One uncapped failing run: the counterexample itself must match.
        arch = build_exactly_n_bridge()
        runs = [
            check_safety(StateGraph(arch.to_system(fused=True), jit=jit),
                         invariants=[bridge_safety_prop()],
                         check_deadlock=False)
            for jit in (True, False)
        ]
        assert not runs[0].ok and not runs[1].ok
        assert runs[0].kind == runs[1].kind
        assert runs[0].message == runs[1].message
        assert ([s.label.pretty() for s in runs[0].trace.steps]
                == [s.label.pretty() for s in runs[1].trace.steps])


class TestBackendSelection:
    def test_env_escape_hatch_forces_tree_walk(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        system = ARCHES["rpc"]().to_system(fused=True)
        assert type(make_interpreter(system)) is Interpreter
        monkeypatch.delenv("REPRO_NO_JIT")
        assert isinstance(make_interpreter(system), CompiledInterpreter)

    def test_tree_walk_graph_reports_no_compile_stats(self):
        system = ARCHES["rpc"]().to_system(fused=True)
        assert StateGraph(system, jit=False).compile_stats is None
        assert StateGraph(system, jit=True).compile_stats is not None

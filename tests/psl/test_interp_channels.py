"""Interpreter tests: buffered and rendezvous channel semantics."""

import pytest

from repro.psl import (
    AnyField,
    Assign,
    Bind,
    Branch,
    C,
    ChannelError,
    Else,
    If,
    Interpreter,
    MatchEq,
    ProcessDef,
    Recv,
    Send,
    Seq,
    V,
    buffered,
    rendezvous,
)

from .conftest import make_system


def run_to_quiescence(interp, pick=0, max_steps=500):
    """Follow transitions (taking index `pick % len`) until none remain."""
    state = interp.initial_state()
    for _ in range(max_steps):
        trans = interp.transitions(state)
        if not trans:
            return state
        state = trans[pick % len(trans)].target
    raise RuntimeError("did not quiesce")


class TestBufferedChannels:
    def test_send_appends(self, build):
        c = buffered("c", 2, "v")
        d = ProcessDef("p", Send("out", [7]), chan_params=("out",))
        interp = build((d, "i", {"out": c}), channels=[c])
        [t] = interp.transitions(interp.initial_state())
        assert t.target.chans[0] == ((7,),)
        assert t.label.kind == "send"

    def test_send_blocks_when_full(self, build):
        c = buffered("c", 1, "v")
        d = ProcessDef("p", Seq([Send("out", [1]), Send("out", [2])]),
                       chan_params=("out",))
        interp = build((d, "i", {"out": c}), channels=[c])
        s1 = interp.transitions(interp.initial_state())[0].target
        assert interp.transitions(s1) == []  # second send blocked

    def test_fifo_order(self, build):
        c = buffered("c", 2, "v")
        sender = ProcessDef("s", Seq([Send("out", [1]), Send("out", [2])]),
                            chan_params=("out",))
        receiver = ProcessDef("r", Seq([
            Recv("inp", [Bind("a")]), Recv("inp", [Bind("b")]),
        ]), chan_params=("inp",), local_vars={"a": 0, "b": 0})
        interp = build((sender, "s", {"out": c}), (receiver, "r", {"inp": c}),
                       channels=[c])
        final = run_to_quiescence(interp)
        assert final.frames[1] == (1, 2)

    def test_recv_blocks_on_empty(self, build):
        c = buffered("c", 1, "v")
        d = ProcessDef("p", Recv("inp", [Bind("x")]), chan_params=("inp",),
                       local_vars={"x": 0})
        interp = build((d, "i", {"inp": c}), channels=[c])
        assert interp.transitions(interp.initial_state()) == []

    def test_head_match_required_without_matching_flag(self, build):
        c = buffered("c", 2, "v")
        sender = ProcessDef("s", Seq([Send("out", [1]), Send("out", [2])]),
                            chan_params=("out",))
        # receiver wants a 2 but the head is a 1: plain receive blocks
        receiver = ProcessDef("r", Recv("inp", [MatchEq(2)]),
                              chan_params=("inp",))
        interp = build((sender, "s", {"out": c}), (receiver, "r", {"inp": c}),
                       channels=[c])
        state = interp.initial_state()
        # run the two sends
        for _ in range(2):
            state = [t for t in interp.transitions(state)
                     if t.label.pid == 0][0].target
        assert interp.transitions(state) == []  # receiver blocked on head

    def test_matching_receive_takes_first_match(self, build):
        c = buffered("c", 3, "v")
        sender = ProcessDef("s", Seq([
            Send("out", [1]), Send("out", [2]), Send("out", [3]),
        ]), chan_params=("out",))
        receiver = ProcessDef("r", Recv("inp", [MatchEq(2)], matching=True),
                              chan_params=("inp",))
        interp = build((sender, "s", {"out": c}), (receiver, "r", {"inp": c}),
                       channels=[c])
        state = interp.initial_state()
        for _ in range(3):
            state = [t for t in interp.transitions(state)
                     if t.label.pid == 0][0].target
        [t] = interp.transitions(state)
        # the 2 was removed; 1 and 3 remain in order
        assert t.target.chans[0] == ((1,), (3,))

    def test_peek_does_not_consume(self, build):
        c = buffered("c", 1, "v")
        sender = ProcessDef("s", Send("out", [5]), chan_params=("out",))
        receiver = ProcessDef("r", Recv("inp", [Bind("x")], peek=True),
                              chan_params=("inp",), local_vars={"x": 0})
        interp = build((sender, "s", {"out": c}), (receiver, "r", {"inp": c}),
                       channels=[c])
        state = interp.transitions(interp.initial_state())[0].target
        [t] = interp.transitions(state)
        assert t.target.chans[0] == ((5,),)  # still there
        assert t.target.frames[1] == (5,)  # but bound

    def test_multifield_messages(self, build):
        c = buffered("c", 1, "sig", "pid")
        sender = ProcessDef("s", Send("out", [C("IN_OK"), 3]),
                            chan_params=("out",))
        receiver = ProcessDef("r", Recv("inp", [Bind("s"), Bind("p")]),
                              chan_params=("inp",), local_vars={"s": 0, "p": 0})
        interp = build((sender, "s", {"out": c}), (receiver, "r", {"inp": c}),
                       channels=[c])
        final = run_to_quiescence(interp)
        assert final.frames[1] == ("IN_OK", 3)

    def test_arity_mismatch_rejected(self):
        c = buffered("c", 1, "a", "b")
        d = ProcessDef("p", Send("out", [1]), chan_params=("out",))
        system = make_system((d, "i", {"out": c}), channels=[c])
        with pytest.raises(ChannelError, match="arity"):
            Interpreter(system)


class TestRendezvous:
    def test_handshake_is_one_transition(self, build):
        c = rendezvous("c", "v")
        sender = ProcessDef("s", Send("out", [9]), chan_params=("out",))
        receiver = ProcessDef("r", Recv("inp", [Bind("x")]),
                              chan_params=("inp",), local_vars={"x": 0})
        interp = build((sender, "s", {"out": c}), (receiver, "r", {"inp": c}),
                       channels=[c])
        trans = interp.transitions(interp.initial_state())
        assert len(trans) == 1
        t = trans[0]
        assert t.label.kind == "handshake"
        assert t.label.partner == "r"
        assert t.target.frames[1] == (9,)
        # both processes advanced
        assert interp.is_valid_end_state(t.target)

    def test_sender_alone_blocks(self, build):
        c = rendezvous("c", "v")
        sender = ProcessDef("s", Send("out", [9]), chan_params=("out",))
        interp = build((sender, "s", {"out": c}), channels=[c])
        assert interp.transitions(interp.initial_state()) == []

    def test_receiver_alone_blocks(self, build):
        c = rendezvous("c", "v")
        receiver = ProcessDef("r", Recv("inp", [Bind("x")]),
                              chan_params=("inp",), local_vars={"x": 0})
        interp = build((receiver, "r", {"inp": c}), channels=[c])
        assert interp.transitions(interp.initial_state()) == []

    def test_pattern_filters_partners(self, build):
        c = rendezvous("c", "v")
        sender = ProcessDef("s", Send("out", [5]), chan_params=("out",))
        wrong = ProcessDef("w", Recv("inp", [MatchEq(6)]), chan_params=("inp",))
        right = ProcessDef("t", Recv("inp", [MatchEq(5)]), chan_params=("inp",))
        interp = build(
            (sender, "s", {"out": c}), (wrong, "w", {"inp": c}),
            (right, "t", {"inp": c}), channels=[c],
        )
        trans = interp.transitions(interp.initial_state())
        assert len(trans) == 1
        assert trans[0].label.partner == "t"

    def test_multiple_ready_receivers_branch(self, build):
        c = rendezvous("c", "v")
        sender = ProcessDef("s", Send("out", [5]), chan_params=("out",))
        rcv = ProcessDef("r", Recv("inp", [AnyField()]), chan_params=("inp",))
        interp = build(
            (sender, "s", {"out": c}), (rcv, "r1", {"inp": c}),
            (rcv, "r2", {"inp": c}), channels=[c],
        )
        trans = interp.transitions(interp.initial_state())
        assert {t.label.partner for t in trans} == {"r1", "r2"}

    def test_eval_pid_style_matching(self, build):
        """The paper's channelChan.signal?IN_OK,eval(_pid) idiom."""
        c = rendezvous("c", "sig", "pid")
        sender = ProcessDef("s", Send("out", [C("IN_OK"), C(1)]),
                            chan_params=("out",))
        rcv = ProcessDef("r", Recv("inp", [MatchEq("IN_OK"), MatchEq(V("_pid"))]),
                         chan_params=("inp",))
        # pid 1 matches, pid 2 does not
        interp = build(
            (sender, "s", {"out": c}), (rcv, "match", {"inp": c}),
            (rcv, "nomatch", {"inp": c}), channels=[c],
        )
        trans = interp.transitions(interp.initial_state())
        assert [t.label.partner for t in trans] == ["match"]

    def test_matching_on_rendezvous_rejected(self):
        c = rendezvous("c", "v")
        d = ProcessDef("p", Recv("inp", [AnyField()], matching=True),
                       chan_params=("inp",))
        system = make_system((d, "i", {"inp": c}), channels=[c])
        with pytest.raises(ChannelError, match="matching/peek"):
            Interpreter(system)

    def test_no_self_handshake(self, build):
        c = rendezvous("c", "v")
        d = ProcessDef("p", If(
            Branch(Send("ch", [1])),
            Branch(Recv("ch", [AnyField()])),
        ), chan_params=("ch",))
        interp = build((d, "i", {"ch": c}), channels=[c])
        assert interp.transitions(interp.initial_state()) == []


class TestElseWithChannels:
    def test_else_suppressed_by_ready_rendezvous_send(self, build):
        c = rendezvous("c", "v")
        sender = ProcessDef("s", Send("out", [1]), chan_params=("out",))
        chooser = ProcessDef("r", If(
            Branch(Recv("inp", [AnyField()]), Assign("got", 1)),
            Branch(Else(), Assign("got", 99)),
        ), chan_params=("inp",), local_vars={"got": 0})
        interp = build((sender, "s", {"out": c}), (chooser, "r", {"inp": c}),
                       channels=[c])
        trans = interp.transitions(interp.initial_state())
        # only the handshake; the else edge must be suppressed
        assert len(trans) == 1
        assert trans[0].label.kind == "handshake"

    def test_else_taken_when_no_sender(self, build):
        c = rendezvous("c", "v")
        chooser = ProcessDef("r", If(
            Branch(Recv("inp", [AnyField()]), Assign("got", 1)),
            Branch(Else(), Assign("got", 99)),
        ), chan_params=("inp",), local_vars={"got": 0})
        interp = build((chooser, "r", {"inp": c}), channels=[c])
        trans = interp.transitions(interp.initial_state())
        assert len(trans) == 1
        assert trans[0].label.kind == "else"

    def test_else_with_buffered_empty(self, build):
        c = buffered("c", 1, "v")
        chooser = ProcessDef("r", If(
            Branch(Recv("inp", [AnyField()]), Assign("got", 1)),
            Branch(Else(), Assign("got", 99)),
        ), chan_params=("inp",), local_vars={"got": 0})
        interp = build((chooser, "r", {"inp": c}), channels=[c])
        [t] = interp.transitions(interp.initial_state())
        assert t.label.kind == "else"

    def test_else_with_full_buffered_send(self, build):
        c = buffered("c", 1, "v")
        d = ProcessDef("p", Seq([
            Send("out", [1]),
            If(Branch(Send("out", [2])), Branch(Else(), Assign("x", 1))),
        ]), chan_params=("out",), local_vars={"x": 0})
        interp = build((d, "i", {"out": c}), channels=[c])
        s1 = interp.transitions(interp.initial_state())[0].target
        [t] = interp.transitions(s1)
        assert t.label.kind == "else"


class TestWhenGuard:
    def test_when_false_blocks_buffered_receive(self, build):
        c = buffered("c", 1, "v")
        sender = ProcessDef("s", Send("out", [1]), chan_params=("out",))
        receiver = ProcessDef("r", Recv("inp", [AnyField()], when=(V("ok") == 1)),
                              chan_params=("inp",), local_vars={"ok": 0})
        interp = build((sender, "s", {"out": c}), (receiver, "r", {"inp": c}),
                       channels=[c])
        s1 = interp.transitions(interp.initial_state())[0].target
        assert interp.transitions(s1) == []  # guard false

    def test_when_true_allows_receive(self, build):
        c = buffered("c", 1, "v")
        sender = ProcessDef("s", Send("out", [1]), chan_params=("out",))
        receiver = ProcessDef("r", Recv("inp", [AnyField()], when=(V("ok") == 0)),
                              chan_params=("inp",), local_vars={"ok": 0})
        interp = build((sender, "s", {"out": c}), (receiver, "r", {"inp": c}),
                       channels=[c])
        s1 = interp.transitions(interp.initial_state())[0].target
        assert len(interp.transitions(s1)) == 1

    def test_when_guards_rendezvous_partner(self, build):
        c = rendezvous("c", "v")
        sender = ProcessDef("s", Send("out", [1]), chan_params=("out",))
        receiver = ProcessDef("r", Recv("inp", [AnyField()], when=(V("g") == 1)),
                              chan_params=("inp",))
        interp = build((sender, "s", {"out": c}), (receiver, "r", {"inp": c}),
                       globals_={"g": 0}, channels=[c])
        assert interp.transitions(interp.initial_state()) == []

    def test_when_guard_suppresses_else_correctly(self, build):
        c = rendezvous("c", "v")
        sender = ProcessDef("s", Send("out", [1]), chan_params=("out",))
        receiver = ProcessDef("r", If(
            Branch(Recv("inp", [AnyField()], when=(V("g") == 1)),
                   Assign("x", 1)),
            Branch(Else(), Assign("x", 99)),
        ), chan_params=("inp",), local_vars={"x": 0})
        interp = build((sender, "s", {"out": c}), (receiver, "r", {"inp": c}),
                       globals_={"g": 0}, channels=[c])
        # guard false: receive disabled, so else fires (sender stays blocked)
        trans = interp.transitions(interp.initial_state())
        assert [t.label.kind for t in trans] == ["else"]


class TestGlobalBindInRecv:
    def test_recv_can_bind_to_global(self, build):
        c = buffered("c", 1, "v")
        sender = ProcessDef("s", Send("out", [42]), chan_params=("out",))
        receiver = ProcessDef("r", Recv("inp", [Bind("g")]),
                              chan_params=("inp",))
        interp = build((sender, "s", {"out": c}), (receiver, "r", {"inp": c}),
                       globals_={"g": 0}, channels=[c])
        final = run_to_quiescence(interp)
        assert final.globals_ == (42,)

"""Tests for repro.psl.stmt: statement AST construction and validation."""

import pytest

from repro.psl.errors import CompileError
from repro.psl.expr import C, V
from repro.psl.stmt import (
    AnyField,
    Assert,
    Assign,
    Bind,
    Branch,
    Break,
    Do,
    DStep,
    Else,
    Guard,
    If,
    MatchEq,
    Recv,
    Send,
    Seq,
    Skip,
    as_pattern,
)


class TestPatterns:
    def test_string_becomes_bind(self):
        p = as_pattern("x")
        assert isinstance(p, Bind)
        assert p.name == "x"

    def test_int_becomes_match(self):
        p = as_pattern(3)
        assert isinstance(p, MatchEq)

    def test_expr_becomes_match(self):
        p = as_pattern(V("pid"))
        assert isinstance(p, MatchEq)

    def test_pattern_passthrough(self):
        p = AnyField()
        assert as_pattern(p) is p

    def test_invalid_rejected(self):
        with pytest.raises(CompileError):
            as_pattern(object())

    def test_promela_rendering(self):
        assert Bind("x").to_promela() == "x"
        assert AnyField().to_promela() == "_"
        assert MatchEq(V("p")).to_promela() == "eval(p)"


class TestSeq:
    def test_flattens_nested(self):
        inner = Seq([Skip(), Skip()])
        outer = Seq([inner, Skip()])
        assert len(outer.stmts) == 3

    def test_describe(self):
        s = Seq([Assign("x", 1), Skip()])
        assert "x = 1" in s.describe()
        assert "skip" in s.describe()


class TestBranches:
    def test_empty_branch_rejected(self):
        with pytest.raises(CompileError):
            Branch()

    def test_if_needs_branches(self):
        with pytest.raises(CompileError):
            If()

    def test_else_must_be_last(self):
        with pytest.raises(CompileError, match="else branch must be last"):
            If(Branch(Else()), Branch(Guard(V("x") == 1)))

    def test_single_else_allowed(self):
        If(Branch(Guard(V("x") == 1)), Branch(Else()))

    def test_two_elses_rejected(self):
        with pytest.raises(CompileError, match="at most one"):
            Do(Branch(Else()), Branch(Else()))

    def test_non_branch_rejected(self):
        with pytest.raises(CompileError):
            If(Skip())  # type: ignore[arg-type]

    def test_is_else_detection(self):
        assert Branch(Else(), Skip()).is_else
        assert not Branch(Skip()).is_else


class TestDStep:
    def test_only_local_statements(self):
        with pytest.raises(CompileError, match="local statements"):
            DStep([Send("c", [C(1)])])

    def test_recv_rejected(self):
        with pytest.raises(CompileError):
            DStep([Recv("c", ["x"])])

    def test_empty_rejected(self):
        with pytest.raises(CompileError, match="at least one"):
            DStep([])

    def test_flattens_seq(self):
        d = DStep([Seq([Assign("x", 1), Assign("y", 2)])])
        assert len(d.stmts) == 2

    def test_allowed_statements(self):
        DStep([Guard(V("x") == 0), Assign("x", 1), Assert(V("x") == 1), Skip()])

    def test_describe(self):
        assert "d_step" in DStep([Skip()]).describe()


class TestDescribe:
    def test_send(self):
        assert Send("ch", [C(1), V("x")]).describe() == "ch!1,x"

    def test_recv_plain(self):
        assert Recv("ch", ["a", AnyField()]).describe() == "ch?a,_"

    def test_recv_matching(self):
        assert Recv("ch", ["a"], matching=True).describe() == "ch??a"

    def test_recv_peek(self):
        assert Recv("ch", ["a"], peek=True).describe() == "ch?<a>"

    def test_recv_when(self):
        d = Recv("ch", ["a"], when=V("n") > 0).describe()
        assert d.startswith("[(n > 0)]")

    def test_guard(self):
        assert Guard(V("x") == 1).describe() == "((x == 1))"

    def test_assert(self):
        assert Assert(V("x") == 1).describe() == "assert((x == 1))"

    def test_assign(self):
        assert Assign("x", V("y") + 1).describe() == "x = (y + 1)"

    def test_break_else_skip(self):
        assert Break().describe() == "break"
        assert Else().describe() == "else"
        assert Skip().describe() == "skip"

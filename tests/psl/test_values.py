"""Tests for repro.psl.values: runtime values and mtype declarations."""

import pytest

from repro.psl.values import (
    Mtype,
    NO_PID,
    check_value,
    format_message,
    format_value,
    truthy,
)


class TestCheckValue:
    def test_int_passes_through(self):
        assert check_value(42) == 42

    def test_negative_int(self):
        assert check_value(-1) == -1

    def test_symbol_passes_through(self):
        assert check_value("IN_OK") == "IN_OK"

    def test_bool_normalized_to_int(self):
        value = check_value(True)
        assert value == 1
        assert type(value) is int

    def test_false_normalized(self):
        value = check_value(False)
        assert value == 0
        assert type(value) is int

    def test_float_rejected(self):
        with pytest.raises(TypeError, match="not a PSL value"):
            check_value(1.5)

    def test_none_rejected(self):
        with pytest.raises(TypeError):
            check_value(None)

    def test_tuple_rejected(self):
        with pytest.raises(TypeError):
            check_value((1, 2))

    def test_context_in_error_message(self):
        with pytest.raises(TypeError, match="my context"):
            check_value([], context="my context")


class TestTruthy:
    def test_zero_is_false(self):
        assert not truthy(0)

    def test_nonzero_is_true(self):
        assert truthy(1)
        assert truthy(-3)

    def test_symbols_are_true(self):
        assert truthy("SEND_SUCC")
        assert truthy("")  # any symbol value counts as true


class TestMtype:
    def test_attribute_access(self):
        m = Mtype("A", "B")
        assert m.A == "A"
        assert m.B == "B"

    def test_unknown_symbol_raises(self):
        m = Mtype("A")
        with pytest.raises(AttributeError, match="unknown mtype symbol"):
            m.NOPE

    def test_contains(self):
        m = Mtype("A", "B")
        assert "A" in m
        assert "C" not in m

    def test_iteration_preserves_order(self):
        m = Mtype("X", "Y", "Z")
        assert list(m) == ["X", "Y", "Z"]

    def test_len(self):
        assert len(Mtype("A", "B", "C")) == 3

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Mtype("A", "A")

    def test_non_identifier_rejected(self):
        with pytest.raises(ValueError, match="identifier"):
            Mtype("not-an-identifier")

    def test_names_property(self):
        assert Mtype("A", "B").names == ("A", "B")

    def test_repr(self):
        assert "Mtype(A, B)" == repr(Mtype("A", "B"))


class TestFormatting:
    def test_format_value(self):
        assert format_value(7) == "7"
        assert format_value("SIG") == "SIG"

    def test_format_message(self):
        assert format_message((1, "A", -1)) == "<1, A, -1>"

    def test_format_empty_message(self):
        assert format_message(()) == "<>"


def test_no_pid_constant():
    assert NO_PID == -1

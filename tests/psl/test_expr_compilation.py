"""Property test: the interpreter's compiled expressions agree with the
AST evaluator on every expression shape."""

from hypothesis import given, settings, strategies as st

from repro.psl import ProcessDef, Skip, System, V
from repro.psl.expr import BinOp, C, Not
from repro.psl.errors import EvalError
from repro.psl.interp import Interpreter, _compile_expr


def build_env():
    system = System("exprtest")
    system.add_global("g1", 0)
    system.add_global("g2", 0)
    d = ProcessDef("p", Skip(), local_vars={"a": 0, "b": 0, "c": 0})
    system.spawn(d, "i")
    system.finalize()
    Interpreter(system)  # validates
    return system


SYSTEM = build_env()
INST = SYSTEM.instances[0]

leaf = st.one_of(
    st.integers(-20, 20).map(C),
    st.sampled_from(["a", "b", "c", "g1", "g2", "_pid"]).map(V),
    st.sampled_from(["X", "Y"]).map(C),
)

ARITH = ["+", "-", "*"]
CMP = ["==", "!=", "<", "<=", ">", ">="]
BOOL = ["&&", "||"]


def exprs():
    return st.recursive(
        leaf,
        lambda sub: st.one_of(
            st.tuples(st.sampled_from(ARITH + CMP + BOOL), sub, sub)
            .map(lambda t: BinOp(*t)),
            sub.map(Not),
        ),
        max_leaves=8,
    )


class DictCtx:
    def __init__(self, values):
        self.values = values

    def lookup(self, name):
        return self.values[name]


@given(expr=exprs(),
       a=st.integers(-5, 5), b=st.integers(-5, 5), c=st.integers(-5, 5),
       g1=st.integers(-5, 5), g2=st.integers(-5, 5))
@settings(max_examples=300, deadline=None)
def test_compiled_matches_ast_eval(expr, a, b, c, g1, g2):
    frames = ((a, b, c),)
    globals_ = (g1, g2)
    ctx = DictCtx({"a": a, "b": b, "c": c, "g1": g1, "g2": g2, "_pid": 0})
    try:
        expected = expr.eval(ctx)
        expected_error = None
    except EvalError as exc:
        expected, expected_error = None, type(exc)
    fn = _compile_expr(expr, 0, INST, SYSTEM)
    if expected_error is not None:
        with __import__("pytest").raises((EvalError, TypeError)):
            fn(frames, globals_)
    else:
        assert fn(frames, globals_) == expected


@given(a=st.integers(-50, 50), b=st.integers(1, 10))
@settings(max_examples=100, deadline=None)
def test_compiled_slow_path_div_mod(a, b):
    """// and % go through the AST fallback; verify C semantics there."""
    expr = BinOp("/", C(a), C(b))
    fn = _compile_expr(expr, 0, INST, SYSTEM)
    q = fn(((0, 0, 0),), (0, 0))
    r = _compile_expr(BinOp("%", C(a), C(b)), 0, INST, SYSTEM)(
        ((0, 0, 0),), (0, 0))
    assert q * b + r == a
    assert abs(r) < b

"""Tests for repro.psl.expr: expression AST, evaluation, and rendering."""

import pytest

from repro.psl.errors import EvalError
from repro.psl.expr import (
    BinOp,
    C,
    Const,
    FALSE,
    Not,
    TRUE,
    V,
    Var,
    as_expr,
)


class DictCtx:
    """Minimal EvalContext backed by a dict."""

    def __init__(self, **bindings):
        self.bindings = bindings

    def lookup(self, name):
        try:
            return self.bindings[name]
        except KeyError:
            raise EvalError(f"unknown {name}")


class TestConst:
    def test_eval(self):
        assert Const(5).eval(DictCtx()) == 5

    def test_symbol(self):
        assert Const("SIG").eval(DictCtx()) == "SIG"

    def test_free_vars_empty(self):
        assert Const(1).free_vars() == frozenset()

    def test_to_promela(self):
        assert Const(3).to_promela() == "3"

    def test_bool_normalized(self):
        assert Const(True).value == 1


class TestVar:
    def test_eval(self):
        assert Var("x").eval(DictCtx(x=9)) == 9

    def test_unknown_raises(self):
        with pytest.raises(EvalError):
            Var("nope").eval(DictCtx())

    def test_free_vars(self):
        assert Var("x").free_vars() == frozenset({"x"})

    def test_empty_name_rejected(self):
        with pytest.raises(EvalError):
            Var("")


class TestArithmetic:
    def test_add(self):
        assert (V("x") + 3).eval(DictCtx(x=4)) == 7

    def test_radd(self):
        assert (3 + V("x")).eval(DictCtx(x=4)) == 7

    def test_sub(self):
        assert (V("x") - 1).eval(DictCtx(x=4)) == 3

    def test_rsub(self):
        assert (10 - V("x")).eval(DictCtx(x=4)) == 6

    def test_mul(self):
        assert (V("x") * 5).eval(DictCtx(x=4)) == 20

    def test_mod(self):
        assert (V("x") % 3).eval(DictCtx(x=7)) == 1

    def test_floordiv(self):
        assert (V("x") // 3).eval(DictCtx(x=7)) == 2

    def test_division_truncates_toward_zero(self):
        # Promela/C semantics, not Python floor semantics.
        assert (V("x") // 3).eval(DictCtx(x=-7)) == -2

    def test_mod_sign_follows_dividend(self):
        # C semantics: (-7) % 3 == -1
        assert (V("x") % 3).eval(DictCtx(x=-7)) == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(EvalError, match="division by zero"):
            (V("x") // 0).eval(DictCtx(x=1))

    def test_modulo_by_zero_raises(self):
        with pytest.raises(EvalError, match="modulo by zero"):
            (V("x") % 0).eval(DictCtx(x=1))

    def test_arith_on_symbol_raises(self):
        with pytest.raises(EvalError, match="arithmetic on non-integers"):
            (V("x") + 1).eval(DictCtx(x="SIG"))


class TestComparisons:
    def test_eq_true(self):
        assert (V("x") == 3).eval(DictCtx(x=3)) == 1

    def test_eq_false(self):
        assert (V("x") == 3).eval(DictCtx(x=4)) == 0

    def test_ne(self):
        assert (V("x") != 3).eval(DictCtx(x=4)) == 1

    def test_lt_le_gt_ge(self):
        ctx = DictCtx(x=3)
        assert (V("x") < 4).eval(ctx) == 1
        assert (V("x") <= 3).eval(ctx) == 1
        assert (V("x") > 2).eval(ctx) == 1
        assert (V("x") >= 4).eval(ctx) == 0

    def test_symbol_equality(self):
        assert (V("s") == C("SEND_SUCC")).eval(DictCtx(s="SEND_SUCC")) == 1

    def test_symbol_inequality_with_int(self):
        assert (V("s") == 3).eval(DictCtx(s="SIG")) == 0

    def test_ordering_mixed_types_raises(self):
        with pytest.raises(EvalError, match="cannot order mixed types"):
            (V("s") < 3).eval(DictCtx(s="SIG"))


class TestBoolean:
    def test_and(self):
        assert ((V("x") == 1) & (V("y") == 2)).eval(DictCtx(x=1, y=2)) == 1

    def test_and_short_false(self):
        assert ((V("x") == 1) & (V("y") == 9)).eval(DictCtx(x=1, y=2)) == 0

    def test_or(self):
        assert ((V("x") == 9) | (V("y") == 2)).eval(DictCtx(x=1, y=2)) == 1

    def test_not(self):
        assert (~(V("x") == 1)).eval(DictCtx(x=1)) == 0
        assert (~(V("x") == 1)).eval(DictCtx(x=2)) == 1

    def test_constants(self):
        assert TRUE.eval(DictCtx()) == 1
        assert FALSE.eval(DictCtx()) == 0


class TestAsExpr:
    def test_int(self):
        assert isinstance(as_expr(3), Const)

    def test_str(self):
        assert as_expr("SIG").value == "SIG"

    def test_passthrough(self):
        v = V("x")
        assert as_expr(v) is v

    def test_rejects_other(self):
        with pytest.raises(EvalError):
            as_expr(object())


class TestStructure:
    def test_free_vars_nested(self):
        e = (V("a") + V("b")) * (V("c") - 1)
        assert e.free_vars() == frozenset({"a", "b", "c"})

    def test_free_vars_not(self):
        assert Not(V("a")).free_vars() == frozenset({"a"})

    def test_to_promela_binop(self):
        assert (V("x") + 1).to_promela() == "(x + 1)"

    def test_to_promela_not(self):
        assert (~V("x")).to_promela() == "!(x)"

    def test_to_promela_nested(self):
        e = (V("x") == 1) & (V("y") < 2)
        assert e.to_promela() == "((x == 1) && (y < 2))"

    def test_unknown_binop_rejected(self):
        with pytest.raises(EvalError):
            BinOp("^", C(1), C(2))

    def test_exprs_usable_as_dict_keys(self):
        # __eq__ is overloaded to build BinOp; hash must be identity-based.
        e1, e2 = V("x"), V("x")
        d = {e1: "a", e2: "b"}
        assert len(d) == 2

"""Tests for repro.psl.system: definitions, instances, assembly."""

import pytest

from repro.psl import (
    Assign,
    BindingError,
    EvalError,
    ProcessDef,
    ProcessInstance,
    Send,
    Skip,
    System,
    V,
    buffered,
    rendezvous,
)
from repro.psl.channels import Channel


def trivial_def(name="p"):
    return ProcessDef(name, Skip())


class TestProcessDef:
    def test_undeclared_channel_param_rejected(self):
        with pytest.raises(BindingError, match="undeclared channel params"):
            ProcessDef("p", Send("c", [1]))

    def test_declared_channel_param_ok(self):
        ProcessDef("p", Send("c", [1]), chan_params=("c",))

    def test_params_shadowing_locals_rejected(self):
        with pytest.raises(BindingError, match="shadow"):
            ProcessDef("p", Skip(), params=("x",), local_vars={"x": 0})

    def test_local_names_order(self):
        d = ProcessDef("p", Skip(), params=("a",), local_vars={"b": 1, "c": 2})
        assert d.local_names == ("a", "b", "c")

    def test_automaton_cached(self):
        d = trivial_def()
        assert d.automaton is d.automaton


class TestProcessInstance:
    def test_unbound_channel_rejected(self):
        d = ProcessDef("p", Send("c", [1]), chan_params=("c",))
        with pytest.raises(BindingError, match="unbound channel"):
            ProcessInstance(d, "i")

    def test_unbound_value_param_rejected(self):
        d = ProcessDef("p", Skip(), params=("n",))
        with pytest.raises(BindingError, match="unbound value params"):
            ProcessInstance(d, "i")

    def test_unknown_value_param_rejected(self):
        d = trivial_def()
        with pytest.raises(BindingError, match="unknown params"):
            ProcessInstance(d, "i", args={"bogus": 1})

    def test_initial_frame_params_first(self):
        d = ProcessDef("p", Skip(), params=("n",), local_vars={"x": 7})
        inst = ProcessInstance(d, "i", args={"n": 3})
        assert inst.initial_frame() == (3, 7)

    def test_channel_for(self):
        c = rendezvous("c", "f")
        d = ProcessDef("p", Send("c", [1]), chan_params=("c",))
        inst = ProcessInstance(d, "i", chans={"c": c})
        assert inst.channel_for("c") is c


class TestSystem:
    def test_duplicate_global_rejected(self):
        s = System()
        s.add_global("x")
        with pytest.raises(BindingError, match="duplicate global"):
            s.add_global("x")

    def test_duplicate_channel_name_rejected(self):
        s = System()
        s.add_channel(rendezvous("c", "f"))
        with pytest.raises(BindingError, match="duplicate channel"):
            s.add_channel(rendezvous("c", "f"))

    def test_channel_reregistration_rejected(self):
        s1, s2 = System(), System()
        c = rendezvous("c", "f")
        s1.add_channel(c)
        with pytest.raises(BindingError, match="already registered"):
            s2.add_channel(c)

    def test_duplicate_instance_name_rejected(self):
        s = System()
        d = trivial_def()
        s.spawn(d, "a")
        with pytest.raises(BindingError, match="duplicate instance"):
            s.spawn(d, "a")

    def test_pids_assigned_in_order(self):
        s = System()
        d = trivial_def()
        i1 = s.spawn(d, "a")
        i2 = s.spawn(d, "b")
        assert (i1.pid, i2.pid) == (0, 1)

    def test_foreign_channel_rejected_at_finalize(self):
        s1, s2 = System("s1"), System("s2")
        c = s1.add_channel(rendezvous("c", "f"))
        d = ProcessDef("p", Send("c", [1]), chan_params=("c",))
        s2.spawn(d, "i", chans={"c": c})
        with pytest.raises(BindingError, match="not registered"):
            s2.finalize()

    def test_unresolvable_name_rejected_at_finalize(self):
        s = System()
        d = ProcessDef("p", Assign("nowhere", 1))
        s.spawn(d, "i")
        with pytest.raises(EvalError, match="nowhere"):
            s.finalize()

    def test_name_resolves_to_global(self):
        s = System()
        s.add_global("g", 5)
        d = ProcessDef("p", Assign("g", V("g") + 1))
        s.spawn(d, "i")
        s.finalize()  # no error

    def test_initial_state_shape(self):
        s = System()
        s.add_global("g", 5)
        c = s.add_channel(buffered("c", 2, "f"))
        d = ProcessDef("p", Send("out", [1]), chan_params=("out",),
                       local_vars={"x": 9})
        s.spawn(d, "i", chans={"out": c})
        state = s.initial_state()
        assert state.globals_ == (5,)
        assert state.chans == ((),)
        assert state.frames == ((9,),)
        assert len(state.locs) == 1

    def test_modification_after_finalize_rejected(self):
        s = System()
        s.spawn(trivial_def(), "a")
        s.finalize()
        with pytest.raises(BindingError, match="finalized"):
            s.add_global("late")

    def test_instance_and_channel_lookup(self):
        s = System()
        c = s.add_channel(rendezvous("ch", "f"))
        inst = s.spawn(trivial_def(), "a")
        assert s.instance_by_name("a") is inst
        assert s.channel_by_name("ch") is c
        with pytest.raises(KeyError):
            s.instance_by_name("zz")
        with pytest.raises(KeyError):
            s.channel_by_name("zz")

    def test_definitions_deduplicated(self):
        s = System()
        d = trivial_def()
        s.spawn(d, "a")
        s.spawn(d, "b")
        assert s.definitions() == [d]


class TestChannelDecl:
    def test_rendezvous_properties(self):
        c = rendezvous("c", "a", "b")
        assert c.is_rendezvous and not c.is_buffered
        assert c.arity == 2

    def test_buffered_properties(self):
        c = buffered("c", 3, "a")
        assert c.is_buffered and not c.is_rendezvous
        assert c.capacity == 3

    def test_zero_capacity_buffered_rejected(self):
        from repro.psl.errors import ChannelError
        with pytest.raises(ChannelError):
            buffered("c", 0, "a")

    def test_no_fields_rejected(self):
        from repro.psl.errors import ChannelError
        with pytest.raises(ChannelError, match="at least one field"):
            Channel("c", ())

    def test_duplicate_fields_rejected(self):
        from repro.psl.errors import ChannelError
        with pytest.raises(ChannelError, match="duplicate field"):
            Channel("c", ("a", "a"))

    def test_arity_check(self):
        from repro.psl.errors import ChannelError
        c = rendezvous("c", "a", "b")
        with pytest.raises(ChannelError, match="arity"):
            c.check_arity(3, "send")

"""Interpreter tests: local steps, guards, assignments, assertions."""

import pytest

from repro.psl import (
    Assert,
    Assign,
    Branch,
    Do,
    DStep,
    Else,
    Guard,
    If,
    ProcessDef,
    Seq,
    Skip,
    V,
)
from repro.psl.errors import ExecutionError

from .conftest import explore_all


class TestLocalSteps:
    def test_assign_local(self, build):
        d = ProcessDef("p", Assign("x", 41), local_vars={"x": 0})
        interp = build((d, "i"))
        [t] = interp.transitions(interp.initial_state())
        assert t.target.frames[0] == (41,)

    def test_assign_global(self, build):
        d = ProcessDef("p", Assign("g", V("g") + 1))
        interp = build((d, "i"), globals_={"g": 10})
        [t] = interp.transitions(interp.initial_state())
        assert t.target.globals_ == (11,)

    def test_guard_blocks_when_false(self, build):
        d = ProcessDef("p", Guard(V("g") == 1))
        interp = build((d, "i"), globals_={"g": 0})
        assert interp.transitions(interp.initial_state()) == []

    def test_guard_fires_when_true(self, build):
        d = ProcessDef("p", Guard(V("g") == 1))
        interp = build((d, "i"), globals_={"g": 1})
        assert len(interp.transitions(interp.initial_state())) == 1

    def test_skip_is_one_step(self, build):
        d = ProcessDef("p", Skip())
        interp = build((d, "i"))
        [t] = interp.transitions(interp.initial_state())
        assert t.label.kind == "local"

    def test_source_state_not_mutated(self, build):
        d = ProcessDef("p", Assign("x", 1), local_vars={"x": 0})
        interp = build((d, "i"))
        s0 = interp.initial_state()
        interp.transitions(s0)
        assert s0.frames[0] == (0,)

    def test_value_param_available(self, build):
        d = ProcessDef("p", Assign("x", V("n") * 2), params=("n",),
                       local_vars={"x": 0})
        interp = build((d, "i", None, {"n": 21}))
        [t] = interp.transitions(interp.initial_state())
        assert t.target.frames[0] == (21, 42)

    def test_pid_builtin(self, build):
        d = ProcessDef("p", Assign("x", V("_pid")), local_vars={"x": -5})
        interp = build((d, "a"), (d, "b"))
        trans = interp.transitions(interp.initial_state())
        results = sorted(t.target.frames[t.label.pid][0] for t in trans)
        assert results == [0, 1]


class TestInterleaving:
    def test_two_processes_interleave(self, build):
        d = ProcessDef("p", Assign("g", V("_pid")))
        interp = build((d, "a"), (d, "b"), globals_={"g": -1})
        trans = interp.transitions(interp.initial_state())
        assert len(trans) == 2
        assert {t.label.pid for t in trans} == {0, 1}

    def test_diamond_converges(self, build):
        d = ProcessDef("p", Assign("x", 1), local_vars={"x": 0})
        interp = build((d, "a"), (d, "b"))
        seen, deadlocks, violations = explore_all(interp)
        # 2 independent steps: 4 states (00, 10, 01, 11)
        assert len(seen) == 4
        assert not deadlocks and not violations


class TestSelectionSemantics:
    def test_nondeterministic_choice(self, build):
        d = ProcessDef("p", If(
            Branch(Guard(V("g") >= 0), Assign("x", 1)),
            Branch(Guard(V("g") >= 0), Assign("x", 2)),
        ), local_vars={"x": 0})
        interp = build((d, "i"), globals_={"g": 0})
        assert len(interp.transitions(interp.initial_state())) == 2

    def test_else_taken_only_when_nothing_enabled(self, build):
        d = ProcessDef("p", If(
            Branch(Guard(V("g") == 1), Assign("x", 1)),
            Branch(Else(), Assign("x", 99)),
        ), local_vars={"x": 0})
        interp = build((d, "i"), globals_={"g": 0})
        [t] = interp.transitions(interp.initial_state())
        assert t.label.kind == "else"

    def test_else_suppressed_when_branch_enabled(self, build):
        d = ProcessDef("p", If(
            Branch(Guard(V("g") == 0), Assign("x", 1)),
            Branch(Else(), Assign("x", 99)),
        ), local_vars={"x": 0})
        interp = build((d, "i"), globals_={"g": 0})
        trans = interp.transitions(interp.initial_state())
        assert len(trans) == 1
        assert trans[0].label.kind == "local"


class TestAssertions:
    def test_passing_assert(self, build):
        d = ProcessDef("p", Assert(V("g") == 0))
        interp = build((d, "i"), globals_={"g": 0})
        [t] = interp.transitions(interp.initial_state())
        assert t.violation is None

    def test_failing_assert(self, build):
        d = ProcessDef("p", Assert(V("g") == 1))
        interp = build((d, "i"), globals_={"g": 0})
        [t] = interp.transitions(interp.initial_state())
        assert t.violation is not None
        assert "assertion violated" in t.violation

    def test_assert_names_the_process(self, build):
        d = ProcessDef("p", Assert(V("g") == 1))
        interp = build((d, "culprit"), globals_={"g": 0})
        [t] = interp.transitions(interp.initial_state())
        assert "culprit" in t.violation


class TestDStep:
    def test_runs_as_one_transition(self, build):
        d = ProcessDef("p", DStep([
            Assign("x", 1), Assign("y", V("x") + 1), Assign("x", V("y") + 1),
        ]), local_vars={"x": 0, "y": 0})
        interp = build((d, "i"))
        [t] = interp.transitions(interp.initial_state())
        assert t.target.frames[0] == (3, 2)
        assert t.label.kind == "dstep"

    def test_head_guard_false_blocks(self, build):
        d = ProcessDef("p", DStep([Guard(V("g") == 1), Assign("g", 2)]))
        interp = build((d, "i"), globals_={"g": 0})
        assert interp.transitions(interp.initial_state()) == []

    def test_mid_block_guard_failure_is_model_error(self, build):
        d = ProcessDef("p", DStep([Assign("g", 1), Guard(V("g") == 99)]))
        interp = build((d, "i"), globals_={"g": 0})
        with pytest.raises(ExecutionError, match="blocked"):
            interp.transitions(interp.initial_state())

    def test_assert_inside_dstep(self, build):
        d = ProcessDef("p", DStep([Assign("g", 1), Assert(V("g") == 2)]))
        interp = build((d, "i"), globals_={"g": 0})
        [t] = interp.transitions(interp.initial_state())
        assert t.violation is not None

    def test_sees_partial_updates(self, build):
        d = ProcessDef("p", DStep([
            Assign("g", 5), Guard(V("g") == 5), Assign("g", V("g") * 2),
        ]))
        interp = build((d, "i"), globals_={"g": 0})
        [t] = interp.transitions(interp.initial_state())
        assert t.target.globals_ == (10,)


class TestEndStates:
    def test_terminated_process_is_valid_end(self, build):
        d = ProcessDef("p", Skip())
        interp = build((d, "i"))
        [t] = interp.transitions(interp.initial_state())
        assert interp.is_valid_end_state(t.target)

    def test_blocked_mid_body_is_invalid_end(self, build):
        d = ProcessDef("p", Seq([Skip(), Guard(V("g") == 1)]))
        interp = build((d, "i"), globals_={"g": 0})
        [t] = interp.transitions(interp.initial_state())
        assert interp.transitions(t.target) == []
        assert not interp.is_valid_end_state(t.target)
        assert [i.name for i in interp.blocked_processes(t.target)] == ["i"]

    def test_do_loop_never_terminates_but_no_deadlock(self, build):
        d = ProcessDef("p", Do(Branch(Skip())))
        interp = build((d, "i"))
        seen, deadlocks, violations = explore_all(interp)
        assert not deadlocks


class TestRandomWalk:
    def test_walk_reproducible_with_seed(self, build):
        d = ProcessDef("p", Do(
            Branch(Assign("g", V("g") + 1)),
            Branch(Assign("g", 0)),
        ))
        interp = build((d, "i"), globals_={"g": 0})
        w1 = interp.random_walk(max_steps=20, seed=7)
        w2 = interp.random_walk(max_steps=20, seed=7)
        assert [lbl.desc for lbl, _ in w1] == [lbl.desc for lbl, _ in w2]

    def test_walk_stops_at_termination(self, build):
        d = ProcessDef("p", Skip())
        interp = build((d, "i"))
        walk = interp.random_walk(max_steps=100, seed=1)
        assert len(walk) == 1

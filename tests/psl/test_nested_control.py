"""Interpreter tests for deeply nested control structures."""


from repro.psl import (
    Assign,
    Branch,
    Break,
    Do,
    Else,
    Guard,
    If,
    Interpreter,
    ProcessDef,
    Seq,
    Skip,
    V,
)

from .conftest import explore_all, make_system


def run_single(body, globals_=None, local_vars=None, max_steps=200):
    """Run a single deterministic process to quiescence."""
    system = make_system(
        (ProcessDef("p", body, local_vars=local_vars or {}), "i"),
        globals_=globals_ or {},
    )
    interp = Interpreter(system)
    state = interp.initial_state()
    for _ in range(max_steps):
        trans = interp.transitions(state)
        if not trans:
            return system, state
        assert len(trans) == 1, "expected deterministic execution"
        state = trans[0].target
    raise RuntimeError("did not quiesce")


def g(system, state, name):
    return state.globals_[system.global_index[name]]


class TestNestedLoops:
    def test_doubly_nested_counting(self):
        body = Do(
            Branch(
                Guard(V("i") < 3),
                Assign("j", 0),
                Do(
                    Branch(Guard(V("j") < 2),
                           Assign("j", V("j") + 1),
                           Assign("total", V("total") + 1)),
                    Branch(Guard(V("j") == 2), Break()),
                ),
                Assign("i", V("i") + 1),
            ),
            Branch(Guard(V("i") == 3), Break()),
        )
        system, final = run_single(
            body, globals_={"i": 0, "j": 0, "total": 0})
        assert g(system, final, "total") == 6

    def test_break_exits_only_inner_loop(self):
        body = Do(
            Branch(
                Guard(V("outer") < 2),
                Do(Branch(Guard(V("outer") >= 0), Break())),  # immediate
                Assign("outer", V("outer") + 1),
            ),
            Branch(Guard(V("outer") == 2), Break()),
        )
        system, final = run_single(body, globals_={"outer": 0})
        assert g(system, final, "outer") == 2

    def test_if_inside_do_inside_if(self):
        body = If(
            Branch(
                Guard(V("mode") == 1),
                Do(
                    Branch(
                        Guard(V("n") < 4),
                        If(
                            Branch(Guard(V("n") % 2 == 0),
                                   Assign("evens", V("evens") + 1)),
                            Branch(Else(),
                                   Assign("odds", V("odds") + 1)),
                        ),
                        Assign("n", V("n") + 1),
                    ),
                    Branch(Guard(V("n") == 4), Break()),
                ),
            ),
            Branch(Else(), Skip()),
        )
        system, final = run_single(
            body, globals_={"mode": 1, "n": 0, "evens": 0, "odds": 0})
        assert g(system, final, "evens") == 2
        assert g(system, final, "odds") == 2

    def test_triple_nesting_terminates(self):
        body = Do(
            Branch(
                Guard(V("a") < 2),
                Do(
                    Branch(
                        Guard(V("b") < 2),
                        Do(
                            Branch(Guard(V("c") < 2),
                                   Assign("c", V("c") + 1)),
                            Branch(Guard(V("c") == 2), Break()),
                        ),
                        Assign("c", 0),
                        Assign("b", V("b") + 1),
                    ),
                    Branch(Guard(V("b") == 2), Break()),
                ),
                Assign("b", 0),
                Assign("a", V("a") + 1),
            ),
            Branch(Guard(V("a") == 2), Break()),
        )
        system, final = run_single(body, globals_={"a": 0, "b": 0, "c": 0})
        assert g(system, final, "a") == 2


class TestElseInNesting:
    def test_else_scoped_to_its_own_selection(self):
        """An inner Else must consider only its own siblings."""
        body = Seq([
            If(
                Branch(Guard(V("x") == 0),
                       If(Branch(Guard(V("x") == 1), Assign("r", 10)),
                          Branch(Else(), Assign("r", 20)))),
                Branch(Else(), Assign("r", 30)),
            ),
        ])
        system, final = run_single(body, globals_={"x": 0, "r": 0})
        assert g(system, final, "r") == 20

    def test_do_with_else_branch(self):
        """Promela idiom: do :: guarded-work :: else -> break od."""
        body = Do(
            Branch(Guard(V("x") < 3), Assign("x", V("x") + 1)),
            Branch(Else(), Break()),
        )
        system, final = run_single(body, globals_={"x": 0})
        assert g(system, final, "x") == 3


class TestStateSpaceShapes:
    def test_independent_nested_loops_commute(self):
        """Two nested-loop processes over disjoint locals: the diamond
        count is the product of each process's chain length + overlaps,
        and exploration terminates without deadlock."""
        def looper(var):
            return ProcessDef(f"loop_{var}", Do(
                Branch(Guard(V("k") < 2),
                       Do(Branch(Guard(V("m") < 2), Assign("m", V("m") + 1)),
                          Branch(Guard(V("m") == 2), Break())),
                       Assign("m", 0),
                       Assign("k", V("k") + 1)),
                Branch(Guard(V("k") == 2), Break()),
            ), local_vars={"k": 0, "m": 0})
        single = make_system((looper("a"), "A"))
        chain, _, _ = explore_all(Interpreter(single))
        system = make_system((looper("a"), "A"), (looper("b"), "B"))
        interp = Interpreter(system)
        seen, deadlocks, violations = explore_all(interp)
        assert not deadlocks and not violations
        # two fully independent deterministic chains: the state count of
        # the product is exactly the square of the single chain's length
        assert len(seen) == len(chain) ** 2

"""Property-based tests (hypothesis) for PSL core invariants."""

from hypothesis import given, settings, strategies as st

from repro.psl import (
    Assign,
    Bind,
    Branch,
    Do,
    Guard,
    Interpreter,
    ProcessDef,
    Recv,
    Send,
    V,
    buffered,
)
from repro.psl.state import State, tuple_set

from .conftest import explore_all, make_system

values = st.one_of(st.integers(-50, 50), st.sampled_from(["A", "B", "SIG"]))


class TestTupleSet:
    @given(st.lists(st.integers(), min_size=1, max_size=8), st.data())
    def test_replaces_only_target_index(self, items, data):
        t = tuple(items)
        i = data.draw(st.integers(0, len(t) - 1))
        out = tuple_set(t, i, 999)
        assert out[i] == 999
        assert out[:i] == t[:i]
        assert out[i + 1:] == t[i + 1:]

    @given(st.lists(st.integers(), min_size=1, max_size=8), st.data())
    def test_original_untouched(self, items, data):
        t = tuple(items)
        i = data.draw(st.integers(0, len(t) - 1))
        before = tuple(t)
        tuple_set(t, i, 123456)
        assert t == before


class TestExprSemantics:
    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_c_style_division_identity(self, a, b):
        """(a/b)*b + a%b == a must hold for C-truncating div/mod."""
        if b == 0:
            return
        ctx = _Ctx(a=a, b=b)
        q = (V("a") // V("b")).eval(ctx)
        r = (V("a") % V("b")).eval(ctx)
        assert q * b + r == a
        # remainder magnitude bounded by |b|
        assert abs(r) < abs(b)

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_comparison_agrees_with_python(self, a, b):
        ctx = _Ctx(a=a, b=b)
        assert (V("a") < V("b")).eval(ctx) == int(a < b)
        assert (V("a") == V("b")).eval(ctx) == int(a == b)
        assert (V("a") >= V("b")).eval(ctx) == int(a >= b)

    @given(st.integers(-100, 100), st.integers(-100, 100),
           st.integers(-100, 100))
    def test_arithmetic_agrees_with_python(self, a, b, c):
        ctx = _Ctx(a=a, b=b, c=c)
        assert ((V("a") + V("b")) * V("c")).eval(ctx) == (a + b) * c
        assert (V("a") - V("b") + V("c")).eval(ctx) == a - b + c


class _Ctx:
    def __init__(self, **kw):
        self.kw = kw

    def lookup(self, name):
        return self.kw[name]


class TestStateCanonicity:
    @given(values, values)
    def test_states_with_equal_content_are_equal(self, v1, v2):
        s1 = State(locs=(0,), frames=((v1, v2),), chans=((),), globals_=(v1,))
        s2 = State(locs=(0,), frames=((v1, v2),), chans=((),), globals_=(v1,))
        assert s1 == s2
        assert hash(s1) == hash(s2)

    @given(values)
    def test_different_locs_differ(self, v):
        s1 = State(locs=(0,), frames=((v,),), chans=((),), globals_=())
        s2 = State(locs=(1,), frames=((v,),), chans=((),), globals_=())
        assert s1 != s2


class TestInterpreterDeterminism:
    @given(st.integers(0, 5), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_transitions_deterministic(self, bound, cap):
        """The same state always yields the same transition list."""
        c = buffered("c", cap, "v")
        sender = ProcessDef("s", Do(
            Branch(Guard(V("n") < bound),
                   Send("out", [V("n")]),
                   Assign("n", V("n") + 1)),
            Branch(Guard(V("n") == bound)),
        ), chan_params=("out",), local_vars={"n": 0})
        receiver = ProcessDef("r", Do(
            Branch(Recv("inp", [Bind("x")])),
        ), chan_params=("inp",), local_vars={"x": 0})
        system = make_system((sender, "s", {"out": c}),
                             (receiver, "r", {"inp": c}), channels=[c])
        interp = Interpreter(system)
        state = interp.initial_state()
        t1 = [t.label.desc for t in interp.transitions(state)]
        t2 = [t.label.desc for t in interp.transitions(state)]
        assert t1 == t2

    @given(st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_exploration_is_finite_and_consistent(self, k):
        """Counter systems have exactly the expected reachable states."""
        d = ProcessDef("p", Do(
            Branch(Guard(V("g") < k), Assign("g", V("g") + 1)),
        ))
        system = make_system((d, "i"), globals_={"g": 0})
        interp = Interpreter(system)
        seen, deadlocks, violations = explore_all(interp)
        # Each iteration is guard-then-increment (two locations), so the
        # reachable states are: g=0..k at the loop head, plus g=0..k-1 at
        # the intermediate location = 2k + 1 states.
        assert len(seen) == 2 * k + 1
        assert not violations

    @given(st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_buffered_channel_never_exceeds_capacity(self, cap, senders):
        c = buffered("c", cap, "v")
        sender = ProcessDef("s", Do(Branch(Send("out", [1]))),
                            chan_params=("out",))
        receiver = ProcessDef("r", Do(Branch(Recv("inp", [AnyFieldBind()]))),
                              chan_params=("inp",), local_vars={"x": 0})
        procs = [(sender, f"s{i}", {"out": c}) for i in range(senders)]
        procs.append((receiver, "r", {"inp": c}))
        system = make_system(*procs, channels=[c])
        interp = Interpreter(system)
        seen, _, _ = explore_all(interp, max_states=20_000)
        assert all(len(s.chans[0]) <= cap for s in seen)


def AnyFieldBind():
    return Bind("x")

"""Journal-for-resume and backend guardrails on the manager."""

import json
import os

import pytest

from repro.serve import JobManager, ServeError

SPEC = {"kind": "verify", "system": "gas",
        "options": {"customers": 2, "selective": True}}


def _journal_job(cache_dir, job_id, spec, status="queued", **extra):
    """Author a journaled job the way a dying daemon leaves it."""
    job_dir = os.path.join(cache_dir, "serve", "jobs", job_id)
    os.makedirs(job_dir, exist_ok=True)
    state = {"job_id": job_id, "kind": spec.get("kind", "verify"),
             "spec": spec, "status": status, "submitted_at": 1.0,
             "fingerprint": "", "command": "", **extra}
    with open(os.path.join(job_dir, "job.json"), "w",
              encoding="utf-8") as fh:
        json.dump(state, fh)


class TestRecovery:
    def test_queued_jobs_are_reenqueued_and_finish(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        os.makedirs(cache_dir)
        _journal_job(cache_dir, "jrecovered001", SPEC)
        manager = JobManager(cache_dir, workers=1, supervised=False)
        try:
            assert manager.counters["recovered"] == 1
            view = manager.wait("jrecovered001", timeout=60)
            assert view["status"] == "done"
            assert view["verdict"] == "PASS"
        finally:
            manager.close()

    def test_recovered_duplicates_recoalesce(self, tmp_path, monkeypatch):
        from repro.design import failpoints
        monkeypatch.setenv(failpoints.ENV_VAR, "serve.run=sleep:1")
        cache_dir = str(tmp_path / "cache")
        os.makedirs(cache_dir)
        _journal_job(cache_dir, "jprimary00001", SPEC, submitted_at=1.0)
        _journal_job(cache_dir, "jduplicate001", SPEC, submitted_at=2.0)
        manager = JobManager(cache_dir, workers=2, supervised=False)
        try:
            assert manager.counters["recovered"] == 2
            assert manager.counters["coalesced"] == 1
            first = manager.wait("jprimary00001", timeout=60)
            second = manager.wait("jduplicate001", timeout=60)
            assert first["verdict"] == second["verdict"] == "PASS"
            assert manager.counters["computed"] == 1
        finally:
            manager.close()

    def test_terminal_jobs_stay_queryable_across_restart(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        manager = JobManager(cache_dir, workers=1, supervised=False)
        try:
            view = manager.submit(SPEC)
            done = manager.wait(view["job_id"], timeout=60)
            assert done["status"] == "done"
        finally:
            manager.close()
        reopened = JobManager(cache_dir, workers=1, supervised=False)
        try:
            again = reopened.job(view["job_id"])
            assert again["status"] == "done"
            assert again["verdict"] == "PASS"
            assert reopened.report(view["job_id"]) is not None
            # And a fresh identical submission is a pure warm hit.
            warm = reopened.submit(SPEC)
            assert warm["cached"] is True
            assert warm["status"] == "done"
        finally:
            reopened.close()

    def test_recovered_job_whose_verdict_landed_is_served_warm(
            self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        manager = JobManager(cache_dir, workers=1, supervised=False)
        try:
            manager.wait(manager.submit(SPEC)["job_id"], timeout=60)
        finally:
            manager.close()
        # A queued duplicate left behind by a crash: its verdict is
        # already in the shared store, so recovery resolves it warm.
        _journal_job(cache_dir, "jorphaned0001", SPEC)
        reopened = JobManager(cache_dir, workers=1, supervised=False)
        try:
            view = reopened.wait("jorphaned0001", timeout=10)
            assert view["status"] == "done"
            assert view["cached"] is True
            assert reopened.counters["computed"] == 0
        finally:
            reopened.close()


class TestBackendGuardrail:
    def test_jsonl_cache_directories_are_refused(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "results.jsonl").write_text("")
        with pytest.raises(ServeError, match="cache migrate"):
            JobManager(str(cache_dir))

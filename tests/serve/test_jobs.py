"""Job specs: canonicalization, fingerprints, and direct execution."""

import pytest

from repro.serve import JobSpecError, build_job, canonical_spec, run_job


class TestCanonicalSpec:
    def test_defaults_are_filled(self):
        spec = canonical_spec({"kind": "verify", "system": "gas"})
        assert spec == {
            "kind": "verify",
            "system": "gas",
            "options": {"customers": 2, "selective": False,
                        "max_states": None, "max_seconds": None},
        }

    def test_kind_defaults_to_verify(self):
        assert canonical_spec({"system": "abp"})["kind"] == "verify"

    def test_sparse_and_explicit_specs_canonicalize_identically(self):
        sparse = canonical_spec({"system": "gas",
                                 "options": {"selective": True}})
        explicit = canonical_spec({
            "kind": "verify", "system": "gas",
            "options": {"customers": 2, "selective": True,
                        "max_states": None, "max_seconds": None},
        })
        assert sparse == explicit

    @pytest.mark.parametrize("bad", [
        None,
        [],
        "gas",
        {"kind": "nonsense"},
        {"kind": "verify", "system": "unknown"},
        {"kind": "verify", "system": "gas", "options": {"bogus": 1}},
        {"kind": "verify", "system": "gas", "options": {"customers": "2"}},
        {"kind": "verify", "system": "gas", "options": {"customers": 0}},
        {"kind": "verify", "system": "gas", "options": {"selective": 1}},
        {"kind": "verify", "system": "bridge",
         "options": {"variant": "warp"}},
        {"kind": "explore", "space": "unknown"},
        {"kind": "explore", "space": "pc", "options": {"cars": 1}},
    ])
    def test_unrunnable_specs_are_rejected(self, bad):
        with pytest.raises(JobSpecError):
            canonical_spec(bad)


class TestFingerprints:
    def test_equal_jobs_get_equal_fingerprints(self):
        a = build_job({"system": "gas", "options": {"selective": True}})
        b = build_job({"kind": "verify", "system": "gas",
                       "options": {"customers": 2, "selective": True}})
        assert a.fingerprint == b.fingerprint

    def test_options_change_the_fingerprint(self):
        base = build_job({"system": "gas"})
        for options in ({"selective": True}, {"customers": 3},
                        {"max_states": 100}):
            assert build_job({"system": "gas", "options": options}
                             ).fingerprint != base.fingerprint

    def test_kinds_never_collide(self):
        verify = build_job({"system": "bridge"})
        explore = build_job({"kind": "explore", "space": "bridge"})
        assert verify.fingerprint != explore.fingerprint

    def test_command_records_the_equivalent_cli_run(self):
        built = build_job({"system": "gas", "options": {"selective": True}})
        assert built.command == "repro verify gas --customers 2 --selective"


class TestRunJob:
    def test_gas_selective_passes(self):
        record = run_job({"system": "gas", "options": {"selective": True}})
        assert record["verdict"] == "PASS"
        assert record["exit_code"] == 0
        assert record["expected"] is True
        assert record["report"]["kind"] == "verification"

    def test_gas_plain_fails_as_expected(self):
        # The crossed-delivery race is the paper's motivating bug: a
        # FAIL verdict *is* the expected outcome, so the exit code is 0.
        record = run_job({"system": "gas"})
        assert record["verdict"] == "FAIL"
        assert record["exit_code"] == 0
        assert record["expected"] is False

    def test_budget_hit_is_incomplete(self):
        record = run_job({"system": "gas",
                          "options": {"max_states": 10}})
        assert record["verdict"] == "INCOMPLETE"
        assert record["exit_code"] == 2

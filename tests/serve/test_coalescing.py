"""Cross-request coalescing: N identical submissions, one computation.

The headline mechanism of ``repro.serve``.  The ``serve.run=sleep``
failpoint holds the first job's computation open so the coalescing
window is provably live when the duplicates arrive; the proof that only
one computation ran comes from two independent witnesses — the
manager's counters and the jobs' event streams (exactly one stream
carries engine events).
"""

import json
import threading
import time

from repro.serve.client import poll_until_running

SPEC = {"kind": "verify", "system": "gas",
        "options": {"customers": 2, "selective": True}}


def _events(service, job_id):
    path = service.manager.events_path(job_id)
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestCoalescing:
    def test_concurrent_identical_submissions_compute_once(self, service,
                                                           inject):
        inject("serve.run=sleep:1.5")
        first = service.client.submit(SPEC)
        # Only attach duplicates once the primary is provably running.
        poll_until_running(service.client, first["job_id"])
        second = service.client.submit(SPEC)
        assert second["coalesced_with"] == first["job_id"]

        done_first = service.client.wait(first["job_id"], timeout=60)
        done_second = service.client.wait(second["job_id"], timeout=60)
        assert done_first["status"] == done_second["status"] == "done"
        assert done_first["verdict"] == done_second["verdict"] == "PASS"
        assert done_first["exit_code"] == done_second["exit_code"] == 0

        counters = service.manager.counters
        assert counters["submitted"] == 2
        assert counters["computed"] == 1
        assert counters["coalesced"] == 1
        assert counters["cache_hits"] == 0

        # Both clients receive the *same* record: identical reports.
        assert (service.client.report(first["job_id"])
                == service.client.report(second["job_id"]))

        # Event-stream witness: the primary's stream carries the
        # engine's run_started/run_finished; the attached job's stream
        # has only its (coalesced-tagged) lifecycle brackets.
        primary_types = [e["type"] for e in _events(service,
                                                    first["job_id"])]
        attached = _events(service, second["job_id"])
        assert "run_started" in primary_types
        assert "run_finished" in primary_types
        assert [e["type"] for e in attached] == ["job_queued",
                                                 "job_finished"]
        assert all(e["coalesced"] for e in attached)

    def test_many_concurrent_submissions_still_one_computation(
            self, service, inject):
        inject("serve.run=sleep:1.5")
        first = service.client.submit(SPEC)
        poll_until_running(service.client, first["job_id"])
        views = [None] * 4

        def submit(i):
            views[i] = service.client.submit(SPEC)

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        finals = [service.client.wait(v["job_id"], timeout=60)
                  for v in views]
        finals.append(service.client.wait(first["job_id"], timeout=60))
        assert all(v["verdict"] == "PASS" for v in finals)
        assert service.manager.counters["computed"] == 1
        assert service.manager.counters["coalesced"] == 4

    def test_submission_after_completion_is_a_pure_cache_hit(self,
                                                             service):
        first = service.client.submit(SPEC, wait=True, timeout=60)
        assert first["verdict"] == "PASS"
        assert service.manager.counters["computed"] == 1

        t0 = time.monotonic()
        # Warm hits resolve at the manager layer before submit returns:
        # the returned view is already terminal.
        warm = service.manager.submit(SPEC)
        warm_seconds = time.monotonic() - t0
        assert warm["status"] == "done"
        assert warm["cached"] is True
        assert warm["verdict"] == "PASS"
        assert service.manager.counters["computed"] == 1  # unchanged
        assert service.manager.counters["cache_hits"] == 1
        # The acceptance bar is <100ms; a warm hit is one sqlite read
        # plus a fingerprint, typically single-digit milliseconds.
        assert warm_seconds < 0.1

    def test_different_options_do_not_coalesce(self, service, inject):
        inject("serve.run=sleep:1")
        first = service.client.submit(SPEC)
        poll_until_running(service.client, first["job_id"])
        other_spec = {"kind": "verify", "system": "gas",
                      "options": {"customers": 2, "selective": False}}
        other = service.client.submit(other_spec)
        assert other["coalesced_with"] is None
        done = service.client.wait(other["job_id"], timeout=60)
        service.client.wait(first["job_id"], timeout=60)
        assert done["verdict"] == "FAIL"  # plain delivery: expected FAIL
        assert service.manager.counters["computed"] == 2
        assert service.manager.counters["coalesced"] == 0

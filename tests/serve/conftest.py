"""Shared fixtures for the verification-service suite.

``service`` boots the full stack — manager, HTTP daemon, client — on a
free port over a fresh sqlite cache, in *inline* mode (jobs run on the
worker threads: no sandbox processes, so the suite stays fast and the
``serve.run`` failpoint can hold a job deterministically in-process).
"""

import threading
from types import SimpleNamespace

import pytest

from repro.design import failpoints
from repro.serve import (
    JobManager,
    ServeClient,
    VerificationServer,
    serve_until,
)


@pytest.fixture(autouse=True)
def clean_failpoints(monkeypatch):
    monkeypatch.delenv(failpoints.ENV_VAR, raising=False)
    failpoints.reset()
    yield
    failpoints.reset()


@pytest.fixture
def inject(monkeypatch):
    """Set the failpoint spec for this test: ``inject("serve.run=sleep:2")``."""
    def _inject(spec: str) -> None:
        monkeypatch.setenv(failpoints.ENV_VAR, spec)
    return _inject


def start_service(cache_dir, **manager_kwargs):
    """Boot a manager + daemon + client; returns a handle with .close()."""
    manager_kwargs.setdefault("workers", 2)
    manager_kwargs.setdefault("supervised", False)
    manager = JobManager(str(cache_dir), **manager_kwargs)
    server = VerificationServer(("127.0.0.1", 0), manager)
    stop = threading.Event()
    thread = threading.Thread(target=serve_until,
                              args=(server, stop, 0.05), daemon=True)
    thread.start()
    client = ServeClient(f"http://127.0.0.1:{server.server_address[1]}")

    def close():
        stop.set()
        thread.join(timeout=5.0)
        server.server_close()
        manager.close()

    return SimpleNamespace(manager=manager, server=server, client=client,
                           stop=stop, close=close)


@pytest.fixture
def service(tmp_path):
    handle = start_service(tmp_path / "cache")
    yield handle
    handle.close()

"""The HTTP layer: routes, streaming, error mapping, drain."""

import json

import pytest

from repro import __version__
from repro.serve import ServiceError

SPEC = {"kind": "verify", "system": "gas",
        "options": {"customers": 2, "selective": True}}


class TestRoutes:
    def test_health_carries_the_version(self, service):
        health = service.client.health()
        assert health["ok"] is True
        assert health["repro_version"] == __version__

    def test_submit_wait_returns_a_terminal_view(self, service):
        view = service.client.submit(SPEC, wait=True, timeout=60)
        assert view["status"] == "done"
        assert view["verdict"] == "PASS"
        assert view["exit_code"] == 0
        assert view["command"] == ("repro verify gas --customers 2 "
                                   "--selective")

    def test_job_listing_and_single_view_agree(self, service):
        view = service.client.submit(SPEC, wait=True, timeout=60)
        listed = service.client.jobs()
        assert [v["job_id"] for v in listed] == [view["job_id"]]
        assert service.client.job(view["job_id"]) == listed[0]

    def test_report_matches_the_record(self, service):
        view = service.client.submit(SPEC, wait=True, timeout=60)
        report = service.client.report(view["job_id"])
        assert report["kind"] == "verification"
        assert report["repro_version"] == __version__
        assert report["run"]["verdict"] == "PASS"

    def test_event_stream_brackets_engine_events(self, service):
        view = service.client.submit(SPEC, wait=True, timeout=60)
        events = list(service.client.events(view["job_id"]))
        types = [e["type"] for e in events]
        assert types[0] == "job_queued"
        assert types[-1] == "job_finished"
        assert "job_started" in types
        assert "run_started" in types and "run_finished" in types

    def test_snapshot_stream_does_not_follow(self, service):
        view = service.client.submit(SPEC, wait=True, timeout=60)
        snapshot = list(service.client.events(view["job_id"],
                                              follow=False))
        assert snapshot[-1]["type"] == "job_finished"


class TestErrorMapping:
    def test_bad_spec_is_400(self, service):
        with pytest.raises(ServiceError) as err:
            service.client.submit({"kind": "verify", "system": "nonsense"})
        assert err.value.status == 400

    def test_unknown_job_is_404(self, service):
        with pytest.raises(ServiceError) as err:
            service.client.job("jdoesnotexist")
        assert err.value.status == 404

    def test_unknown_route_is_404(self, service):
        with pytest.raises(ServiceError) as err:
            service.client._request("GET", "/v2/everything")
        assert err.value.status == 404

    def test_report_before_completion_is_409(self, service, inject):
        inject("serve.run=sleep:1")
        view = service.client.submit(SPEC)
        with pytest.raises(ServiceError) as err:
            service.client.report(view["job_id"])
        assert err.value.status == 409
        service.client.wait(view["job_id"], timeout=60)

    def test_non_json_body_is_400(self, service):
        from http.client import HTTPConnection
        conn = HTTPConnection(service.client.host, service.client.port,
                              timeout=10)
        try:
            conn.request("POST", "/v1/jobs", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            payload = json.loads(response.read().decode("utf-8"))
            assert "error" in payload
        finally:
            conn.close()


class TestDrain:
    def test_drain_refuses_new_submissions_with_503(self, service):
        summary = service.client.drain(timeout=5)
        assert summary["drained"] is True
        with pytest.raises(ServiceError) as err:
            service.client.submit(SPEC)
        assert err.value.status == 503

    def test_drain_lets_inflight_jobs_finish(self, service, inject):
        inject("serve.run=sleep:1")
        view = service.client.submit(SPEC)
        summary = service.client.drain(timeout=30)
        assert summary["drained"] is True
        assert summary["finished"] == 1
        done = service.client.job(view["job_id"])
        assert done["status"] == "done"
        assert done["verdict"] == "PASS"

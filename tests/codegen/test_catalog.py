"""Tests for the block-catalog generator and its staleness check."""

from repro.codegen.catalog import (
    GENERATED_MARKER,
    catalog_sections,
    main,
    render_catalog,
)
from repro.core.library import catalog


class TestRendering:
    def test_rendering_is_deterministic(self):
        assert render_catalog() == render_catalog()

    def test_starts_with_generated_marker(self):
        assert render_catalog().startswith(GENERATED_MARKER)

    def test_covers_every_catalog_block(self):
        md = render_catalog()
        for spec in catalog():
            assert f"### `{spec.display_name()}`" in md

    def test_each_block_carries_a_promela_model(self):
        md = render_catalog()
        n_specs = sum(len(specs) for _, specs in catalog_sections())
        assert md.count("```promela") == n_specs
        assert "proctype" in md

    def test_sections_match_library_grouping(self):
        titles = [title for title, _ in catalog_sections()]
        assert titles == [
            "Send ports",
            "Receive ports",
            "Channels",
            "Fault injection (channels)",
            "Fault tolerance (ports)",
        ]


class TestCheckMode:
    def test_committed_catalog_is_fresh(self):
        # The CI staleness gate: docs/block_catalog.md must match the
        # current rendering byte for byte.
        assert main(["--check"]) == 0

    def test_check_fails_on_stale_file(self, tmp_path, capsys):
        stale = tmp_path / "catalog.md"
        stale.write_text("# old\n")
        assert main(["--check", "--out", str(stale)]) == 1
        assert "stale" in capsys.readouterr().err

    def test_check_fails_on_missing_file(self, tmp_path, capsys):
        assert main(["--check", "--out", str(tmp_path / "nope.md")]) == 1
        assert "missing" in capsys.readouterr().err

    def test_write_then_check_roundtrips(self, tmp_path, capsys):
        out = tmp_path / "catalog.md"
        assert main(["--out", str(out)]) == 0
        assert main(["--check", "--out", str(out)]) == 0
        assert out.read_text() == render_catalog()

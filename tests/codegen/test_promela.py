"""Tests for the Promela code generator (formalism independence)."""

import pytest

from repro.codegen import system_to_promela
from repro.codegen.promela import PromelaEmitter
from repro.core import (
    AsynBlockingSend,
    AsynNonblockingSend,
    FifoQueue,
    SingleSlotBuffer,
    SynBlockingSend,
)
from repro.psl import (
    Assert,
    Assign,
    Branch,
    Break,
    Do,
    DStep,
    Else,
    EndLabel,
    Guard,
    If,
    ProcessDef,
    Recv,
    Seq,
    Skip,
    System,
    V,
    buffered,
)
from repro.systems.producer_consumer import simple_pair


@pytest.fixture
def pair_system():
    return simple_pair(SynBlockingSend(), SingleSlotBuffer()).to_system()


class TestTopLevel:
    def test_mtype_declared(self, pair_system):
        src = system_to_promela(pair_system)
        assert "mtype = {" in src
        for sig in ("SEND_SUCC", "IN_OK", "RECV_OK", "OUT_FAIL"):
            assert sig in src

    def test_globals_declared(self, pair_system):
        src = system_to_promela(pair_system)
        assert "int acked_0 = 0;" in src

    def test_channels_declared_with_capacity(self, pair_system):
        src = system_to_promela(pair_system)
        assert "chan link_snd_data = [0] of" in src
        assert "chan link_snd_sig = [" in src

    def test_proctypes_emitted_once_per_definition(self, pair_system):
        src = system_to_promela(pair_system)
        assert src.count("proctype SynBlSendPort(") == 1
        assert src.count("proctype single_slot_buffer(") == 1

    def test_init_runs_every_instance(self, pair_system):
        src = system_to_promela(pair_system)
        assert "init {" in src
        assert src.count("run ") == len(pair_system.instances)
        assert "/* Producer0 */" in src

    def test_channel_params_passed(self, pair_system):
        src = system_to_promela(pair_system)
        assert "run SynBlSendPort(link_Producer0_out_sig" in src


class TestPaperModelShape:
    """The emitted block models must contain the paper's key lines."""

    def test_syn_bl_send_port_protocol(self):
        src = PromelaEmitter(
            simple_pair(SynBlockingSend(), SingleSlotBuffer()).to_system()
        ).emit()
        # Figure 6 landmarks
        assert "comp_data?m_data" in src
        assert "chan_data!m_data,_pid" in src
        assert "chan_sig??IN_OK,eval(_pid)" in src
        assert "chan_sig??RECV_OK,eval(_pid)" in src
        assert "comp_sig!SEND_SUCC,-1" in src

    def test_asyn_nb_port_confirms_before_forwarding(self):
        src = PromelaEmitter(
            simple_pair(AsynNonblockingSend(), SingleSlotBuffer()).to_system()
        ).emit()
        confirm = src.index("comp_sig!SEND_SUCC,-1")
        forward = src.index("chan_data!m_data", src.index("AsynNbSendPort"))
        assert confirm < forward

    def test_single_slot_buffer_shape(self, pair_system):
        src = system_to_promela(pair_system)
        # Figure 11 landmarks
        assert "recv_sig!OUT_OK,r_sender" in src
        assert "sender_sig!RECV_OK,b_sender" in src
        assert "sender_sig!IN_FAIL,m_sender" in src
        assert "buffer_empty = 0" in src


class TestStatementForms:
    def emit_one(self, body, chan_decls=(), local_vars=None):
        s = System("one")
        chans = {}
        for decl in chan_decls:
            chans[decl.name] = s.add_channel(decl)
        d = ProcessDef("proc", body, chan_params=tuple(chans),
                       local_vars=local_vars or {})
        s.spawn(d, "i", chans=chans)
        return system_to_promela(s)

    def test_if_fi(self):
        src = self.emit_one(If(Branch(Guard(V("g") == 1)), Branch(Else())),
                            local_vars={"g": 0})
        assert ":: ((g == 1));" in src
        assert ":: else" in src
        assert "fi;" in src

    def test_do_od_with_break(self):
        src = self.emit_one(Do(Branch(Guard(V("g") == 0), Break())),
                            local_vars={"g": 0})
        assert "do" in src and "od;" in src
        assert "break;" in src

    def test_dstep(self):
        src = self.emit_one(DStep([Assign("x", 1), Assert(V("x") == 1)]),
                            local_vars={"x": 0})
        assert "d_step {" in src
        assert "assert((x == 1));" in src

    def test_skip_and_assert(self):
        src = self.emit_one(Seq([Skip(), Assert(V("x") == 0)]),
                            local_vars={"x": 0})
        assert "skip;" in src

    def test_end_label(self):
        src = self.emit_one(Seq([EndLabel(), Skip()]))
        assert "end1:" in src

    def test_matching_receive_syntax(self):
        src = self.emit_one(
            Recv("c", [1, "x"], matching=True),
            chan_decls=[buffered("c", 1, "a", "b")],
            local_vars={"x": 0},
        )
        assert "c??1,x;" in src

    def test_peek_syntax(self):
        src = self.emit_one(
            Recv("c", ["x"], peek=True),
            chan_decls=[buffered("c", 1, "a")],
            local_vars={"x": 0},
        )
        assert "c?<x>;" in src

    def test_guarded_receive_emits_atomic(self):
        src = self.emit_one(
            Recv("c", ["x"], when=(V("n") > 0)),
            chan_decls=[buffered("c", 1, "a")],
            local_vars={"x": 0, "n": 0},
        )
        assert "atomic {" in src
        assert "((n > 0)) -> c?x;" in src

    def test_value_params_in_run(self):
        s = System("p")
        d = ProcessDef("withparam", Assign("x", V("n")), params=("n",),
                       local_vars={"x": 0})
        s.spawn(d, "i", args={"n": 42})
        src = system_to_promela(s)
        assert "proctype withparam(int n)" in src
        assert "run withparam(42);" in src

    def test_comments_carried(self):
        src = self.emit_one(Assign("x", 1, comment="stores the flag"),
                            local_vars={"x": 0})
        assert "/* stores the flag */" in src


class TestWholeSystemsEmit:
    @pytest.mark.parametrize("builder", [
        lambda: simple_pair(SynBlockingSend(), SingleSlotBuffer()),
        lambda: simple_pair(AsynBlockingSend(), FifoQueue(size=2)),
    ])
    def test_emit_does_not_crash_and_is_substantial(self, builder):
        src = system_to_promela(builder().to_system())
        assert len(src.splitlines()) > 60

    def test_fused_system_emits(self):
        src = system_to_promela(
            simple_pair(SynBlockingSend(), FifoQueue(size=2))
            .to_system(fused=True)
        )
        assert "proctype fused_fifo_queue_1s1r" in src

    def test_bridge_emits(self):
        from repro.systems.bridge import BridgeConfig, build_exactly_n_bridge
        cfg = BridgeConfig(cars_per_side=1, n_per_turn=1, trips=1)
        src = system_to_promela(build_exactly_n_bridge(cfg).to_system())
        assert "proctype BlueController" in src
        assert "proctype fifo_queue_1" in src


class TestBlockToPromela:
    def test_fault_channel_emits_proctype(self):
        from repro.codegen import block_to_promela
        from repro.core import LossyChannel
        out = block_to_promela(LossyChannel())
        assert "proctype lossy_channel_1" in out
        assert "mtype" in out
        assert "loses the message" in out  # the fault transition's comment

    def test_resilient_port_emits_proctype(self):
        from repro.codegen import block_to_promela
        from repro.core import RetrySend
        out = block_to_promela(RetrySend(attempts=3))
        assert "proctype RetrySendPort3" in out

    def test_every_catalog_block_emits(self):
        from repro.codegen import block_to_promela
        from repro.core import catalog
        for spec in catalog():
            assert "proctype" in block_to_promela(spec)

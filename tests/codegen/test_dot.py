"""Tests for the DOT/Graphviz emitters."""

import pytest

from repro.codegen.dot import architecture_to_dot, automaton_to_dot
from repro.core import AsynBlockingSend, SingleSlotBuffer, SynBlockingSend
from repro.systems.bridge import BridgeConfig, build_exactly_n_bridge
from repro.systems.producer_consumer import simple_pair


class TestAutomatonDot:
    def test_block_automaton_renders(self):
        dot = automaton_to_dot(SynBlockingSend().build_def())
        assert dot.startswith('digraph "SynBlSendPort"')
        assert "__start" in dot
        assert "doublecircle" in dot  # the end-labeled idle location

    def test_edges_labeled_with_ops(self):
        dot = automaton_to_dot(SynBlockingSend().build_def())
        assert "comp_data?m_data" in dot

    def test_long_labels_truncated(self):
        dot = automaton_to_dot(SingleSlotBuffer().build_def(), max_label=15)
        for line in dot.splitlines():
            if 'label="' in line and "->" in line:
                label = line.split('label="')[1].split('"')[0]
                assert len(label) <= 15

    def test_initial_location_marked(self):
        d = SynBlockingSend().build_def()
        dot = automaton_to_dot(d)
        assert f"__start -> L{d.automaton.initial};" in dot

    def test_balanced_braces(self):
        dot = automaton_to_dot(AsynBlockingSend().build_def())
        assert dot.count("{") == dot.count("}")


class TestArchitectureDot:
    def test_pair_topology(self):
        dot = architecture_to_dot(
            simple_pair(SynBlockingSend(), SingleSlotBuffer()))
        assert '"Producer0" [shape=box' in dot
        assert '"Consumer0" [shape=box' in dot
        assert '"link" [shape=ellipse' in dot
        assert '"Producer0" -> "link"' in dot
        assert '"link" -> "Consumer0"' in dot

    def test_port_kinds_on_edges(self):
        dot = architecture_to_dot(
            simple_pair(SynBlockingSend(), SingleSlotBuffer()))
        assert "syn_blocking_send" in dot
        assert "blocking_receive(remove)" in dot

    def test_channel_kind_in_connector_label(self):
        dot = architecture_to_dot(
            simple_pair(SynBlockingSend(), SingleSlotBuffer()))
        assert "single_slot_buffer" in dot

    def test_bridge_topology(self):
        cfg = BridgeConfig(1, 1, trips=1)
        dot = architecture_to_dot(build_exactly_n_bridge(cfg))
        for node in ("BlueController", "RedController", "BlueCar1",
                     "BlueEnter", "RedExit"):
            assert node in dot

    def test_invalid_architecture_rejected(self):
        from repro.core import Architecture, Component, SEND
        from repro.core.interface import send_message
        arch = Architecture("broken")
        arch.add_component(Component("A", ports={"out": SEND},
                                     body=send_message("out", 1)))
        with pytest.raises(Exception):
            architecture_to_dot(arch)  # dangling port

"""Documentation health checks, run by the CI ``docs`` job.

Three checks, all dependency-free:

1. **Links** — every relative Markdown link in ``README.md`` and
   ``docs/*.md`` must point at an existing file (external ``http(s)``,
   ``mailto:`` and pure-anchor links are skipped; anchors on relative
   links are checked for file existence only).
2. **Doctests** — every module under ``src/repro`` whose source
   contains a ``>>>`` prompt is run through :mod:`doctest`, so the
   executable examples in docstrings stay true.
3. **Catalog staleness** — ``docs/block_catalog.md`` must match the
   current rendering of ``python -m repro.codegen.catalog``.

Run locally::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import doctest
import importlib
import re
import sys
from pathlib import Path
from typing import List

ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links: ``[text](target)``.  Images share the syntax.
_LINK_RE = re.compile(r"\[[^\]\[]*\]\(([^)\s]+)\)")

#: Schemes that point outside the repo and are not checked.
_EXTERNAL = ("http://", "https://", "mailto:")


def _markdown_files() -> List[Path]:
    files = [ROOT / "README.md"]
    files += sorted((ROOT / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def check_links() -> List[str]:
    """Relative links in the docs must resolve to real files."""
    errors = []
    for md in _markdown_files():
        text = md.read_text(encoding="utf-8")
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                rel = md.relative_to(ROOT)
                errors.append(f"{rel}: broken link -> {target}")
    return errors


def _doctest_modules() -> List[str]:
    """Dotted names of repro modules containing doctest prompts."""
    names = []
    src = ROOT / "src"
    for py in sorted((src / "repro").rglob("*.py")):
        if ">>>" not in py.read_text(encoding="utf-8"):
            continue
        rel = py.relative_to(src).with_suffix("")
        parts = list(rel.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        names.append(".".join(parts))
    return names


def check_doctests() -> List[str]:
    """Docstring examples must execute as written."""
    errors = []
    for name in _doctest_modules():
        module = importlib.import_module(name)
        failed, attempted = doctest.testmod(module, verbose=False)
        if attempted == 0:
            errors.append(f"{name}: has '>>>' but doctest found no "
                          f"examples (malformed prompt?)")
        elif failed:
            errors.append(f"{name}: {failed}/{attempted} doctests failed")
    return errors


def check_catalog() -> List[str]:
    """docs/block_catalog.md must match the generator's output."""
    from repro.codegen.catalog import render_catalog
    path = ROOT / "docs" / "block_catalog.md"
    if not path.exists():
        return ["docs/block_catalog.md: missing — run "
                "`python -m repro.codegen.catalog`"]
    if path.read_text(encoding="utf-8") != render_catalog():
        return ["docs/block_catalog.md: stale — run "
                "`python -m repro.codegen.catalog`"]
    return []


def main() -> int:
    checks = [
        ("links", check_links),
        ("doctests", check_doctests),
        ("catalog", check_catalog),
    ]
    failed = False
    for name, check in checks:
        errors = check()
        if errors:
            failed = True
            for err in errors:
                print(f"[{name}] {err}", file=sys.stderr)
        else:
            print(f"[{name}] ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

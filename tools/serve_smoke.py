#!/usr/bin/env python3
"""End-to-end smoke test of the verification service (CI gate).

Exercises the whole serve stack the way a user would, from the shell
out — daemon subprocess, HTTP submissions, live event stream, report
parity with the local CLI, coalescing arithmetic, warm-hit latency,
and the SIGTERM drain contract:

1.  start ``repro serve`` as a subprocess on a free port;
2.  submit the gas-station verify job over HTTP and stream its NDJSON
    events to completion (asserting the lifecycle brackets the live
    engine events);
3.  fetch the job's report and compare it against a direct
    ``repro verify gas --report`` run of the same design —
    **byte-for-byte** on canonical JSON after normalizing the volatile
    fields (wall-clock timings, the recorded command line, events);
4.  submit the same job twice concurrently against a held worker
    (``serve.run=sleep``) and assert exactly one computation;
5.  re-submit after completion and assert a warm cache hit under
    100 ms;
6.  SIGTERM the daemon and assert a clean drain (exit code 0).

Run it locally::

    PYTHONPATH=src python tools/serve_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import ServeClient  # noqa: E402
from repro.serve.client import poll_until_running  # noqa: E402

PORT = int(os.environ.get("SERVE_SMOKE_PORT", "7497"))
URL = f"http://127.0.0.1:{PORT}"

#: Report fields that legitimately differ between two runs of the same
#: verification: wall-clock timings, the invocation line, and the event
#: timeline (the served report has no collected events).
VOLATILE_KEYS = frozenset({"command", "events"})
VOLATILE_LEAVES = frozenset({"elapsed_seconds", "states_per_second",
                             "seconds", "compile_seconds",
                             "elaboration_seconds"})


def normalize(node):
    if isinstance(node, dict):
        return {key: (None if key in VOLATILE_LEAVES else normalize(value))
                for key, value in node.items()
                if key not in VOLATILE_KEYS}
    if isinstance(node, list):
        return [normalize(item) for item in node]
    return node


def canonical(payload) -> bytes:
    return json.dumps(normalize(payload), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)
    print(f"ok: {message}")


def wait_for_daemon(client, seconds=30.0):
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        try:
            if client.health().get("ok"):
                return
        except OSError:
            time.sleep(0.1)
    raise SystemExit("daemon never became healthy")


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="serve-smoke-")
    cache_dir = os.path.join(workdir, "cache")
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    # Hold computed jobs ~1.5s so the coalescing window is provably
    # open while the duplicate submission arrives.
    env["REPRO_FAILPOINTS"] = "serve.run=sleep:1.5"
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", str(PORT),
         "--cache-dir", cache_dir, "--workers", "2", "--inline"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    client = ServeClient(URL)
    try:
        wait_for_daemon(client)
        spec = {"kind": "verify", "system": "gas",
                "options": {"customers": 2, "selective": True}}

        # -- coalescing: two concurrent identical submissions ----------
        first = client.submit(spec)
        poll_until_running(client, first["job_id"])
        second = client.submit(spec)
        check(second["coalesced_with"] == first["job_id"],
              "second identical submission coalesced onto the first")

        # -- live stream: events arrive while the job is running -------
        streamed = []
        streamer = threading.Thread(
            target=lambda: streamed.extend(client.events(first["job_id"])),
            daemon=True)
        streamer.start()
        done_first = client.wait(first["job_id"], timeout=120)
        done_second = client.wait(second["job_id"], timeout=120)
        streamer.join(timeout=30)
        types = [event["type"] for event in streamed]
        check(types[0] == "job_queued" and types[-1] == "job_finished",
              "stream is bracketed by lifecycle events")
        check("run_started" in types and "run_finished" in types,
              "stream carries the engine's events")

        check(done_first["verdict"] == "PASS"
              and done_second["verdict"] == "PASS",
              "both submissions received the PASS verdict")
        check(done_first["exit_code"] == 0 and done_second["exit_code"] == 0,
              "both submissions carry exit code 0")
        stats = client.stats()["counters"]
        check(stats["computed"] == 1 and stats["coalesced"] == 1,
              f"exactly one computation ran (counters: {stats})")
        check(client.report(first["job_id"])
              == client.report(second["job_id"]),
              "coalesced clients share one identical report")

        # -- warm hit: terminal immediately, fast ----------------------
        t0 = time.monotonic()
        warm = client.submit(spec)
        warm_ms = (time.monotonic() - t0) * 1000.0
        check(warm["status"] == "done" and warm["cached"],
              f"post-completion submission is a pure cache hit "
              f"({warm_ms:.1f} ms)")
        check(warm_ms < 100.0, f"warm submission under 100 ms "
              f"(measured {warm_ms:.1f} ms)")
        check(client.stats()["counters"]["computed"] == 1,
              "the warm hit computed nothing")

        # -- report parity with the direct CLI run ---------------------
        served_report = client.report(first["job_id"])
        local_path = os.path.join(workdir, "local-report.json")
        direct = subprocess.run(
            [sys.executable, "-m", "repro.cli", "verify", "gas",
             "--customers", "2", "--selective", "--report", local_path],
            env={**os.environ, "PYTHONPATH": "src"},
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        check(direct.returncode == 0,
              f"direct CLI run exits 0 (got {direct.returncode}: "
              f"{direct.stdout[-300:]})")
        with open(local_path, encoding="utf-8") as fh:
            local_report = json.load(fh)
        check(canonical(served_report) == canonical(local_report),
              "served report is byte-identical to the direct CLI run's "
              "(canonical JSON, volatile timing fields normalized)")

        # -- graceful drain on SIGTERM ---------------------------------
        daemon.send_signal(signal.SIGTERM)
        try:
            exit_code = daemon.wait(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()
            raise SystemExit("daemon did not drain within 60s")
        output = daemon.stdout.read()
        check(exit_code == 0, f"daemon drained cleanly with exit 0 "
              f"(got {exit_code}; output: {output[-300:]})")
        check("drained cleanly" in output,
              "daemon reported the clean drain")
        print("serve smoke: all checks passed")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())

"""Perf-regression gate for the compiled engine, run by CI.

Reruns the ``multi_property_reuse`` workload (the headline engine
benchmark: five safety/goal/count checks over the fused two-customer
gas station) and fails if measured states/second drops more than
``TOLERANCE`` below the committed ``BENCH_engine.json`` record.

The committed record is the floor, not a same-machine baseline: CI
runners are usually *faster* than the container that produced the
record, so an honest 30% margin on top of the recorded throughput
catches real regressions (a compiler bypass, an accidental tree-walk
fallback, a quadratic frontier) without flaking on scheduler noise.
The measurement takes the best of ``ROUNDS`` runs for the same reason.

Run locally::

    PYTHONPATH=src python tools/check_perf.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = ROOT / "BENCH_engine.json"

#: Fractional drop below the committed states/second that fails the gate.
TOLERANCE = 0.30

#: Best-of-N wall-clock: absorbs one bad scheduling round.
ROUNDS = 3


def _committed_floor() -> float:
    data = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    workload = data["workloads"]["multi_property_reuse"]
    recorded = workload.get("states_per_second")
    if recorded is None:
        # Older records lack the explicit field; derive it.
        recorded = workload["states"] / workload["shared_seconds"]
    return recorded * (1.0 - TOLERANCE)


def _measure_states_per_second() -> float:
    sys.path.insert(0, str(ROOT / "benchmarks"))
    sys.path.insert(0, str(ROOT / "src"))
    from test_engine import _gas_checks, _gas_system

    from repro.mc import StateGraph

    checks = _gas_checks()
    best = None
    for _ in range(ROUNDS):
        graph = StateGraph(_gas_system())
        t0 = time.perf_counter()
        results = [check(graph) for check in checks]
        elapsed = time.perf_counter() - t0
        states = len(graph.store)
        assert all(r.ok for r in results[:3]), "benchmark workload regressed"
        rate = states / elapsed
        best = rate if best is None else max(best, rate)
    return best


def main() -> int:
    if not BENCH_PATH.exists():
        print("[perf] BENCH_engine.json missing — run "
              "`pytest benchmarks/test_engine.py --benchmark-disable`",
              file=sys.stderr)
        return 1
    floor = _committed_floor()
    measured = _measure_states_per_second()
    verdict = "ok" if measured >= floor else "REGRESSION"
    print(f"[perf] multi_property_reuse: {measured:,.0f} states/s "
          f"(floor {floor:,.0f} = committed - {TOLERANCE:.0%}) — {verdict}")
    if measured < floor:
        print("[perf] throughput fell below the committed record; if this "
              "is an intentional trade-off, regenerate BENCH_engine.json "
              "and commit it with the change", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Quickstart: compose a connector, verify, swap a block, re-verify.

This walks the PnP workflow end to end on a small producer/consumer
system:

1. design an architecture whose connector is composed from library
   building blocks;
2. run design-time verification (deadlock freedom + an invariant);
3. discover a problem caused by the interaction semantics;
4. fix it plug-and-play style — swap one building block, touch no
   component — and re-verify, reusing every cached model.

Run:  python examples/quickstart.py
"""

from repro.core import (
    Architecture,
    AsynNonblockingSend,
    BlockingReceive,
    Component,
    ModelLibrary,
    RECEIVE,
    SEND,
    SingleSlotBuffer,
    SynBlockingSend,
    receive_message,
    send_message,
    verify_safety,
)
from repro.mc import global_prop
from repro.psl.expr import V
from repro.psl.stmt import Assign, Branch, Break, Do, DStep, Else, Guard, If, Seq

K = 2  # messages the producer must deliver


def build_architecture() -> Architecture:
    """A producer that must deliver K messages to a consumer."""
    arch = Architecture("quickstart")
    arch.add_global("sent", 0)
    arch.add_global("received", 0)

    producer = Component(
        "Producer",
        ports={"out": SEND},
        body=Seq([
            Do(
                Branch(Guard(V("sent") < K),
                       Assign("sent", V("sent") + 1),
                       send_message("out", V("sent"))),
                Branch(Guard(V("sent") == K), Break()),
            ),
        ]),
    )
    consumer = Component(
        "Consumer",
        ports={"inp": RECEIVE},
        body=Seq([
            Do(
                Branch(Guard(V("received") < K),
                       receive_message("inp", into="msg"),
                       If(Branch(Guard(V("recv_status") == "RECV_SUCC"),
                                 Assign("received", V("received") + 1)),
                          Branch(Else()))),
                Branch(Guard(V("received") == K), Break()),
            ),
        ]),
        local_vars={"msg": 0},
    )
    arch.add_component(producer)
    arch.add_component(consumer)

    # Initial connector choice: fire-and-forget sends into a 1-slot buffer.
    link = arch.add_connector("link", SingleSlotBuffer())
    link.attach_sender(producer, "out", AsynNonblockingSend())
    link.attach_receiver(consumer, "inp", BlockingReceive())
    return arch


def main() -> None:
    from repro.core import verify_ltl

    library = ModelLibrary()  # shared across design iterations
    arch = build_architecture()
    print(arch.describe())
    print()

    # The correctness requirement: on every complete execution, all K
    # messages are eventually received.  A fire-and-forget send port can
    # silently lose a message against a full buffer, leaving the consumer
    # waiting forever — an execution on which `F delivered` fails.
    delivered = global_prop(
        "delivered",
        lambda v: v.global_("received") == K,
        "received",
    )

    print("=== iteration 1: asynchronous nonblocking sends ===")
    report = verify_ltl(arch, "F delivered", {"delivered": delivered},
                        library=library)
    print(report.summary())
    if not report.ok:
        print("\ncounterexample (message loss; last steps before the hang):")
        print(report.result.trace.pretty(max_steps=12))

    print("\n=== iteration 2: swap to synchronous blocking sends ===")
    # The fix is a connector-only change; components stay untouched.
    arch.swap_send_port("link", "Producer", SynBlockingSend())
    report = verify_ltl(arch, "F delivered", {"delivered": delivered},
                        library=library)
    print(report.summary())
    assert report.ok, "the synchronous design should verify"
    print(f"\nmodel reuse on re-verification: {report.models_reused} reused, "
          f"{report.models_built} built")

    # Safety checks (deadlock freedom) also pass on the fixed design:
    print(verify_safety(arch, library=library).summary())


if __name__ == "__main__":
    main()

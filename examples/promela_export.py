#!/usr/bin/env python3
"""Export a composed architecture as Promela source (paper Figures 5-11).

The paper models every building block in Promela; this reproduction
defines them once in PSL and can pretty-print any composed system back
into Promela, demonstrating the formalism-independence the paper claims
(they also re-encoded the blocks in FSP for LTSA).

The exported model for the Figure 2(a) connector shows the same
structural landmarks as the paper's figures: the ``SynChan`` pairs, the
pid-tagged signal protocol, and the port/channel/component proctypes.

Run:  python examples/promela_export.py [output.pml]
"""

import sys

from repro.codegen import system_to_promela
from repro.core import AsynBlockingSend, SingleSlotBuffer
from repro.systems.producer_consumer import simple_pair


def main() -> None:
    # Figure 2(a): AsynBlockingSend + single-slot buffer + BlockingReceive.
    arch = simple_pair(AsynBlockingSend(), SingleSlotBuffer(), messages=1)
    source = system_to_promela(arch.to_system())

    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as fh:
            fh.write(source + "\n")
        print(f"wrote {len(source.splitlines())} lines to {sys.argv[1]}")
    else:
        print(source)

    # Point out the paper's landmarks in the generated text.
    landmarks = [
        "proctype AsynBlSendPort",
        "proctype BlRecvPort",
        "proctype single_slot_buffer",
        "chan_sig??IN_OK,eval(_pid)",
        "comp_sig!SEND_SUCC,-1",
        "sender_sig!RECV_OK,b_sender",
    ]
    print("\n/* landmark check:", file=sys.stderr)
    for landmark in landmarks:
        status = "found" if landmark in source else "MISSING"
        print(f"   {status:8s} {landmark}", file=sys.stderr)
    print("*/", file=sys.stderr)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Publish/subscribe through the same standard interfaces (paper §6).

The paper argues its standard component interfaces are not specific to
message passing — "these interfaces can be used for other kinds of
interactions such as RPC and publish/subscribe".  This example builds a
two-subscriber event system on the :class:`EventPool` channel block and
verifies three characteristic pub/sub properties:

* **fan-out** — every subscriber can receive every event;
* **decoupling** — the publisher finishes regardless of whether anyone
  consumes (reachable state: publisher done, nothing received);
* **best-effort delivery** — a subscriber with a full event store
  misses events rather than blocking the publisher.

Run:  python examples/publish_subscribe.py
"""

from repro.core import verify_safety
from repro.mc import check_safety, find_state, global_prop, prop
from repro.systems.pubsub import build_pubsub


def main() -> None:
    arch = build_pubsub(publishers=1, subscribers=2, events_each=1, depth=2)
    print(arch.describe())
    print()

    print("=== safety: no deadlock, assertions hold ===")
    report = verify_safety(arch)
    print(report.summary())

    system = arch.to_system()

    print("\n=== fan-out: both subscribers can get the event ===")
    fanout = prop(
        "both_received",
        lambda v: v.global_("received_0") == 1 and v.global_("received_1") == 1,
    )
    trace = find_state(system, fanout)
    print("reachable!" if trace is not None else "NOT reachable (bug)")
    assert trace is not None

    print("\n=== decoupling: publisher can finish before any delivery ===")
    decoupled = prop(
        "published_unconsumed",
        lambda v: (v.global_("published_0") == 1
                   and v.global_("received_0") == 0
                   and v.global_("received_1") == 0),
    )
    trace = find_state(system, decoupled)
    print("reachable!" if trace is not None else "NOT reachable (bug)")
    assert trace is not None

    print("\n=== best effort: a full store misses events silently ===")
    tight = build_pubsub(publishers=1, subscribers=1, events_each=2, depth=1)
    missed = prop(
        "missed_event",
        lambda v: (v.global_("published_0") == 2
                   and v.chan_len("events.store0") == 1
                   and v.global_("received_0") == 0),
    )
    trace = find_state(tight.to_system(), missed)
    print("event loss state reachable!" if trace is not None else "no loss")
    assert trace is not None
    print("\n(the publisher was never blocked or notified — classic "
          "best-effort pub/sub, captured by block composition alone)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The gas station: choosing *receive* semantics by verification.

The automated gas station is the classic benchmark of the paper's
authors' research group, so it makes a fitting demonstration of the
block the other examples haven't exercised: **selective receive**.

Customers prepay the operator; the operator activates the pump; the
pump's deliveries to all customers share one connector.  With plain
receives, whoever asks first takes whatever delivery is at the head of
the queue — including somebody else's gas.  Verification catches the
crossed delivery as an assertion failure; switching the customers to
selective (tag-matching) receive requests makes the design verify.

Run:  python examples/gas_station.py
"""

from repro.core import explain_trace, verify_safety
from repro.mc import find_state
from repro.systems.gas_station import all_fueled_prop, build_gas_station


def main() -> None:
    print("=== plain receives: first-come, first-served deliveries ===")
    arch = build_gas_station(customers=2, selective_delivery=False)
    print(arch.describe())
    report = verify_safety(arch, check_deadlock=True, fused=True)
    print()
    print(report.summary())
    assert not report.ok

    system = arch.to_system(fused=True)
    print("\nthe crossed delivery, step by step (tail of the trace):")
    trace = report.result.trace
    print(explain_trace(trace, arch, system, max_steps=14))

    print("\n=== selective receives: each customer matches its own tag ===")
    arch = build_gas_station(customers=2, selective_delivery=True)
    report = verify_safety(arch, check_deadlock=True, fused=True)
    print(report.summary())
    assert report.ok

    witness = find_state(arch.to_system(fused=True), all_fueled_prop(2))
    print(f"\nboth customers fueled (witness in {len(witness)} steps)")


if __name__ == "__main__":
    main()

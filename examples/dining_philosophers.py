#!/usr/bin/env python3
"""Dining philosophers: a component-level bug caught by verification.

The bridge example showed a *connector* bug fixed by swapping blocks.
This example shows the dual: the connectors are fine, and the flaw is
in a *component's* protocol.  Three philosophers share three forks
through ordinary request/release connectors; when everyone grabs the
left fork first, verification finds the textbook circular-wait
deadlock, with every philosopher listed as blocked.  Flipping one
philosopher's acquisition order (a component change; the connectors are
untouched) proves the system deadlock-free.

Run:  python examples/dining_philosophers.py
"""

from repro.core import diagnose_deadlock, explain_trace, verify_safety
from repro.mc import find_state
from repro.systems.dining import build_dining, meals_prop


def main() -> None:
    print("=== symmetric protocol: everyone left-fork-first ===")
    arch = build_dining(philosophers=3, meals_each=1, symmetric=True)
    print(arch.describe())
    report = verify_safety(arch, check_deadlock=True, fused=True)
    print()
    print(report.summary())
    assert not report.ok

    system = arch.to_system(fused=True)
    print("\nwhat the deadlock looks like (last steps):")
    print(explain_trace(report.result.trace, arch, system, max_steps=12))
    print("\ndiagnosis:")
    for hint in diagnose_deadlock(report.result, arch, system):
        print(f"  - {hint}")

    print("\n=== asymmetric fix: the last philosopher goes right-first ===")
    arch = build_dining(philosophers=2, meals_each=1, symmetric=False)
    report = verify_safety(arch, check_deadlock=True, fused=True)
    print(report.summary())
    assert report.ok

    trace = find_state(arch.to_system(fused=True), meals_prop(2))
    print(f"\nand everyone eats: all-meals state reachable in "
          f"{len(trace)} steps")


if __name__ == "__main__":
    main()

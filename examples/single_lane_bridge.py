#!/usr/bin/env python3
"""The single-lane bridge case study (paper Section 4, Figures 12-14).

Reproduces the paper's full design narrative:

1. **Figure 13 (initial design)** — cars request bridge entry through
   *asynchronous* blocking send ports.  A car then drives onto the
   bridge as soon as its request is buffered, before any grant, and
   verification finds two opposing cars on the bridge.
2. **The fix** — swap the enter-request send ports to *synchronous*
   blocking, a connector-only change.  Verification now passes, and the
   model library shows every component model was reused.
3. **Figure 14 (at-most-N design)** — controllers yield idle turns via
   two new controller-to-controller connectors; verification confirms
   the more efficient design is still safe.

Run:  python examples/single_lane_bridge.py
"""

from repro.core import DesignIterationLog, explain_trace
from repro.systems.bridge import (
    BridgeConfig,
    bridge_safety_prop,
    build_at_most_n_bridge,
    build_exactly_n_bridge,
    fix_exactly_n_bridge,
)


def main() -> None:
    config = BridgeConfig(cars_per_side=1, n_per_turn=1, trips=1)
    safety = bridge_safety_prop()
    log = DesignIterationLog()

    print("=== Figure 13: exactly-N-cars-per-turn, initial design ===")
    arch = build_exactly_n_bridge(config)
    print(arch.describe())
    record = log.run("Fig13 initial (async enter sends)", arch,
                     invariants=[safety], fused=True)
    print()
    print(record.report.summary())
    trace = record.report.result.trace
    if trace is not None:
        print("\nhow the crash happens (architectural trace):")
        print(explain_trace(trace, arch, arch.to_system(log.library, fused=True),
                            max_steps=18))

    print("\n=== The plug-and-play fix: synchronous enter-request sends ===")
    fix_exactly_n_bridge(arch)  # swaps 2 send ports; zero component changes
    record = log.run("Fig13 fixed (sync enter sends)", arch,
                     invariants=[safety], fused=True)
    print(record.report.summary())

    print("\n=== Figure 14: at-most-N-cars-per-turn ===")
    arch14 = build_at_most_n_bridge(config)
    record = log.run("Fig14 at-most-N", arch14, invariants=[safety],
                     fused=True)
    print(record.report.summary())

    print("\n=== Design-iteration reuse accounting (the paper's cost claim) ===")
    print(log.table())
    print(
        f"\ncomponent models rebuilt by the fix iteration: "
        f"{log.iterations[1].component_models_built()} "
        f"(the fix touched only connectors; Figure 14 is a new design with "
        f"genuinely new components)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Sweep the connector design space and tabulate verification verdicts.

The PnP approach exists to make "experimenting with alternative design
choices of interaction semantics" cheap.  This example takes one fixed
pair of components (a producer that must deliver 2 messages and a
consumer that expects them) and verifies *every* send-port/channel
combination from the library against three requirements:

* no deadlock / invalid end state;
* no assertion failures;
* completion — every execution eventually delivers both messages (LTL).

The combinations are declared as a :class:`repro.design.DesignSpace`
(one channel axis, one send-port axis) and executed by
:func:`repro.design.explore`, which shares one model library across all
20 verification runs — the sweep costs a handful of block models plus
two component models, the paper's reuse claim working at
design-exploration scale.  Pass a ``cache=ResultCache(dir)`` to
``explore`` and a re-run of this script would serve every verdict from
disk; the ``repro explore`` command wires that up.

Run:  python examples/design_space_exploration.py
"""

import time

from repro.core import (
    AsynBlockingSend,
    AsynCheckingSend,
    AsynNonblockingSend,
    DroppingBuffer,
    FifoQueue,
    ModelLibrary,
    SingleSlotBuffer,
    SynBlockingSend,
    SynCheckingSend,
)
from repro.design import ChannelAxis, DesignSpace, SendPortAxis, explore
from repro.mc import global_prop
from repro.systems.producer_consumer import simple_pair

SEND_PORTS = [
    AsynNonblockingSend(),
    AsynBlockingSend(),
    AsynCheckingSend(),
    SynBlockingSend(),
    SynCheckingSend(),
]
CHANNELS = [
    SingleSlotBuffer(),
    FifoQueue(size=2),
    DroppingBuffer(size=1),
    DroppingBuffer(size=2),
]

K = 2


def main() -> None:
    library = ModelLibrary()
    delivered = global_prop(
        "delivered", lambda v: v.global_("consumed_0") == K, "consumed_0")

    # ONE architecture, revised plug-and-play style for every combination:
    # the components are designed once and their models built once.  The
    # channel axis is declared first, so it varies slowest (channel outer
    # loop, send port inner), matching the table below.
    space = DesignSpace(
        "producer_consumer",
        simple_pair(SEND_PORTS[0], CHANNELS[0], messages=K),
        axes=[
            ChannelAxis("link", CHANNELS),
            SendPortAxis("link", SEND_PORTS, component="Producer0"),
        ],
        fused=True,
    )

    header = f"{'send port':26s}{'channel':22s}{'safety':10s}{'completion':12s}{'states':>8s}"
    print(header)
    print("-" * len(header))
    t0 = time.perf_counter()
    report = explore(
        space,
        ltl="F delivered",
        ltl_props={"delivered": delivered},
        library=library,
    )
    results = iter(report.results)
    for channel in CHANNELS:
        for port in SEND_PORTS:
            record = next(results)
            print(
                f"{port.kind:26s}{channel.display_name():22s}"
                f"{'ok' if record['safety']['ok'] else 'DEADLOCK':10s}"
                f"{'ok' if record['ltl']['ok'] else 'CAN HANG':12s}"
                f"{record['states']:8d}"
            )
    elapsed = time.perf_counter() - t0
    built, hits = library.stats.misses, library.stats.hits
    print("-" * len(header))
    print(f"{len(CHANNELS) * len(SEND_PORTS) * 2} verification runs in "
          f"{elapsed:.1f}s; models built {built}, reused {hits}")
    print("\nReading the table: only blocking/checking sends over lossless")
    print("channels guarantee completion; dropping buffers silently defeat")
    print("even synchronous senders (they hang, which safety flags), and")
    print("fire-and-forget sends can lose messages on any bounded channel.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Sweep the connector design space and tabulate verification verdicts.

The PnP approach exists to make "experimenting with alternative design
choices of interaction semantics" cheap.  This example takes one fixed
pair of components (a producer that must deliver 2 messages and a
consumer that expects them) and verifies *every* send-port/channel
combination from the library against three requirements:

* no deadlock / invalid end state;
* no assertion failures;
* completion — every execution eventually delivers both messages (LTL).

All 20 verification runs share one model library, so the sweep costs a
handful of block models plus two component models — the paper's reuse
claim working at design-exploration scale.

Run:  python examples/design_space_exploration.py
"""

import time

from repro.core import (
    AsynBlockingSend,
    AsynCheckingSend,
    AsynNonblockingSend,
    DroppingBuffer,
    FifoQueue,
    ModelLibrary,
    SingleSlotBuffer,
    SynBlockingSend,
    SynCheckingSend,
    verify_ltl,
    verify_safety,
)
from repro.mc import global_prop
from repro.systems.producer_consumer import simple_pair

SEND_PORTS = [
    AsynNonblockingSend(),
    AsynBlockingSend(),
    AsynCheckingSend(),
    SynBlockingSend(),
    SynCheckingSend(),
]
CHANNELS = [
    SingleSlotBuffer(),
    FifoQueue(size=2),
    DroppingBuffer(size=1),
    DroppingBuffer(size=2),
]

K = 2


def main() -> None:
    library = ModelLibrary()
    delivered = global_prop(
        "delivered", lambda v: v.global_("consumed_0") == K, "consumed_0")

    header = f"{'send port':26s}{'channel':22s}{'safety':10s}{'completion':12s}{'states':>8s}"
    print(header)
    print("-" * len(header))
    t0 = time.perf_counter()
    # ONE architecture, revised plug-and-play style for every combination:
    # the components are designed once and their models built once.
    arch = simple_pair(SEND_PORTS[0], CHANNELS[0], messages=K)
    for channel in CHANNELS:
        arch.swap_channel("link", channel)
        for port in SEND_PORTS:
            arch.swap_send_port("link", "Producer0", port)
            safety = verify_safety(arch, library=library, fused=True)
            completion = verify_ltl(arch, "F delivered",
                                    {"delivered": delivered},
                                    library=library, fused=True)
            print(
                f"{port.kind:26s}{channel.display_name():22s}"
                f"{'ok' if safety.ok else 'DEADLOCK':10s}"
                f"{'ok' if completion.ok else 'CAN HANG':12s}"
                f"{safety.result.stats.states_stored:8d}"
            )
    elapsed = time.perf_counter() - t0
    built, hits = library.stats.misses, library.stats.hits
    print("-" * len(header))
    print(f"{len(CHANNELS) * len(SEND_PORTS) * 2} verification runs in "
          f"{elapsed:.1f}s; models built {built}, reused {hits}")
    print("\nReading the table: only blocking/checking sends over lossless")
    print("channels guarantee completion; dropping buffers silently defeat")
    print("even synchronous senders (they hang, which safety flags), and")
    print("fire-and-forget sends can lose messages on any bounded channel.")


if __name__ == "__main__":
    main()

"""Weak fairness for LTL model checking (SPIN's ``-f`` option).

Without fairness, an LTL eventuality like ``F consumed`` fails on any
system where the scheduler can starve a process forever — e.g. a
consumer polling with a nonblocking receive can be scheduled in a tight
loop while a ready producer never runs.  *Weak fairness* rules such
runs out: a process that is continuously enabled from some point on
must eventually execute.

This module implements the standard counter ("Choueka flag")
construction SPIN uses: the Büchi product is unfolded into ``N + 1``
copies (one per process plus a reset copy).  A run is *fairly
accepting* iff the counter wraps around infinitely often, and a wrap
requires (a) passing a Büchi-accepting state and (b) every process
having either executed or been disabled at the moment the counter
pointed at it.  Acceptance is attached to the wrap itself via a flag
bit, so the nested DFS in :mod:`repro.mc.ndfs` works unchanged.

The construction multiplies the product size by about ``N + 1``; use it
for liveness properties on systems small enough to afford that.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Tuple

from ..obs.events import RunInstrument
from ..psl.interp import TransitionLabel
from .buchi import BuchiAutomaton
from .budget import Budget
from .engine import StateGraph
from .ndfs import _Product, _STUTTER
from .props import Prop

#: A fair product node: (state id, Büchi state id, counter, wrap flag).
FairNode = Tuple[int, int, int, bool]


class FairProduct:
    """Weakly-fair synchronous product, NDFS-compatible.

    Wraps the plain :class:`~repro.mc.ndfs._Product` and unfolds it with
    the fairness counter.  Node layout: ``(s, q, i, wrapped)`` where
    ``i = 0`` is the reset copy, ``i = k`` (1-based) waits for process
    ``k - 1`` to execute or be disabled, and ``wrapped`` marks the
    single step on which a full fair round completed.  System states are
    interned :class:`~repro.mc.engine.StateGraph` ids, so the unfolded
    nodes stay small-int tuples.
    """

    def __init__(self, graph: StateGraph, automaton: BuchiAutomaton,
                 props: Mapping[str, Prop],
                 budget: Optional[Budget] = None,
                 instrument: Optional[RunInstrument] = None) -> None:
        self._plain = _Product(graph, automaton, props, budget=budget,
                               instrument=instrument)
        self.graph = graph
        self.interp = graph.interp
        self.automaton = automaton
        self.n_procs = len(graph.system.instances)
        self.stats = self._plain.stats
        self._enabled_cache: Dict[int, FrozenSet[int]] = {}

    # -- helpers ---------------------------------------------------------

    def _enabled_pids(self, sid: int) -> FrozenSet[int]:
        cached = self._enabled_cache.get(sid)
        if cached is None:
            pids = set()
            for t in self.graph.transitions(sid):
                pids.add(t.label.pid)
                if t.label.partner_pid is not None:
                    pids.add(t.label.partner_pid)
            cached = frozenset(pids)
            self._enabled_cache[sid] = cached
        return cached

    @staticmethod
    def _movers(label: TransitionLabel) -> FrozenSet[int]:
        if label is _STUTTER:
            return frozenset()
        if label.partner_pid is not None:
            return frozenset({label.pid, label.partner_pid})
        return frozenset({label.pid})

    # -- NDFS interface -----------------------------------------------------

    def initial_nodes(self) -> List[FairNode]:
        return [
            (s, qid, 0, False) for (s, qid) in self._plain.initial_nodes()
        ]

    def is_accepting(self, node: FairNode) -> bool:
        return node[3]

    def successors(self, node: FairNode) -> Iterator[
        Tuple[TransitionLabel, FairNode]
    ]:
        sid, qid, counter, _wrapped = node
        q_accepting = self._plain.by_id[qid].accepting
        enabled = self._enabled_pids(sid)
        for label, (target, q2) in self._plain.successors((sid, qid)):
            movers = self._movers(label)
            if counter == 0:
                # Start a fair round at each Büchi-accepting state.
                j = 1 if q_accepting else 0
                # A fresh round may be satisfied immediately by this very
                # step (or by disabled processes).
                j = self._advance(j, movers, enabled)
            else:
                j = self._advance(counter, movers, enabled)
            if j > self.n_procs:
                yield label, (target, q2, 0, True)
            else:
                yield label, (target, q2, j, False)

    def _advance(self, j: int, movers: FrozenSet[int],
                 enabled: FrozenSet[int]) -> int:
        """Advance the counter past every satisfied process index."""
        while 1 <= j <= self.n_procs:
            pid = j - 1
            if pid in movers or pid not in enabled:
                j += 1
            else:
                break
        return j

"""Linear Temporal Logic: AST, parser, and normal forms.

The property language matches what the paper uses with SPIN ("The safety
property of the bridge example is described in LTL"):

========  =============================  =========================
Syntax    Meaning                        Also accepted
========  =============================  =========================
``G f``   always / globally              ``[] f``
``F f``   eventually                     ``<> f``
``X f``   next
``f U g`` (strong) until
``f W g`` weak until
``f R g`` release                        ``f V g``
``!``     not
``&&``    and                            ``&``
``||``    or                             ``|``
``->``    implies
``<->``   iff
========  =============================  =========================

Atomic propositions are identifiers bound to :class:`~repro.mc.props.Prop`
predicates at check time.  Formulas are immutable and hashable; the
Büchi construction (``repro.mc.buchi``) consumes the *negation normal
form* produced by :func:`nnf`, which contains only literals, ``And``,
``Or``, ``Next``, ``Until`` and ``Release``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Union


class LtlSyntaxError(ValueError):
    """Raised for malformed LTL formula text."""


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

class Formula:
    """Base class for LTL formulas; immutable and hashable."""

    __slots__ = ()

    def __str__(self) -> str:
        raise NotImplementedError

    def atoms(self) -> FrozenSet[str]:
        """Names of all atomic propositions in the formula."""
        out = set()
        for sub in walk(self):
            if isinstance(sub, Ap):
                out.add(sub.name)
        return frozenset(out)


@dataclass(frozen=True)
class TrueF(Formula):
    __slots__ = ()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseF(Formula):
    __slots__ = ()

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Ap(Formula):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class NotF(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"!{_paren(self.operand)}"


@dataclass(frozen=True)
class AndF(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} && {self.right})"


@dataclass(frozen=True)
class OrF(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} || {self.right})"


@dataclass(frozen=True)
class Next(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"X {_paren(self.operand)}"


@dataclass(frozen=True)
class Until(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} U {self.right})"


@dataclass(frozen=True)
class Release(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} R {self.right})"


@dataclass(frozen=True)
class Eventually(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"F {_paren(self.operand)}"


@dataclass(frozen=True)
class Globally(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"G {_paren(self.operand)}"


@dataclass(frozen=True)
class WeakUntil(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} W {self.right})"


@dataclass(frozen=True)
class Implies(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} -> {self.right})"


@dataclass(frozen=True)
class Iff(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} <-> {self.right})"


def _paren(f: Formula) -> str:
    text = str(f)
    if isinstance(f, (Ap, TrueF, FalseF, NotF)) or text.startswith("("):
        return text
    return f"({text})"


def walk(f: Formula) -> Iterator[Formula]:
    """Yield *f* and all subformulas, pre-order."""
    yield f
    for attr in ("operand", "left", "right"):
        sub = getattr(f, attr, None)
        if isinstance(sub, Formula):
            yield from walk(sub)


# ---------------------------------------------------------------------------
# Negation normal form
# ---------------------------------------------------------------------------

def nnf(f: Formula) -> Formula:
    """Negation normal form over {literal, And, Or, Next, Until, Release}.

    Derived operators are desugared first: ``F a = true U a``,
    ``G a = false R a``, ``a W b = b R (a || b)``, ``a -> b = !a || b``,
    ``a <-> b = (a && b) || (!a && !b)``.
    """
    return _nnf(f, negate=False)


def _nnf(f: Formula, negate: bool) -> Formula:
    if isinstance(f, TrueF):
        return FalseF() if negate else TrueF()
    if isinstance(f, FalseF):
        return TrueF() if negate else FalseF()
    if isinstance(f, Ap):
        return NotF(f) if negate else f
    if isinstance(f, NotF):
        return _nnf(f.operand, not negate)
    if isinstance(f, AndF):
        l, r = _nnf(f.left, negate), _nnf(f.right, negate)
        return OrF(l, r) if negate else AndF(l, r)
    if isinstance(f, OrF):
        l, r = _nnf(f.left, negate), _nnf(f.right, negate)
        return AndF(l, r) if negate else OrF(l, r)
    if isinstance(f, Next):
        return Next(_nnf(f.operand, negate))
    if isinstance(f, Until):
        l, r = _nnf(f.left, negate), _nnf(f.right, negate)
        return Release(l, r) if negate else Until(l, r)
    if isinstance(f, Release):
        l, r = _nnf(f.left, negate), _nnf(f.right, negate)
        return Until(l, r) if negate else Release(l, r)
    if isinstance(f, Eventually):
        return _nnf(Until(TrueF(), f.operand), negate)
    if isinstance(f, Globally):
        return _nnf(Release(FalseF(), f.operand), negate)
    if isinstance(f, WeakUntil):
        # a W b  ==  b R (a || b)
        return _nnf(Release(f.right, OrF(f.left, f.right)), negate)
    if isinstance(f, Implies):
        return _nnf(OrF(NotF(f.left), f.right), negate)
    if isinstance(f, Iff):
        both = AndF(f.left, f.right)
        neither = AndF(NotF(f.left), NotF(f.right))
        return _nnf(OrF(both, neither), negate)
    raise TypeError(f"unknown formula node {type(f).__name__}")


def negate(f: Formula) -> Formula:
    """The NNF of ``!f`` (what the emptiness check actually explores)."""
    return _nnf(f, negate=True)


def is_literal(f: Formula) -> bool:
    return isinstance(f, (Ap, TrueF, FalseF)) or (
        isinstance(f, NotF) and isinstance(f.operand, Ap)
    )


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lpar>\()|(?P<rpar>\))|(?P<iff><->)|(?P<implies>->)"
    r"|(?P<and>&&|&)|(?P<or>\|\||\|)|(?P<not>!)"
    r"|(?P<box>\[\])|(?P<diamond><>)"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_]*))"
)

_UNARY = {"G", "F", "X"}
_BINARY_TEMPORAL = {"U", "W", "R", "V"}
_RESERVED = _UNARY | _BINARY_TEMPORAL | {"true", "false"}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            if text[pos:].strip() == "":
                break
            raise LtlSyntaxError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind == "ident":
            tokens.append(m.group("ident"))
        elif kind == "box":
            tokens.append("G")
        elif kind == "diamond":
            tokens.append("F")
        elif kind == "and":
            tokens.append("&&")
        elif kind == "or":
            tokens.append("||")
        else:
            tokens.append(m.group(0).strip())
    return tokens


class _Parser:
    def __init__(self, tokens: List[str], source: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.source = source

    def peek(self) -> Union[str, None]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        tok = self.peek()
        if tok is None:
            raise LtlSyntaxError(f"unexpected end of formula: {self.source!r}")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.take()
        if got != tok:
            raise LtlSyntaxError(f"expected {tok!r}, got {got!r} in {self.source!r}")

    # precedence: <-> , -> , || , && , U/W/R , unary
    def parse(self) -> Formula:
        f = self.parse_iff()
        if self.peek() is not None:
            raise LtlSyntaxError(f"trailing input {self.peek()!r} in {self.source!r}")
        return f

    def parse_iff(self) -> Formula:
        left = self.parse_implies()
        while self.peek() == "<->":
            self.take()
            left = Iff(left, self.parse_implies())
        return left

    def parse_implies(self) -> Formula:
        left = self.parse_or()
        if self.peek() == "->":
            self.take()
            return Implies(left, self.parse_implies())
        return left

    def parse_or(self) -> Formula:
        left = self.parse_and()
        while self.peek() == "||":
            self.take()
            left = OrF(left, self.parse_and())
        return left

    def parse_and(self) -> Formula:
        left = self.parse_until()
        while self.peek() == "&&":
            self.take()
            left = AndF(left, self.parse_until())
        return left

    def parse_until(self) -> Formula:
        left = self.parse_unary()
        tok = self.peek()
        if tok in _BINARY_TEMPORAL:
            self.take()
            right = self.parse_until()
            if tok == "U":
                return Until(left, right)
            if tok == "W":
                return WeakUntil(left, right)
            return Release(left, right)  # R and V
        return left

    def parse_unary(self) -> Formula:
        tok = self.peek()
        if tok == "!":
            self.take()
            return NotF(self.parse_unary())
        if tok in _UNARY:
            self.take()
            inner = self.parse_unary()
            if tok == "G":
                return Globally(inner)
            if tok == "F":
                return Eventually(inner)
            return Next(inner)
        return self.parse_atom()

    def parse_atom(self) -> Formula:
        tok = self.take()
        if tok == "(":
            inner = self.parse_iff()
            self.expect(")")
            return inner
        if tok == "true":
            return TrueF()
        if tok == "false":
            return FalseF()
        if tok in _RESERVED:
            raise LtlSyntaxError(f"{tok!r} is reserved and cannot name a proposition")
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", tok):
            return Ap(tok)
        raise LtlSyntaxError(f"unexpected token {tok!r} in {self.source!r}")


def parse_ltl(text: str) -> Formula:
    """Parse LTL formula text into a :class:`Formula`."""
    tokens = _tokenize(text)
    if not tokens:
        raise LtlSyntaxError("empty formula")
    return _Parser(tokens, text).parse()

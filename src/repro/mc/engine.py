"""The shared state-space engine: interned states and a memoized relation.

The paper's core pitch is *reuse across design iterations*, yet the
checkers historically threw all exploration work away between runs:
``check_safety``, ``find_state``, NDFS, fairness, and every resilience
scenario re-walked the state space from scratch, rebuilding every
:class:`~repro.psl.interp.Transition` per visit.  This module makes the
state space itself a reusable artifact:

* :class:`StateStore` — interns :class:`~repro.psl.state.State` tuples
  to dense integer ids.  A state's (expensive) deep-tuple hash is
  computed once, at interning time; every downstream structure — BFS
  frontiers, parent maps, NDFS color sets, POR stacks — then keys on
  small ints whose hashes are free.
* :class:`TransitionCache` — memoizes the transition relation.  The
  interpreter runs once per distinct state; repeat visits (and repeat
  *checks*) get the compact :class:`CachedTransition` tuples back.
* :class:`StateGraph` — the façade the checkers share.  Build one per
  system, pass it to as many checkers as you like: checking N
  properties or N fault phases on the same architecture pays the
  exploration cost once.

All checkers in :mod:`repro.mc` accept a ``StateGraph`` wherever they
accept a ``System`` or ``Interpreter``; passing a plain system simply
builds a private graph, so single-shot calls behave exactly as before.
Transition order is the interpreter's deterministic order, which is why
cached and uncached runs produce identical verdicts, shortest
counterexamples, and statistics (see
``tests/mc/test_engine_equivalence.py``).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple, Union

from ..psl.interp import Interpreter, TransitionLabel
from ..psl.state import State
from ..psl.system import ProcessInstance, System

__all__ = ["CachedTransition", "StateGraph", "StateStore", "TransitionCache"]


class StateStore:
    """Interns states to dense integer ids (hash once, compare by int)."""

    __slots__ = ("_ids", "_states")

    def __init__(self) -> None:
        self._ids: Dict[State, int] = {}
        self._states: List[State] = []

    def intern(self, state: State) -> int:
        """The id of *state*, assigning the next free id on first sight."""
        sid = self._ids.get(state)
        if sid is None:
            sid = len(self._states)
            self._ids[state] = sid
            self._states.append(state)
        return sid

    def id_of(self, state: State) -> Optional[int]:
        """The id of *state* if it has been interned, else ``None``."""
        return self._ids.get(state)

    def state(self, sid: int) -> State:
        """The state interned under *sid*."""
        return self._states[sid]

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, state: State) -> bool:
        return state in self._ids


class CachedTransition(NamedTuple):
    """One memoized transition: like ``Transition`` but with an int target."""

    label: TransitionLabel
    target: int
    violation: Optional[str]


class TransitionCache:
    """Memoizes ``Interpreter.transitions`` over interned state ids.

    Successor lists are computed at most once per distinct state, in the
    interpreter's deterministic order, with targets interned into the
    shared :class:`StateStore`.
    """

    __slots__ = ("interp", "store", "_succ", "_drive", "misses")

    def __init__(self, interp: Interpreter, store: StateStore) -> None:
        self.interp = interp
        self.store = store
        self._succ: Dict[int, Tuple[CachedTransition, ...]] = {}
        #: Number of distinct states actually expanded by the interpreter.
        self.misses = 0
        # A compiled interpreter provides a fused driver that interns
        # targets and emits CachedTransition directly, skipping the
        # wrap-and-intern second pass below.
        bind_engine = getattr(interp, "bind_engine", None)
        self._drive = None if bind_engine is None else bind_engine(store)

    def transitions(self, sid: int) -> Tuple[CachedTransition, ...]:
        cached = self._succ.get(sid)
        if cached is None:
            if self._drive is not None:
                cached = tuple(self._drive(self.store.state(sid)))
            else:
                intern = self.store.intern
                cached = tuple([
                    CachedTransition(label, intern(target), violation)
                    for label, target, violation
                    in self.interp.transitions(self.store.state(sid))
                ])
            self._succ[sid] = cached
            self.misses += 1
        return cached

    def peek(self, sid: int) -> Optional[Tuple[CachedTransition, ...]]:
        """The cached successor list, or ``None`` without computing it."""
        return self._succ.get(sid)

    def __len__(self) -> int:
        return len(self._succ)


class StateGraph:
    """A system's state space, explored lazily and shared across checkers.

    Wraps an :class:`~repro.psl.interp.Interpreter` with a
    :class:`StateStore` and a :class:`TransitionCache`.  The graph is a
    *cache*, not a snapshot: checkers pull transitions through
    :meth:`transitions` and the first checker to visit a state pays for
    it; later checkers (or later visits) get memoized results.  Budgeted
    runs therefore stay budgeted — nothing is explored eagerly.
    """

    __slots__ = ("interp", "store", "cache", "initial_id")

    def __init__(self, target: Union[System, Interpreter],
                 jit: Optional[bool] = None) -> None:
        if isinstance(target, Interpreter):
            self.interp = target
        else:
            from ..psl.jit import make_interpreter
            self.interp = make_interpreter(target, jit=jit)
        self.store = StateStore()
        self.cache = TransitionCache(self.interp, self.store)
        self.initial_id = self.store.intern(self.interp.initial_state())

    # -- delegation ---------------------------------------------------------

    @property
    def system(self) -> System:
        return self.interp.system

    def state(self, sid: int) -> State:
        return self.store.state(sid)

    def transitions(self, sid: int) -> Tuple[CachedTransition, ...]:
        return self.cache.transitions(sid)

    def successors(self, sid: int) -> List[int]:
        return [t.target for t in self.cache.transitions(sid)]

    def is_valid_end_state(self, sid: int) -> bool:
        return self.interp.is_valid_end_state(self.store.state(sid))

    def blocked_processes(self, sid: int) -> List[ProcessInstance]:
        return self.interp.blocked_processes(self.store.state(sid))

    # -- introspection ------------------------------------------------------

    @property
    def compile_stats(self) -> Optional[Dict[str, float]]:
        """JIT compilation counters, or ``None`` on the tree-walk path."""
        return getattr(self.interp, "compile_stats", None)

    @property
    def n_states_seen(self) -> int:
        """Distinct states interned so far (explored plus frontier)."""
        return len(self.store)

    @property
    def n_states_expanded(self) -> int:
        """Distinct states whose successor lists have been computed."""
        return len(self.cache)

    def explore(self, max_states: Optional[int] = None,
                reporter=None, jobs: Optional[int] = None) -> int:
        """Eagerly expand the whole reachable graph (pre-warming helper).

        Returns the number of distinct states interned.  ``max_states``
        caps the expansion; the graph stays usable (and lazily
        completable) either way.  ``reporter`` receives engine events
        for the warm-up sweep (see :mod:`repro.obs`).  ``jobs > 1``
        shards the BFS frontier across worker processes (see
        :mod:`repro.mc.shard`); the sharded path degrades to this
        serial walk — with a note on the returned report, which this
        convenience wrapper discards — when parallelism cannot pay.
        """
        if jobs is not None and jobs > 1:
            from .shard import shard_explore
            return shard_explore(self, jobs=jobs, max_states=max_states,
                                 reporter=reporter).states
        obs = None
        if reporter is not None:
            from ..obs.events import RunInstrument
            obs = RunInstrument(reporter, "engine-explore", self,
                                max_states=max_states)
        queue = [self.initial_id]
        seen = {self.initial_id}
        expanded = 0
        ntrans = 0

        def done() -> int:
            if obs is not None:
                from .result import Statistics
                stats = Statistics(states_stored=len(self.store),
                                   states_expanded=expanded,
                                   transitions=ntrans)
                stats.apply_compile_stats(self.compile_stats)
                stats.elapsed_seconds = obs.elapsed()
                obs.finish(ok=True, stats=stats)
            return len(self.store)

        while queue:
            sid = queue.pop()
            transitions = self.cache.transitions(sid)
            expanded += 1
            ntrans += len(transitions)
            if obs is not None:
                obs.tick(len(self.store), expanded, ntrans, len(queue))
            for t in transitions:
                if t.target not in seen:
                    seen.add(t.target)
                    if max_states is not None and len(seen) >= max_states:
                        return done()
                    queue.append(t.target)
        return done()


def as_graph(target: Union[System, Interpreter, StateGraph]) -> StateGraph:
    """Coerce any checker target to a :class:`StateGraph`."""
    if isinstance(target, StateGraph):
        return target
    return StateGraph(target)

"""Exploration budgets with graceful degradation.

Every exhaustive algorithm in :mod:`repro.mc` can be bounded by a
:class:`Budget` — a cap on stored states (``max_states``) and/or wall
clock time (``max_seconds``).  By default an exhausted budget does *not*
raise: the checker stops where it is and returns a partial result
flagged ``incomplete=True`` together with the statistics gathered so
far, so large design-space sweeps degrade gracefully instead of dying
mid-matrix.  Callers that prefer the historical hard stop pass
``raise_on_limit=True`` and get :class:`StateLimitExceeded` /
:class:`TimeLimitExceeded` back.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

#: ``budget_exhausted`` markers carried by partial results.
BUDGET_STATES = "state budget"
BUDGET_TIME = "time budget"
BUDGET_INTERRUPT = "interrupt"


class BudgetExceeded(Exception):
    """Base class for hard budget stops (legacy ``raise_on_limit`` mode)."""


class StateLimitExceeded(BudgetExceeded):
    """Raised when exploration exceeds the configured state bound."""

    def __init__(self, limit: int) -> None:
        super().__init__(f"state limit of {limit} states exceeded")
        self.limit = limit


class TimeLimitExceeded(BudgetExceeded):
    """Raised when exploration exceeds the configured time bound."""

    def __init__(self, limit: float) -> None:
        super().__init__(f"time limit of {limit:g}s exceeded")
        self.limit = limit


@dataclass
class Budget:
    """A (state count, wall clock) exploration budget.

    The clock starts when the instance is created; ``exceeded`` is meant
    to be called once per newly stored state.

    ``stop`` is an optional zero-argument callable polled alongside the
    numeric limits: when it returns True the exploration stops with the
    :data:`BUDGET_INTERRUPT` marker.  The fault-tolerant exploration
    runtime threads a signal-handler flag through here so Ctrl-C ends a
    long-running serial check at the next stored state — gracefully and
    with partial statistics — rather than unwinding it mid-BFS.  The
    interrupt marker never raises, even under ``raise_on_limit``.
    """

    max_states: Optional[int] = None
    max_seconds: Optional[float] = None
    raise_on_limit: bool = False
    stop: Optional[Callable[[], bool]] = None
    started_at: float = field(default_factory=time.perf_counter)

    @property
    def unbounded(self) -> bool:
        return (self.max_states is None and self.max_seconds is None
                and self.stop is None)

    def exceeded(self, states_stored: int) -> Optional[str]:
        """Return the exhausted-budget marker, or ``None`` while in budget.

        In ``raise_on_limit`` mode the corresponding
        :class:`BudgetExceeded` subclass is raised instead (the
        interrupt marker excepted — an interrupt is a request for a
        graceful partial result by definition).
        """
        if self.stop is not None and self.stop():
            return BUDGET_INTERRUPT
        if self.max_states is not None and states_stored > self.max_states:
            if self.raise_on_limit:
                raise StateLimitExceeded(self.max_states)
            return BUDGET_STATES
        if (self.max_seconds is not None
                and time.perf_counter() - self.started_at > self.max_seconds):
            if self.raise_on_limit:
                raise TimeLimitExceeded(self.max_seconds)
            return BUDGET_TIME
        return None

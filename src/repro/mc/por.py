"""Partial-order reduction for safety exploration.

The paper's Section 6 observes that decomposing connectors into ports and
channels "introduces additional concurrency into the model, exacerbating
the state explosion", and calls for optimization techniques.  This module
implements one such technique: an *ample-set* partial-order reduction in
the style of Peled, restricted to safety properties.

The reduction expands, where possible, only the transitions of a single
process instead of all interleavings.  A process's enabled transition set
is an acceptable ample set in a state when:

* **C0 (non-emptiness)** — the process has at least one enabled edge;
* **C1 (independence)** — every enabled edge of the process is *purely
  local*: no channel operation and no read/write of any global variable,
  so it can neither enable/disable other processes nor be affected by
  them;
* **C2 (invisibility)** — no edge writes state any tracked proposition
  depends on.  A :class:`~repro.mc.props.Prop` with declared
  dependencies is visible only through them; an undeclared prop makes
  every write visible (no reduction around it);
* **C3 (cycle proviso)** — no edge closes a cycle on the current DFS
  stack (checked dynamically, as in SPIN).

Because ample expansion preserves reachability of local states and of
all visible valuations, assertion, invariant, and deadlock results are
preserved.  The reduction is deliberately conservative; its purpose in
the reproduction is the T-opt/T-scale experiments measuring how much of
the building-block concurrency can be collapsed.

The checker runs over a shared :class:`~repro.mc.engine.StateGraph`:
states are interned ids, and *full* expansions (needed whenever no
ample set exists) go through the graph's memoized transition cache —
so a POR run after a full sweep on the same graph recomputes nothing.
Per-process ample candidates are derived by filtering the cached full
relation when it is already present, and by asking the interpreter for
just that process otherwise (never forcing a full expansion).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..obs.events import RunInstrument
from ..obs.reporters import Reporter
from ..psl.compiler import Edge, OpAssert, OpAssign, OpDStep, OpElse, OpGuard, OpSkip
from ..psl.interp import Interpreter, TransitionLabel
from ..psl.system import ProcessInstance, System
from .budget import Budget
from .engine import CachedTransition, StateGraph, as_graph
from .explore import _rebuild_trace
from .props import Prop
from .result import (
    Statistics,
    Trace,
    TraceStep,
    VerificationResult,
    VIOLATION_ASSERTION,
    VIOLATION_DEADLOCK,
    VIOLATION_INVARIANT,
)

_LOCAL_OPS = (OpAssign, OpGuard, OpSkip, OpAssert, OpDStep)


def _edge_is_local(inst: ProcessInstance, edge: Edge) -> bool:
    """C1: the edge touches no channel and no global variable."""
    op = edge.op
    if isinstance(op, OpElse):
        # `else` depends on sibling enabledness, which may involve
        # channels; treat as non-local unless all siblings are local too.
        return False
    if not isinstance(op, _LOCAL_OPS):
        return False
    for name in op.reads() | op.writes():
        if name == "_pid":
            continue
        if name not in inst.local_index:
            return False  # global access
    return True


def _edge_is_invisible(
    inst: ProcessInstance, edge: Edge, invariants: Sequence[Prop]
) -> bool:
    """C2: the edge cannot change the valuation of any tracked prop.

    Local edges only write the process's own locals (and its control
    location), so the edge is visible exactly to props that declared a
    dependency on this process — or props with undeclared dependencies.
    """
    for p in invariants:
        if p.globals_read is None or p.locals_read is None:
            return False
        if inst.name in p.locals_read:
            return False
    return True


class AmpleInterpreter:
    """Ample-set successor generation over a shared state graph."""

    def __init__(
        self,
        target: Union[System, Interpreter, StateGraph],
        invariants: Sequence[Prop] = (),
    ) -> None:
        self.graph = as_graph(target)
        self.interp = self.graph.interp
        self.invariants = invariants
        # Static per-(definition, location) classification: True when every
        # outgoing edge is local & invisible (candidate for ample sets).
        self._ample_loc_cache: Dict[Tuple[int, int], bool] = {}

    def _location_is_ample_candidate(self, pid: int, loc: int) -> bool:
        key = (pid, loc)
        cached = self._ample_loc_cache.get(key)
        if cached is not None:
            return cached
        inst = self.interp.system.instances[pid]
        edges = inst.automaton.edges_from[loc]
        ok = bool(edges) and all(
            _edge_is_local(inst, e) and _edge_is_invisible(inst, e, self.invariants)
            for e in edges
        )
        self._ample_loc_cache[key] = ok
        return ok

    def ample_transitions(
        self, sid: int, on_stack: Set[int]
    ) -> Tuple[List[CachedTransition], bool]:
        """Successor transitions, reduced when a valid ample set exists.

        Returns ``(transitions, reduced)``.  ``on_stack`` is the set of
        state ids on the current DFS stack, used for the C3 cycle
        proviso.
        """
        graph = self.graph
        state = graph.state(sid)
        cached_full = graph.cache.peek(sid)
        intern = graph.store.intern
        for pid in range(len(self.interp.system.instances)):
            if not self._location_is_ample_candidate(pid, state.locs[pid]):
                continue
            if cached_full is not None:
                # The full relation is pid-ordered, so filtering by pid
                # yields exactly the per-process transition list.
                candidate = [t for t in cached_full if t.label.pid == pid]
            else:
                candidate = [
                    CachedTransition(t.label, intern(t.target), t.violation)
                    for t in self.interp._process_transitions(state, pid)
                ]
            if not candidate:
                continue  # C0 fails (e.g. all guards false)
            if any(t.target in on_stack for t in candidate):
                continue  # C3 fails: would close a stack cycle
            return candidate, True
        return list(graph.transitions(sid)), False


def check_safety_por(
    target: Union[System, Interpreter, StateGraph],
    invariants: Sequence[Prop] = (),
    check_deadlock: bool = True,
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
    raise_on_limit: bool = False,
    reporter: Optional[Reporter] = None,
) -> VerificationResult:
    """Depth-first safety check with ample-set partial-order reduction.

    Verifies the same properties as
    :func:`repro.mc.explore.check_safety` (assertions, invariants,
    deadlock-freedom) but explores a reduced state graph.
    Counterexamples are valid executions but not necessarily shortest.
    An exhausted budget yields a partial ``incomplete=True`` result
    unless ``raise_on_limit`` is set.
    """
    graph = as_graph(target)
    ample = AmpleInterpreter(graph, invariants)
    system = graph.system
    budget = Budget(max_states=max_states, max_seconds=max_seconds,
                    raise_on_limit=raise_on_limit)
    start = budget.started_at
    obs = None if reporter is None else RunInstrument(
        reporter, "safety-por", graph, max_states=max_states,
        max_seconds=max_seconds, started_at=start)

    initial = graph.initial_id
    stats = Statistics(states_stored=1)

    def finish(result: VerificationResult) -> VerificationResult:
        stats.elapsed_seconds = time.perf_counter() - start
        result.stats = stats
        if obs is not None:
            if not result.ok:
                trace_length = len(result.trace.steps) if result.trace else 0
                obs.counterexample(kind=result.kind, message=result.message,
                                   trace_length=trace_length)
            if result.budget_exhausted is not None:
                obs.budget(result.budget_exhausted, stats.states_stored)
            obs.finish(ok=result.ok, stats=stats,
                       incomplete=result.incomplete)
        return result

    for p in invariants:
        if not p.evaluate(system, graph.state(initial)):
            return finish(
                VerificationResult(
                    ok=False,
                    kind=VIOLATION_INVARIANT,
                    message=f"invariant {p.name!r} violated in the initial state",
                    trace=Trace(initial=graph.state(initial)),
                )
            )

    parents: Dict[int, Tuple[Optional[int], Optional[TransitionLabel]]] = {
        initial: (None, None)
    }
    on_stack: Set[int] = {initial}
    # DFS stack: (state id, pending transition list, next index)
    trans0, _ = ample.ample_transitions(initial, on_stack)
    stats.transitions += len(trans0)
    stats.states_expanded += 1
    if obs is not None:
        obs.tick(stats.states_stored, stats.states_expanded,
                 stats.transitions, len(trans0))
    if not trans0 and check_deadlock and not graph.is_valid_end_state(initial):
        blocked = ", ".join(i.name for i in graph.blocked_processes(initial))
        return finish(
            VerificationResult(
                ok=False,
                kind=VIOLATION_DEADLOCK,
                message=f"invalid end state (deadlock); blocked: {blocked}",
                trace=Trace(initial=graph.state(initial)),
            )
        )
    stack: List[Tuple[int, List[CachedTransition], int]] = [(initial, trans0, 0)]

    while stack:
        sid, transitions, idx = stack[-1]
        if idx >= len(transitions):
            stack.pop()
            on_stack.discard(sid)
            continue
        stack[-1] = (sid, transitions, idx + 1)
        t = transitions[idx]

        if t.violation:
            trace = _rebuild_trace(
                graph, initial, sid, parents,
                extra=TraceStep(t.label, graph.state(t.target)),
            )
            return finish(
                VerificationResult(
                    ok=False, kind=VIOLATION_ASSERTION, message=t.violation, trace=trace
                )
            )
        if t.target in parents:
            continue
        parents[t.target] = (sid, t.label)
        stats.states_stored += 1
        exhausted = budget.exceeded(stats.states_stored)
        if exhausted is not None:
            stats.incomplete = True
            stats.budget_exhausted = exhausted
            return finish(
                VerificationResult(
                    ok=True,
                    message=(
                        f"exploration stopped early ({exhausted} "
                        "exhausted); no violations found so far"
                    ),
                    property_text=", ".join(p.name for p in invariants)
                    or "assertions",
                    incomplete=True,
                    budget_exhausted=exhausted,
                )
            )

        for p in invariants:
            if not p.evaluate(system, graph.state(t.target)):
                trace = _rebuild_trace(graph, initial, t.target, parents)
                return finish(
                    VerificationResult(
                        ok=False,
                        kind=VIOLATION_INVARIANT,
                        message=f"invariant {p.name!r} violated",
                        trace=trace,
                    )
                )

        on_stack.add(t.target)
        succ, _ = ample.ample_transitions(t.target, on_stack)
        stats.transitions += len(succ)
        stats.states_expanded += 1
        if obs is not None:
            obs.tick(stats.states_stored, stats.states_expanded,
                     stats.transitions, len(stack))
        if not succ and check_deadlock and not graph.is_valid_end_state(t.target):
            blocked = ", ".join(i.name for i in graph.blocked_processes(t.target))
            trace = _rebuild_trace(graph, initial, t.target, parents)
            return finish(
                VerificationResult(
                    ok=False,
                    kind=VIOLATION_DEADLOCK,
                    message=f"invalid end state (deadlock); blocked: {blocked}",
                    trace=trace,
                )
            )
        stack.append((t.target, succ, 0))

    props_txt = ", ".join(p.name for p in invariants) or "assertions"
    return finish(
        VerificationResult(
            ok=True,
            message=f"no violations found (POR exploration, {props_txt})",
            property_text=props_txt,
        )
    )

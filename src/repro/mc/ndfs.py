"""LTL model checking: product construction and nested depth-first search.

To check a system against an LTL formula φ we follow SPIN's automata-
theoretic recipe:

1. translate ¬φ to a Büchi automaton (:mod:`repro.mc.buchi`);
2. build the synchronous product of the system's transition system with
   that automaton on the fly;
3. search the product for a reachable *accepting cycle* with the nested
   depth-first search of Courcoubetis, Vardi, Wolper & Yannakakis (in
   the improved formulation of Schwoon & Esparza that detects cycles
   against the blue-DFS stack).

A reachable accepting cycle is a system execution violating φ; it is
reported as a *lasso* counterexample (stem + cycle).  If no accepting
cycle exists, φ holds on all (infinite) executions.

Finite executions are handled by *stutter extension*: a state with no
successors repeats itself forever, which is the standard way to give
LTL semantics to deadlocking runs (SPIN's "trailing stutter").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..obs.events import RunInstrument
from ..obs.reporters import Reporter
from ..psl.interp import Interpreter, TransitionLabel
from ..psl.system import System
from .buchi import BuchiAutomaton, BuchiState, ltl_to_buchi
from .budget import Budget
from .engine import StateGraph, as_graph
from .ltl import Formula, negate, parse_ltl
from .props import Prop
from .result import (
    Statistics,
    Trace,
    TraceStep,
    VerificationResult,
    VIOLATION_ACCEPTANCE_CYCLE,
)

#: A product node: (interned system state id, Büchi state id).
ProductNode = Tuple[int, int]

_STUTTER = TransitionLabel(
    pid=-1, process="(system)", kind="stutter", desc="deadlock stutter"
)


class _BudgetHit(Exception):
    """Internal: unwinds the NDFS when a graceful budget runs out."""

    def __init__(self, marker: str) -> None:
        super().__init__(marker)
        self.marker = marker


class _Product:
    """On-the-fly product of a system with a state-labeled Büchi automaton.

    System states are handled as interned ids of a shared
    :class:`~repro.mc.engine.StateGraph`, so product nodes are cheap
    ``(int, int)`` pairs and successor generation hits the graph's
    memoized transition relation.
    """

    def __init__(
        self,
        graph: StateGraph,
        automaton: BuchiAutomaton,
        props: Mapping[str, Prop],
        budget: Optional[Budget] = None,
        instrument: Optional[RunInstrument] = None,
    ) -> None:
        self.graph = graph
        self.interp = graph.interp
        self.automaton = automaton
        self.props = props
        self.budget = budget
        self.instrument = instrument
        self.by_id: Dict[int, BuchiState] = {s.id: s for s in automaton.states}
        self._val_cache: Dict[int, Dict[str, bool]] = {}
        self.stats = Statistics()

    def valuation(self, sid: int) -> Dict[str, bool]:
        cached = self._val_cache.get(sid)
        if cached is None:
            state = self.graph.state(sid)
            cached = {
                name: p.evaluate(self.interp.system, state)
                for name, p in self.props.items()
            }
            self._val_cache[sid] = cached
            if self.instrument is not None:
                stored = len(self._val_cache)
                self.instrument.tick(stored, stored,
                                     self.stats.transitions, 0)
            if self.budget is not None:
                # Every distinct system state passes through here exactly
                # once, so the valuation cache is the stored-state count.
                marker = self.budget.exceeded(len(self._val_cache))
                if marker is not None:
                    raise _BudgetHit(marker)
        return cached

    def initial_nodes(self) -> List[ProductNode]:
        s0 = self.graph.initial_id
        self.stats.states_stored += 1
        v0 = self.valuation(s0)
        return [
            (s0, q.id) for q in self.automaton.initial if q.satisfied_by(v0)
        ]

    def successors(
        self, node: ProductNode
    ) -> Iterator[Tuple[TransitionLabel, ProductNode]]:
        sid, qid = node
        transitions = self.graph.transitions(sid)
        self.stats.transitions += len(transitions)
        if transitions:
            moves: Iterable[Tuple[TransitionLabel, int]] = (
                (t.label, t.target) for t in transitions
            )
        else:
            moves = [(_STUTTER, sid)]  # stutter extension
        buchi_next = self.automaton.successors[qid]
        for label, target in moves:
            valuation = self.valuation(target)
            for q in buchi_next:
                if q.satisfied_by(valuation):
                    yield label, (target, q.id)

    def is_accepting(self, node: ProductNode) -> bool:
        return self.by_id[node[1]].accepting


@dataclass
class _Lasso:
    stem: List[Tuple[TransitionLabel, ProductNode]]
    cycle: List[Tuple[TransitionLabel, ProductNode]]


def _ndfs(product: _Product) -> Optional[_Lasso]:
    """Iterative nested DFS; returns a lasso if an accepting cycle exists."""
    blue: set = set()
    red: set = set()

    for init in product.initial_nodes():
        if init in blue:
            continue
        lasso = _blue_dfs(product, init, blue, red)
        if lasso is not None:
            return lasso
    return None


def _blue_dfs(
    product: _Product, root: ProductNode, blue: set, red: set
) -> Optional[_Lasso]:
    # Stack entries: (node, iterator over successors)
    cyan: set = {root}
    path: List[Tuple[TransitionLabel, ProductNode]] = []  # edge into each node
    stack: List[Tuple[ProductNode, Iterator]] = [(root, product.successors(root))]

    while stack:
        node, it = stack[-1]
        advanced = False
        for label, succ in it:
            if succ in cyan and (product.is_accepting(node) or product.is_accepting(succ)):
                # Early cycle detection against the blue stack.
                cycle = _cut_cycle(path, root, succ) + [(label, succ)]
                stem = _cut_stem(path, root, succ)
                return _Lasso(stem=stem, cycle=cycle)
            if succ not in blue and succ not in cyan:
                cyan.add(succ)
                path.append((label, succ))
                stack.append((succ, product.successors(succ)))
                advanced = True
                break
        if advanced:
            continue
        # Post-order on `node`.
        stack.pop()
        if product.is_accepting(node):
            hit = _red_dfs(product, node, cyan, red)
            if hit is not None:
                red_path, target = hit
                # stem: root -> node ; cycle: node ->(red) target ->(blue) node
                stem = list(path)
                back = _cut_cycle(path, root, target) if target != node else []
                # `back` walks target -> ... -> node along the blue stack.
                cycle = red_path + back
                return _Lasso(stem=stem, cycle=cycle)
        blue.add(node)
        cyan.discard(node)
        if path:
            path.pop()
    return None


def _cut_stem(
    path: List[Tuple[TransitionLabel, ProductNode]], root: ProductNode, target: ProductNode
) -> List[Tuple[TransitionLabel, ProductNode]]:
    """Prefix of the blue path from root up to (and including) target."""
    if target == root:
        return []
    out = []
    for label, node in path:
        out.append((label, node))
        if node == target:
            break
    return out


def _cut_cycle(
    path: List[Tuple[TransitionLabel, ProductNode]], root: ProductNode, start: ProductNode
) -> List[Tuple[TransitionLabel, ProductNode]]:
    """Suffix of the blue path strictly after `start` (start -> ... -> top)."""
    if start == root:
        return list(path)
    for i, (_, node) in enumerate(path):
        if node == start:
            return list(path[i + 1:])
    return list(path)


def _red_dfs(
    product: _Product, seed: ProductNode, cyan: set, red: set
) -> Optional[Tuple[List[Tuple[TransitionLabel, ProductNode]], ProductNode]]:
    """Search from an accepting seed for the seed itself or any cyan node.

    Returns the red path (edges from seed) and the node hit, or None.
    """
    path: List[Tuple[TransitionLabel, ProductNode]] = []
    on_path: set = {seed}
    stack: List[Tuple[ProductNode, Iterator]] = [(seed, product.successors(seed))]
    visited: set = set()

    while stack:
        node, it = stack[-1]
        advanced = False
        for label, succ in it:
            if succ == seed or succ in cyan:
                path.append((label, succ))
                return path, succ
            if succ not in red and succ not in visited and succ not in on_path:
                visited.add(succ)
                on_path.add(succ)
                path.append((label, succ))
                stack.append((succ, product.successors(succ)))
                advanced = True
                break
        if advanced:
            continue
        stack.pop()
        on_path.discard(node)
        red.add(node)
        if path:
            path.pop()
    return None


def check_ltl(
    target: Union[System, Interpreter, StateGraph],
    formula: Union[str, Formula],
    props: Union[Mapping[str, Prop], Sequence[Prop]],
    weak_fairness: bool = False,
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
    raise_on_limit: bool = False,
    reporter: Optional[Reporter] = None,
) -> VerificationResult:
    """Check that every execution of the system satisfies the LTL formula.

    ``props`` binds the formula's atomic propositions to state
    predicates; it may be a mapping ``name -> Prop`` or a sequence of
    props (bound by their own names).

    ``weak_fairness=True`` restricts attention to weakly fair runs — a
    process that is continuously enabled must eventually execute — via
    the counter construction of :mod:`repro.mc.fairness` (SPIN's ``-f``).
    This multiplies the product by roughly the process count; use it for
    liveness properties that an unfair scheduler could trivially defeat.

    ``max_states`` / ``max_seconds`` bound the search over distinct
    *system* states; an exhausted budget returns a partial
    ``incomplete=True`` result (no counterexample found so far) unless
    ``raise_on_limit`` is set.
    """
    graph = as_graph(target)
    parsed = parse_ltl(formula) if isinstance(formula, str) else formula
    prop_map = _as_prop_map(props)
    missing = parsed.atoms() - set(prop_map)
    if missing:
        raise KeyError(f"formula uses unbound propositions: {sorted(missing)}")

    budget: Optional[Budget] = None
    if max_states is not None or max_seconds is not None:
        budget = Budget(max_states=max_states, max_seconds=max_seconds,
                        raise_on_limit=raise_on_limit)
    start = time.perf_counter()
    obs = None if reporter is None else RunInstrument(
        reporter, "ltl-ndfs-fair" if weak_fairness else "ltl-ndfs", graph,
        max_states=max_states, max_seconds=max_seconds, started_at=start)
    automaton = ltl_to_buchi(negate(parsed))
    if weak_fairness:
        from .fairness import FairProduct
        product = FairProduct(graph, automaton, prop_map, budget=budget,
                              instrument=obs)
        val_cache = product._plain._val_cache
    else:
        product = _Product(graph, automaton, prop_map, budget=budget,
                           instrument=obs)
        val_cache = product._val_cache
    exhausted: Optional[str] = None
    try:
        lasso = _ndfs(product)
    except _BudgetHit as hit:
        lasso = None
        exhausted = hit.marker
    stats = product.stats
    stats.states_stored = len(val_cache)
    stats.elapsed_seconds = time.perf_counter() - start

    fairness_note = " (under weak fairness)" if weak_fairness else ""
    if exhausted is not None:
        stats.incomplete = True
        stats.budget_exhausted = exhausted
        if obs is not None:
            obs.budget(exhausted, stats.states_stored)
            obs.finish(ok=True, stats=stats, incomplete=True)
        return VerificationResult(
            ok=True,
            message=(f"search stopped early ({exhausted} exhausted); "
                     "no accepting cycle found so far" + fairness_note),
            stats=stats,
            property_text=str(parsed),
            incomplete=True,
            budget_exhausted=exhausted,
        )
    if lasso is None:
        if obs is not None:
            obs.finish(ok=True, stats=stats)
        return VerificationResult(
            ok=True,
            message=("no accepting cycle: property holds on all executions"
                     + fairness_note),
            stats=stats,
            property_text=str(parsed),
        )
    initial = graph.state(graph.initial_id)
    steps = [
        TraceStep(label, graph.state(node[0]))
        for label, node in lasso.stem + lasso.cycle
    ]
    trace = Trace(initial=initial, steps=steps, cycle_start=len(lasso.stem))
    if obs is not None:
        obs.counterexample(kind=VIOLATION_ACCEPTANCE_CYCLE,
                           message=f"execution violating {parsed} found",
                           trace_length=len(steps))
        obs.finish(ok=False, stats=stats)
    return VerificationResult(
        ok=False,
        kind=VIOLATION_ACCEPTANCE_CYCLE,
        message=(f"execution violating {parsed} found (lasso counterexample)"
                 + fairness_note),
        trace=trace,
        stats=stats,
        property_text=str(parsed),
    )


def _as_prop_map(
    props: Union[Mapping[str, Prop], Sequence[Prop]]
) -> Dict[str, Prop]:
    if isinstance(props, Mapping):
        return dict(props)
    return {p.name: p for p in props}

"""State observation: views and atomic propositions.

The model checker evaluates properties against raw interpreter states,
which are positional tuples.  :class:`StateView` wraps a state together
with its system so that predicates can be written by *name*::

    lambda v: v.global_("blue_on_bridge") > 0 and v.global_("red_on_bridge") > 0

:class:`Prop` packages such a predicate with a name (used in LTL
formulas) and an optional *dependency declaration* — which globals and
which processes' locals the predicate reads.  Dependencies power the
partial-order reduction: a transition that cannot change any declared
dependency of any tracked proposition is *invisible* and may be
collapsed.  A prop with ``None`` dependencies is treated conservatively
as depending on everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Optional, Sequence, Tuple

from ..psl.state import State
from ..psl.system import System
from ..psl.values import Message, Value


class StateView:
    """Read-only, name-based access to one state of one system."""

    __slots__ = ("system", "state")

    def __init__(self, system: System, state: State) -> None:
        self.system = system
        self.state = state

    def global_(self, name: str) -> Value:
        """Value of a global variable."""
        idx = self.system.global_index[name]
        return self.state.globals_[idx]

    def local(self, process: str, var: str) -> Value:
        """Value of a local variable of a named process instance."""
        inst = self.system.instance_by_name(process)
        return self.state.frames[inst.pid][inst.local_index[var]]

    def location(self, process: str) -> int:
        """Control location of a named process instance."""
        inst = self.system.instance_by_name(process)
        return self.state.locs[inst.pid]

    def at_end(self, process: str) -> bool:
        """True when the named process sits at a valid end location."""
        inst = self.system.instance_by_name(process)
        return self.state.locs[inst.pid] in inst.automaton.end_locations

    def terminated(self, process: str) -> bool:
        """True when the named process has no outgoing edges (finished)."""
        inst = self.system.instance_by_name(process)
        return not inst.automaton.edges_from[self.state.locs[inst.pid]]

    def chan_len(self, name: str) -> int:
        """Number of messages currently buffered on a named channel."""
        ch = self.system.channel_by_name(name)
        return len(self.state.chans[ch.index])

    def chan_contents(self, name: str) -> Tuple[Message, ...]:
        ch = self.system.channel_by_name(name)
        return self.state.chans[ch.index]

    def chan_full(self, name: str) -> bool:
        ch = self.system.channel_by_name(name)
        return len(self.state.chans[ch.index]) >= ch.capacity

    def chan_empty(self, name: str) -> bool:
        return self.chan_len(name) == 0


@dataclass(frozen=True)
class Prop:
    """A named atomic proposition over states.

    ``globals_read``/``locals_read`` optionally declare the exact state
    the predicate inspects; see the module docstring.  ``locals_read``
    holds process-instance *names* (the predicate may read any local or
    the control location of those processes).
    """

    name: str
    fn: Callable[[StateView], bool] = field(compare=False)
    globals_read: Optional[FrozenSet[str]] = None
    locals_read: Optional[FrozenSet[str]] = None

    def evaluate(self, system: System, state: State) -> bool:
        return bool(self.fn(StateView(system, state)))

    def depends_only_on_globals(self) -> bool:
        return self.globals_read is not None and self.locals_read == frozenset()


def prop(
    name: str,
    fn: Callable[[StateView], bool],
    globals_read: Optional[Sequence[str]] = None,
    locals_read: Optional[Sequence[str]] = None,
) -> Prop:
    """Convenience constructor for :class:`Prop`."""
    return Prop(
        name=name,
        fn=fn,
        globals_read=frozenset(globals_read) if globals_read is not None else None,
        locals_read=frozenset(locals_read) if locals_read is not None else None,
    )


def global_prop(name: str, fn: Callable[[StateView], bool], *globals_read: str) -> Prop:
    """A prop that reads only the named globals (POR-friendly)."""
    return Prop(
        name=name,
        fn=fn,
        globals_read=frozenset(globals_read),
        locals_read=frozenset(),
    )

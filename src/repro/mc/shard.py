"""Sharded frontier exploration: BFS waves fanned out over worker processes.

The old parallel story forked *whole verification scenarios* through a
process pool — each worker rebuilt the system, re-explored the state
space from scratch, and threw its graph away.  On the bench machine
(1 CPU) that was pure overhead, and even on real multi-core boxes the
duplicated exploration capped the achievable speedup.

This module parallelizes one level down, inside a single exploration:

* the **parent** owns the interned :class:`~repro.mc.engine.StateStore`
  and :class:`~repro.mc.engine.TransitionCache` — exactly the shared
  artifacts every checker reuses;
* **workers** are stateless expanders: each holds a private compiled
  interpreter (built once, from the pickled system) and maps chunks of
  raw state tuples to successor lists;
* the frontier advances in BFS *waves*: the parent chunks the current
  wave across the pool, interns the returned targets (deterministic
  chunk order keeps id assignment reproducible), fills the transition
  cache, and the newly interned states form the next wave.

Workers never intern, so there is no id-remapping merge step and no
lock contention on the store; the hand-off unit is a chunk of frontier
states, per the paper's observation that design-iteration verification
is dominated by re-exploration, not by coordination.

When parallelism cannot pay — one CPU, an unpicklable system, a broken
pool — :func:`shard_explore` degrades to the serial
:meth:`~repro.mc.engine.StateGraph.explore` and says so in the returned
:class:`ShardReport` (``jobs == 1`` plus a human-readable ``note``).
Set ``REPRO_FORCE_PARALLEL=1`` to override the CPU-count gate (used by
the equivalence tests, which must exercise the pool even on 1-CPU CI
runners).

The filled graph is indistinguishable from a serially explored one:
successor lists are computed by the same deterministic interpreter, so
every downstream checker — safety, liveness, POR, resilience — sees
identical transitions, verdicts, and statistics (pinned by
``tests/mc/test_shard_explore.py``).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..psl.interp import Interpreter
from ..psl.state import State
from ..psl.system import System
from .engine import CachedTransition, StateGraph, as_graph

__all__ = ["ShardReport", "parallel_worthwhile", "shard_explore"]

#: Frontier states handed to a worker per task.  Big enough to amortize
#: pickling, small enough to keep the pool busy on ragged waves.
DEFAULT_CHUNK = 256


def parallel_worthwhile() -> bool:
    """Whether fanning work out over processes can possibly pay here.

    On a single-CPU machine a worker pool only adds serialization and
    scheduling overhead, so parallel paths should degrade to serial —
    audibly, not silently.  ``REPRO_FORCE_PARALLEL=1`` overrides the
    gate (for equivalence tests on 1-CPU CI runners).
    """
    if os.environ.get("REPRO_FORCE_PARALLEL"):
        return True
    return (os.cpu_count() or 1) > 1


@dataclass
class ShardReport:
    """Outcome of one sharded exploration.

    ``jobs`` is the *effective* worker count — 1 means the run degraded
    to the serial path, and ``note`` says why.  ``waves`` counts BFS
    rounds (0 on the serial path).
    """

    states: int
    jobs: int
    waves: int = 0
    note: Optional[str] = None


# Per-worker interpreter, built once by the pool initializer.  Module
# global because ProcessPoolExecutor initializers cannot return state.
_WORKER_INTERP: Optional[Interpreter] = None


def _init_worker(payload: bytes) -> None:
    global _WORKER_INTERP
    from ..psl.jit import make_interpreter
    _WORKER_INTERP = make_interpreter(pickle.loads(payload))


def _expand_chunk(states: List[tuple]) -> List[List[tuple]]:
    """Map raw state tuples to successor triples (label, target, viol)."""
    interp = _WORKER_INTERP
    mk = State._make
    transitions = interp.transitions
    return [
        [(t.label, t.target, t.violation) for t in transitions(mk(s))]
        for s in states
    ]


def shard_explore(
    target: Union[System, Interpreter, StateGraph],
    jobs: int = 2,
    max_states: Optional[int] = None,
    chunk: int = DEFAULT_CHUNK,
    reporter=None,
) -> ShardReport:
    """Expand the reachable graph with a sharded frontier.

    Fills *target*'s shared store and transition cache exactly like
    :meth:`StateGraph.explore`, but fans each BFS wave out over
    ``jobs`` worker processes.  The graph stays lazily completable:
    ``max_states`` stops scheduling new waves once the store reaches
    the cap (the wave in flight may finish slightly past it — its
    results are valid cache entries either way).

    Degrades to the serial path (with an explanatory ``note``) when
    ``jobs <= 1``, when only one CPU is available (see
    :func:`parallel_worthwhile`), when the system does not pickle, or
    when the pool fails mid-run — partial results are kept, the serial
    sweep finishes the remainder, and the answer is identical.
    """
    graph = as_graph(target)

    def serial(note: Optional[str]) -> ShardReport:
        n = graph.explore(max_states=max_states, reporter=reporter)
        return ShardReport(states=n, jobs=1, note=note)

    if jobs <= 1:
        return serial(None)
    if not parallel_worthwhile():
        return serial(
            f"sharded exploration degraded to a serial run: only "
            f"{os.cpu_count() or 1} CPU is available, so a worker pool "
            f"is pure overhead (set REPRO_FORCE_PARALLEL=1 to override)")
    try:
        payload = pickle.dumps(graph.system)
    except Exception:
        return serial(
            "sharded exploration degraded to a serial run: the system "
            "does not pickle across the worker pool")

    obs = None
    if reporter is not None:
        from ..obs.events import RunInstrument
        obs = RunInstrument(reporter, "engine-explore", graph,
                            max_states=max_states)

    store = graph.store
    cache = graph.cache
    store_states = store._states
    succ = cache._succ
    intern = store.intern
    pending = [sid for sid in range(len(store_states)) if sid not in succ]
    waves = 0
    expanded = len(succ)
    ntrans = 0
    workers = max(2, min(jobs, os.cpu_count() or jobs))

    def finish(note: Optional[str]) -> ShardReport:
        if obs is not None:
            from .result import Statistics
            stats = Statistics(states_stored=len(store_states),
                               states_expanded=expanded,
                               transitions=ntrans)
            stats.apply_compile_stats(graph.compile_stats)
            stats.elapsed_seconds = obs.elapsed()
            obs.finish(ok=True, stats=stats)
        return ShardReport(states=len(store_states), jobs=workers,
                           waves=waves, note=note)

    try:
        with ProcessPoolExecutor(max_workers=workers,
                                 initializer=_init_worker,
                                 initargs=(payload,)) as pool:
            while pending:
                if max_states is not None and \
                        len(store_states) >= max_states:
                    return finish("state budget reached; graph remains "
                                  "lazily completable")
                chunks = [pending[i:i + chunk]
                          for i in range(0, len(pending), chunk)]
                watermark = len(store_states)
                results = pool.map(
                    _expand_chunk,
                    [[tuple(store_states[sid]) for sid in c]
                     for c in chunks])
                for c, result in zip(chunks, results):
                    for sid, succs in zip(c, result):
                        cached = tuple([
                            CachedTransition(label, intern(tgt), violation)
                            for label, tgt, violation in succs
                        ])
                        succ[sid] = cached
                        cache.misses += 1
                        expanded += 1
                        ntrans += len(cached)
                        if obs is not None:
                            obs.tick(len(store_states), expanded, ntrans,
                                     len(pending))
                waves += 1
                pending = list(range(watermark, len(store_states)))
    except Exception:
        # A broken pool (worker OOM, interpreter shutdown, ...) is not a
        # verification failure: cached waves are valid, the serial path
        # finishes the remainder, and the verdict cannot change.
        graph.explore(max_states=max_states)
        expanded = len(succ)
        ntrans = sum(len(ts) for ts in succ.values())
        workers = 1
        return finish("sharded exploration degraded to a serial run: "
                      "the worker pool failed mid-exploration")
    return finish(None)

"""Finite-state verification engine (the reproduction's stand-in for SPIN).

Layers:

* :mod:`repro.mc.explore` — exhaustive BFS safety checking (assertions,
  invariants, deadlock) with shortest counterexamples;
* :mod:`repro.mc.ltl` / :mod:`repro.mc.buchi` / :mod:`repro.mc.ndfs` —
  full LTL model checking via the GPVW Büchi construction and nested
  depth-first search;
* :mod:`repro.mc.por` — ample-set partial-order reduction for safety;
* :mod:`repro.mc.props` — named atomic propositions over system states;
* :mod:`repro.mc.engine` — the shared state-space engine: interned
  states (:class:`StateStore`), a memoized transition relation
  (:class:`TransitionCache`), and the :class:`StateGraph` façade that
  every checker accepts in place of a system, so repeated checks on
  one system pay exploration cost once.
"""

from .buchi import BuchiAutomaton, BuchiState, ltl_to_buchi
from .budget import (
    BUDGET_STATES,
    BUDGET_TIME,
    Budget,
    BudgetExceeded,
    StateLimitExceeded,
    TimeLimitExceeded,
)
from .engine import CachedTransition, StateGraph, StateStore, TransitionCache
from .shard import ShardReport, parallel_worthwhile, shard_explore
from .fairness import FairProduct
from .explore import (
    SafetyReport,
    check_safety,
    count_states,
    find_state,
    reachable_states,
    sweep_safety,
)
from .ltl import Formula, LtlSyntaxError, negate, nnf, parse_ltl
from .ndfs import check_ltl
from .por import AmpleInterpreter, check_safety_por
from .props import Prop, StateView, global_prop, prop
from .simulate import (
    ReplayError,
    SimulationRun,
    process_priority_scheduler,
    random_scheduler,
    replay,
    round_robin_scheduler,
    simulate,
)
from .result import (
    Statistics,
    Trace,
    TraceStep,
    VerificationResult,
    VIOLATION_ACCEPTANCE_CYCLE,
    VIOLATION_ASSERTION,
    VIOLATION_DEADLOCK,
    VIOLATION_INVARIANT,
)

__all__ = [
    "AmpleInterpreter",
    "BUDGET_STATES",
    "BUDGET_TIME",
    "Budget",
    "BudgetExceeded",
    "BuchiAutomaton",
    "BuchiState",
    "CachedTransition",
    "FairProduct",
    "TimeLimitExceeded",
    "Formula",
    "LtlSyntaxError",
    "Prop",
    "ReplayError",
    "SafetyReport",
    "ShardReport",
    "SimulationRun",
    "StateGraph",
    "StateLimitExceeded",
    "StateStore",
    "StateView",
    "Statistics",
    "TransitionCache",
    "Trace",
    "TraceStep",
    "VerificationResult",
    "VIOLATION_ACCEPTANCE_CYCLE",
    "VIOLATION_ASSERTION",
    "VIOLATION_DEADLOCK",
    "VIOLATION_INVARIANT",
    "check_ltl",
    "check_safety",
    "check_safety_por",
    "count_states",
    "find_state",
    "global_prop",
    "ltl_to_buchi",
    "negate",
    "nnf",
    "parallel_worthwhile",
    "parse_ltl",
    "prop",
    "process_priority_scheduler",
    "random_scheduler",
    "reachable_states",
    "replay",
    "round_robin_scheduler",
    "shard_explore",
    "simulate",
    "sweep_safety",
]

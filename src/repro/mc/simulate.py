"""Guided simulation and trace replay.

Model checking answers "can this happen?"; simulation answers "show me
one run" — SPIN pairs its verifier with `-t` trail replay and random /
interactive simulation, and so does this reproduction:

* :func:`simulate` — run one execution under a pluggable
  :class:`Scheduler` (random, round-robin, or interactive via callback),
  recording the trace;
* :func:`replay` — re-execute a :class:`~repro.mc.result.Trace` (e.g. a
  counterexample from the checker) against the interpreter, validating
  every step — the equivalent of replaying a SPIN trail file;
* :class:`SimulationRun` — the recorded run, with the same
  pretty-printing as checker traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

from ..psl.interp import Interpreter, Transition
from ..psl.state import State
from ..psl.system import System
from .result import Trace, TraceStep


class ReplayError(ValueError):
    """A trace step does not correspond to any enabled transition."""


#: A scheduler picks one of the enabled transitions (or None to stop).
Scheduler = Callable[[State, Sequence[Transition], int], Optional[Transition]]


def random_scheduler(seed: Optional[int] = None) -> Scheduler:
    """Uniformly random choice among enabled transitions."""
    rng = random.Random(seed)

    def choose(state, transitions, step):
        return rng.choice(transitions)

    return choose


def round_robin_scheduler() -> Scheduler:
    """Rotate priority over processes, taking the first enabled one.

    A deterministic, starvation-averse schedule: at step *k*, the
    process with pid ``k mod n_alive`` (among those with enabled
    transitions) goes first.
    """
    def choose(state, transitions, step):
        pids = sorted({t.label.pid for t in transitions})
        pid = pids[step % len(pids)]
        for t in transitions:
            if t.label.pid == pid:
                return t
        return transitions[0]  # pragma: no cover - pids derived from list

    return choose


def process_priority_scheduler(order: Sequence[str]) -> Scheduler:
    """Always prefer the earliest-listed process that can move.

    Useful for demonstrating starvation: put the 'spinner' first and
    watch everything else never run.
    """
    ranking = {name: i for i, name in enumerate(order)}

    def choose(state, transitions, step):
        return min(
            transitions,
            key=lambda t: ranking.get(t.label.process, len(ranking)),
        )

    return choose


@dataclass
class SimulationRun:
    """One recorded execution."""

    trace: Trace
    completed: bool  # True when the run quiesced before the step budget
    violations: List[str] = field(default_factory=list)

    @property
    def steps(self) -> List[TraceStep]:
        return self.trace.steps

    def pretty(self, max_steps: Optional[int] = None) -> str:
        return self.trace.pretty(max_steps=max_steps)


def simulate(
    target: Union[System, Interpreter],
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 1000,
) -> SimulationRun:
    """Run one execution under the given scheduler (default: random)."""
    interp = target if isinstance(target, Interpreter) else Interpreter(target)
    scheduler = scheduler if scheduler is not None else random_scheduler()
    state = interp.initial_state()
    steps: List[TraceStep] = []
    violations: List[str] = []
    completed = False
    for step_no in range(max_steps):
        transitions = interp.transitions(state)
        if not transitions:
            completed = True
            break
        choice = scheduler(state, transitions, step_no)
        if choice is None:
            break
        if choice.violation:
            violations.append(choice.violation)
        steps.append(TraceStep(choice.label, choice.target))
        state = choice.target
    return SimulationRun(
        trace=Trace(initial=interp.initial_state(), steps=steps),
        completed=completed,
        violations=violations,
    )


def replay(
    target: Union[System, Interpreter],
    trace: Trace,
) -> SimulationRun:
    """Re-execute a trace step by step, validating it against the model.

    Every recorded target state must be reachable by one enabled
    transition whose label matches on (pid, desc); otherwise the trace
    does not belong to this system and :class:`ReplayError` is raised.
    Returns the replayed run (with any assertion violations re-observed),
    which is how counterexamples can be handed to other tooling.
    """
    interp = target if isinstance(target, Interpreter) else Interpreter(target)
    state = interp.initial_state()
    if state != trace.initial:
        raise ReplayError("trace initial state does not match the system")
    steps: List[TraceStep] = []
    violations: List[str] = []
    for i, step in enumerate(trace.steps):
        for t in interp.transitions(state):
            if t.target == step.state and t.label.pid == step.label.pid \
                    and t.label.desc == step.label.desc:
                if t.violation:
                    violations.append(t.violation)
                steps.append(TraceStep(t.label, t.target))
                state = t.target
                break
        else:
            raise ReplayError(
                f"step {i + 1} ({step.label.pretty()}) is not enabled — "
                f"the trace does not fit this system"
            )
    return SimulationRun(
        trace=Trace(initial=trace.initial, steps=steps),
        completed=not interp.transitions(state),
        violations=violations,
    )

"""Verification results, statistics, and counterexample traces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..psl.interp import TransitionLabel
from ..psl.state import State


@dataclass(frozen=True)
class TraceStep:
    """One step of a counterexample: the transition taken and its target."""

    label: TransitionLabel
    state: State


@dataclass
class Trace:
    """A counterexample execution.

    ``initial`` is the system's initial state; ``steps`` lead to the
    violating state.  For liveness (lasso) counterexamples ``cycle_start``
    is the index into ``steps`` where the repeating suffix begins; it is
    ``None`` for finite safety counterexamples.
    """

    initial: State
    steps: List[TraceStep] = field(default_factory=list)
    cycle_start: Optional[int] = None

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def final_state(self) -> State:
        return self.steps[-1].state if self.steps else self.initial

    def states(self) -> List[State]:
        return [self.initial] + [s.state for s in self.steps]

    def labels(self) -> List[TransitionLabel]:
        return [s.label for s in self.steps]

    def pretty(self, max_steps: Optional[int] = None) -> str:
        lines = []
        steps = self.steps if max_steps is None else self.steps[:max_steps]
        for i, step in enumerate(steps):
            marker = ""
            if self.cycle_start is not None and i == self.cycle_start:
                marker = "  <-- cycle starts here"
            lines.append(f"{i + 1:4d}. {step.label.pretty()}{marker}")
        if max_steps is not None and len(self.steps) > max_steps:
            lines.append(f"      ... ({len(self.steps) - max_steps} more steps)")
        return "\n".join(lines)


@dataclass
class Statistics:
    """Exploration statistics, in the spirit of SPIN's run report."""

    states_stored: int = 0
    transitions: int = 0
    max_frontier: int = 0
    elapsed_seconds: float = 0.0
    #: States whose successors were actually generated.  On a complete
    #: sweep this equals ``states_stored``; on a budget-exhausted run it
    #: is the exact number of states whose transitions are included in
    #: ``transitions`` (frontier states never silently drop their work).
    states_expanded: int = 0
    #: Approximate peak byte footprint of the BFS frontier, sampled with
    #: ``sys.getsizeof`` whenever the frontier reaches a new high-water
    #: mark (container plus per-entry size; zero for non-BFS checkers).
    peak_frontier_bytes: int = 0
    #: Set when the run stopped on an exhausted exploration budget.
    incomplete: bool = False
    budget_exhausted: Optional[str] = None
    #: JIT compilation accounting for the interpreter behind this run:
    #: process programs lowered to bytecode (cache misses), programs
    #: served from the digest-keyed cache, and total codegen + bind +
    #: link time.  All zero on the tree-walk path (``REPRO_NO_JIT``).
    programs_compiled: int = 0
    compile_cache_hits: int = 0
    compile_seconds: float = 0.0

    @property
    def states_per_second(self) -> float:
        """Stored-state throughput; 0.0 when no time was recorded."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.states_stored / self.elapsed_seconds

    def merge(self, other: "Statistics") -> "Statistics":
        return Statistics(
            states_stored=self.states_stored + other.states_stored,
            transitions=self.transitions + other.transitions,
            max_frontier=max(self.max_frontier, other.max_frontier),
            elapsed_seconds=self.elapsed_seconds + other.elapsed_seconds,
            states_expanded=self.states_expanded + other.states_expanded,
            peak_frontier_bytes=max(self.peak_frontier_bytes,
                                    other.peak_frontier_bytes),
            incomplete=self.incomplete or other.incomplete,
            budget_exhausted=self.budget_exhausted or other.budget_exhausted,
            programs_compiled=self.programs_compiled + other.programs_compiled,
            compile_cache_hits=(self.compile_cache_hits
                                + other.compile_cache_hits),
            compile_seconds=self.compile_seconds + other.compile_seconds,
        )

    def apply_compile_stats(self, compile_stats) -> None:
        """Copy an interpreter's compile counters onto this run's stats."""
        if not compile_stats:
            return
        self.programs_compiled = compile_stats.get("programs_compiled", 0)
        self.compile_cache_hits = compile_stats.get("digest_hits", 0)
        self.compile_seconds = compile_stats.get("compile_seconds", 0.0)


#: Violation kinds reported by the checkers.
VIOLATION_ASSERTION = "assertion"
VIOLATION_INVARIANT = "invariant"
VIOLATION_DEADLOCK = "deadlock"
VIOLATION_ACCEPTANCE_CYCLE = "acceptance-cycle"


@dataclass
class VerificationResult:
    """Outcome of one verification run.

    ``incomplete`` marks a run that stopped because an exploration
    budget ran out before the state space was exhausted; ``ok=True``
    then means only "no violation found so far", and
    ``budget_exhausted`` names the budget that stopped it (one of the
    ``BUDGET_*`` constants in :mod:`repro.mc.budget`).  A violation
    found before the budget ran out is definitive, so failing results
    are never marked incomplete.
    """

    ok: bool
    kind: Optional[str] = None  # one of the VIOLATION_* constants, or None
    message: str = ""
    trace: Optional[Trace] = None
    stats: Statistics = field(default_factory=Statistics)
    property_text: str = ""
    incomplete: bool = False
    budget_exhausted: Optional[str] = None

    @property
    def holds(self) -> bool:
        return self.ok

    @property
    def proved(self) -> bool:
        """True only when the property holds over the *entire* space."""
        return self.ok and not self.incomplete

    def summary(self) -> str:
        if not self.ok:
            verdict = f"FAIL ({self.kind})"
        elif self.incomplete:
            verdict = "INCOMPLETE"
        else:
            verdict = "PASS"
        prop_part = f" [{self.property_text}]" if self.property_text else ""
        note = ""
        if self.incomplete:
            note = f" — ⚠ incomplete: {self.budget_exhausted or 'budget'}"
        return (
            f"{verdict}{prop_part}: {self.message or 'no errors found'} — "
            f"{self.stats.states_stored} states, "
            f"{self.stats.transitions} transitions, "
            f"{self.stats.elapsed_seconds:.3f}s{note}"
        )

    def __bool__(self) -> bool:
        return self.ok

"""LTL to Büchi automaton translation (GPVW tableau construction).

Implements the classic algorithm of Gerth, Peled, Vardi & Wolper,
*Simple On-the-fly Automatic Verification of Linear Temporal Logic*
(PSTV 1995) — the same construction SPIN uses — followed by the standard
counter-based degeneralization from a generalized Büchi automaton to an
ordinary one.

The resulting automaton is *state-labeled*: each automaton state carries
a set of literals (positive and negated atomic propositions) that must
hold in the system state read at that position of the run.  The product
construction in :mod:`repro.mc.ndfs` advances the system and the
automaton in lock-step, admitting an automaton state only when the
current system state satisfies its literals.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from .ltl import (
    AndF,
    Ap,
    FalseF,
    Formula,
    NotF,
    Next,
    OrF,
    Release,
    TrueF,
    Until,
    is_literal,
    nnf,
)


@dataclass(frozen=True)
class BuchiState:
    """One state of the (degeneralized) Büchi automaton."""

    id: int
    #: propositions that must be true in the system state read here
    positive: FrozenSet[str]
    #: propositions that must be false in the system state read here
    negative: FrozenSet[str]
    accepting: bool

    def satisfied_by(self, valuation: Dict[str, bool]) -> bool:
        """Does a truth assignment of the APs satisfy this state's label?"""
        for name in self.positive:
            if not valuation.get(name, False):
                return False
        for name in self.negative:
            if valuation.get(name, False):
                return False
        return True


@dataclass
class BuchiAutomaton:
    """A state-labeled Büchi automaton.

    ``initial`` are the states the automaton may start in (reading the
    first system state); ``successors[s.id]`` are the states reachable
    in one step.
    """

    states: List[BuchiState]
    initial: List[BuchiState]
    successors: Dict[int, List[BuchiState]]
    formula: Formula

    @property
    def n_states(self) -> int:
        return len(self.states)

    @property
    def n_accepting(self) -> int:
        return sum(1 for s in self.states if s.accepting)

    def __repr__(self) -> str:
        return (
            f"BuchiAutomaton({self.formula}, {self.n_states} states, "
            f"{self.n_accepting} accepting)"
        )


# ---------------------------------------------------------------------------
# GPVW tableau nodes
# ---------------------------------------------------------------------------

_INIT = -1  # pseudo-id marking "initial" incoming edges


@dataclass
class _Node:
    id: int
    incoming: Set[int] = field(default_factory=set)
    new: Set[Formula] = field(default_factory=set)
    old: Set[Formula] = field(default_factory=set)
    next: Set[Formula] = field(default_factory=set)


class _Builder:
    def __init__(self) -> None:
        self._ids = itertools.count()
        self.nodes: List[_Node] = []

    def fresh(self, incoming: Set[int], new: Set[Formula], old: Set[Formula],
              nxt: Set[Formula]) -> _Node:
        return _Node(next(self._ids), set(incoming), set(new), set(old), set(nxt))

    def expand(self, node: _Node) -> None:
        if not node.new:
            for existing in self.nodes:
                if existing.old == node.old and existing.next == node.next:
                    existing.incoming |= node.incoming
                    return
            self.nodes.append(node)
            successor = self.fresh({node.id}, set(node.next), set(), set())
            self.expand(successor)
            return

        eta = node.new.pop()
        if isinstance(eta, FalseF):
            return  # contradiction: discard
        if is_literal(eta):
            if _contradicts(eta, node.old):
                return
            if not isinstance(eta, TrueF):
                node.old.add(eta)
            self.expand(node)
            return
        if isinstance(eta, AndF):
            for sub in (eta.left, eta.right):
                if sub not in node.old:
                    node.new.add(sub)
            node.old.add(eta)
            self.expand(node)
            return
        if isinstance(eta, Next):
            node.old.add(eta)
            node.next.add(eta.operand)
            self.expand(node)
            return
        if isinstance(eta, OrF):
            n1 = self.fresh(node.incoming, node.new | _fresh_subs({eta.left}, node.old),
                            node.old | {eta}, node.next)
            n2 = self.fresh(node.incoming, node.new | _fresh_subs({eta.right}, node.old),
                            node.old | {eta}, node.next)
            self.expand(n1)
            self.expand(n2)
            return
        if isinstance(eta, Until):
            # l U r  =  r  |  (l & X(l U r))
            n1 = self.fresh(node.incoming, node.new | _fresh_subs({eta.left}, node.old),
                            node.old | {eta}, node.next | {eta})
            n2 = self.fresh(node.incoming, node.new | _fresh_subs({eta.right}, node.old),
                            node.old | {eta}, node.next)
            self.expand(n1)
            self.expand(n2)
            return
        if isinstance(eta, Release):
            # l R r  =  (l & r)  |  (r & X(l R r))
            n1 = self.fresh(node.incoming,
                            node.new | _fresh_subs({eta.left, eta.right}, node.old),
                            node.old | {eta}, node.next)
            n2 = self.fresh(node.incoming, node.new | _fresh_subs({eta.right}, node.old),
                            node.old | {eta}, node.next | {eta})
            self.expand(n1)
            self.expand(n2)
            return
        raise TypeError(f"formula not in NNF: {eta}")


def _fresh_subs(formulas: Set[Formula], old: Set[Formula]) -> Set[Formula]:
    return {f for f in formulas if f not in old}


def _contradicts(literal: Formula, old: Set[Formula]) -> bool:
    if isinstance(literal, Ap):
        return NotF(literal) in old
    if isinstance(literal, NotF):
        return literal.operand in old
    return False


# ---------------------------------------------------------------------------
# Public construction
# ---------------------------------------------------------------------------

def ltl_to_buchi(formula: Formula) -> BuchiAutomaton:
    """Translate an LTL formula into a (degeneralized) Büchi automaton.

    The input is normalized with :func:`~repro.mc.ltl.nnf` internally, so
    any formula is accepted.  The automaton accepts exactly the infinite
    AP-sequences satisfying the formula.
    """
    normalized = nnf(formula)
    builder = _Builder()
    root = builder.fresh({_INIT}, {normalized}, set(), set())
    builder.expand(root)
    nodes = builder.nodes

    # Generalized acceptance: one set per Until subformula.
    untils = _until_subformulas(normalized)
    acceptance_sets: List[Set[int]] = []
    for u in untils:
        acceptance_sets.append(
            {n.id for n in nodes if u not in n.old or u.right in n.old or
             (isinstance(u.right, TrueF))}
        )
    k = len(acceptance_sets)

    # Adjacency of the generalized automaton: q -> q' iff q in q'.incoming.
    gba_succ: Dict[int, List[_Node]] = {n.id: [] for n in nodes}
    gba_init: List[_Node] = []
    for n in nodes:
        for src in n.incoming:
            if src == _INIT:
                gba_init.append(n)
            elif src in gba_succ:
                gba_succ[src].append(n)

    # Degeneralize with the standard acceptance counter.
    def advance(counter: int, node_id: int) -> int:
        if counter == k:
            counter = 0
        while counter < k and node_id in acceptance_sets[counter]:
            counter += 1
        return counter

    node_by_id = {n.id: n for n in nodes}
    ba_states: Dict[Tuple[int, int], BuchiState] = {}
    ba_succ: Dict[int, List[BuchiState]] = {}
    sid = itertools.count()

    def get_state(node_id: int, counter: int) -> BuchiState:
        key = (node_id, counter)
        existing = ba_states.get(key)
        if existing is not None:
            return existing
        node = node_by_id[node_id]
        pos = frozenset(f.name for f in node.old if isinstance(f, Ap))
        neg = frozenset(
            f.operand.name
            for f in node.old
            if isinstance(f, NotF) and isinstance(f.operand, Ap)
        )
        state = BuchiState(
            id=next(sid), positive=pos, negative=neg, accepting=(counter == k)
        )
        ba_states[key] = state
        ba_succ[state.id] = []
        return state

    # Build reachable part of the degeneralized automaton.
    initial_states: List[BuchiState] = []
    work: List[Tuple[int, int]] = []
    for n in gba_init:
        counter = advance(0, n.id)
        st = get_state(n.id, counter)
        if st not in initial_states:
            initial_states.append(st)
        work.append((n.id, counter))
    seen: Set[Tuple[int, int]] = set(work)
    while work:
        node_id, counter = work.pop()
        src_state = get_state(node_id, counter)
        base = 0 if counter == k else counter
        for succ_node in gba_succ[node_id]:
            succ_counter = advance(base, succ_node.id)
            dst_state = get_state(succ_node.id, succ_counter)
            if dst_state not in ba_succ[src_state.id]:
                ba_succ[src_state.id].append(dst_state)
            key = (succ_node.id, succ_counter)
            if key not in seen:
                seen.add(key)
                work.append(key)

    return BuchiAutomaton(
        states=list(ba_states.values()),
        initial=initial_states,
        successors=ba_succ,
        formula=formula,
    )


def _until_subformulas(formula: Formula) -> List[Until]:
    out: List[Until] = []
    seen: Set[Formula] = set()

    def visit(f: Formula) -> None:
        if f in seen:
            return
        seen.add(f)
        if isinstance(f, Until):
            out.append(f)
        for attr in ("operand", "left", "right"):
            sub = getattr(f, attr, None)
            if isinstance(sub, Formula):
                visit(sub)

    visit(formula)
    return out

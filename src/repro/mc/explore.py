"""Exhaustive safety exploration: assertions, invariants, deadlocks.

This is the reproduction's stand-in for a SPIN safety run.  It performs a
breadth-first search over the reachable state space of a PSL system,
checking:

* **embedded assertions** — ``Assert`` statements inside process bodies
  (reported when the asserting transition executes);
* **invariants** — named :class:`~repro.mc.props.Prop` predicates that
  must hold in every reachable state;
* **deadlock** — a state with no outgoing transitions in which at least
  one process is not at a valid end location (Promela's "invalid end
  state").

BFS yields shortest counterexamples, mirroring SPIN's ``-i`` iterative
shortening in spirit.  Exploration stops at the first violation unless
``stop_at_first=False``, in which case all violations are collected and
the full space is swept.

All entry points accept an exploration budget (``max_states``,
``max_seconds``).  An exhausted budget stops the sweep where it is and
returns a *partial* result flagged ``incomplete=True``; passing
``raise_on_limit=True`` restores the historical hard
:class:`StateLimitExceeded` stop.

Every entry point also accepts a shared
:class:`~repro.mc.engine.StateGraph` in place of a system or
interpreter.  The graph memoizes successor generation, so running
several checks against the same graph pays the exploration cost once —
the state-space analogue of the paper's model reuse.
"""

from __future__ import annotations

import gc
import sys
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..obs.events import RunInstrument
from ..obs.reporters import Reporter
from ..psl.interp import Interpreter, TransitionLabel
from ..psl.state import State
from ..psl.system import System
from .budget import (  # noqa: F401  (re-exported for backward compatibility)
    Budget,
    BudgetExceeded,
    StateLimitExceeded,
    TimeLimitExceeded,
)
from .engine import StateGraph, as_graph
from .props import Prop, StateView
from .result import (
    Statistics,
    Trace,
    TraceStep,
    VerificationResult,
    VIOLATION_ASSERTION,
    VIOLATION_DEADLOCK,
    VIOLATION_INVARIANT,
)

#: Any object the safety checkers can explore.
Target = Union[System, Interpreter, StateGraph]


@dataclass
class SafetyReport:
    """Full report of a safety sweep (possibly multiple violations).

    ``incomplete``/``budget_exhausted`` mirror the flags on
    :class:`~repro.mc.result.VerificationResult`: set when the sweep
    stopped on an exhausted exploration budget.
    """

    results: List[VerificationResult] = field(default_factory=list)
    stats: Statistics = field(default_factory=Statistics)
    incomplete: bool = False
    budget_exhausted: Optional[str] = None

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results) if self.results else True


@contextmanager
def _gc_paused():
    """Pause the cyclic GC for the duration of a dense cold walk.

    States and transitions are immutable tuples — acyclic by
    construction — so plain reference counting reclaims every dropped
    object; all the cyclic collector does during a walk is repeatedly
    re-scan the steadily growing retained graph (measured at ~30% of a
    cold sweep on the gas-station workload).  Collection resumes as
    soon as the walk finishes, so user predicates that do build cycles
    are still reclaimed — just after the sweep instead of during it.
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _sample_frontier(stats: Statistics, queue: "deque[int]") -> None:
    """Record the frontier's approximate byte footprint at a new peak."""
    size = sys.getsizeof(queue)
    if queue:
        size += len(queue) * sys.getsizeof(queue[0])
    if size > stats.peak_frontier_bytes:
        stats.peak_frontier_bytes = size


def _rebuild_trace(
    graph: StateGraph,
    initial: int,
    violating: int,
    parents: Dict[int, Tuple[Optional[int], Optional[TransitionLabel]]],
    extra: Optional[TraceStep] = None,
) -> Trace:
    steps: List[TraceStep] = []
    cur: Optional[int] = violating
    while cur is not None and cur != initial:
        prev, label = parents[cur]
        assert label is not None
        steps.append(TraceStep(label, graph.state(cur)))
        cur = prev
    steps.reverse()
    if extra is not None:
        steps.append(extra)
    return Trace(initial=graph.state(initial), steps=steps)


def check_safety(
    target: Target,
    invariants: Sequence[Prop] = (),
    check_deadlock: bool = True,
    check_assertions: bool = True,
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
    stop_at_first: bool = True,
    raise_on_limit: bool = False,
    reporter: Optional[Reporter] = None,
    stop: Optional[Callable[[], bool]] = None,
) -> VerificationResult:
    """Run a safety sweep and return the first (or only) result.

    When ``stop_at_first`` is false and several violations exist, the
    returned result is the first one found; use :func:`sweep_safety` for
    the full report.  ``reporter`` receives the run's engine events
    (see :mod:`repro.obs`).  ``stop`` is polled like a budget limit so
    an external interrupt (Ctrl-C in an exploration) yields a graceful
    partial result.
    """
    report = sweep_safety(
        target,
        invariants=invariants,
        check_deadlock=check_deadlock,
        check_assertions=check_assertions,
        max_states=max_states,
        max_seconds=max_seconds,
        stop_at_first=stop_at_first,
        raise_on_limit=raise_on_limit,
        reporter=reporter,
        stop=stop,
    )
    for r in report.results:
        if not r.ok:
            return r
    if report.incomplete:
        return VerificationResult(
            ok=True,
            message=(
                "exploration stopped early "
                f"({report.budget_exhausted} exhausted); "
                "no violations found so far"
            ),
            stats=report.stats,
            property_text=_property_text(invariants, check_deadlock),
            incomplete=True,
            budget_exhausted=report.budget_exhausted,
        )
    return VerificationResult(
        ok=True,
        message="no assertion, invariant, or deadlock violations",
        stats=report.stats,
        property_text=_property_text(invariants, check_deadlock),
    )


def _property_text(invariants: Sequence[Prop], check_deadlock: bool) -> str:
    parts = [f"invariant {p.name}" for p in invariants]
    if check_deadlock:
        parts.append("deadlock-freedom")
    return ", ".join(parts) if parts else "assertions"


def sweep_safety(
    target: Target,
    invariants: Sequence[Prop] = (),
    check_deadlock: bool = True,
    check_assertions: bool = True,
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
    stop_at_first: bool = True,
    raise_on_limit: bool = False,
    reporter: Optional[Reporter] = None,
    stop: Optional[Callable[[], bool]] = None,
) -> SafetyReport:
    """Breadth-first safety exploration; see :func:`check_safety`."""
    graph = as_graph(target)
    system = graph.system
    budget = Budget(max_states=max_states, max_seconds=max_seconds,
                    raise_on_limit=raise_on_limit, stop=stop)
    start = budget.started_at
    obs = None if reporter is None else RunInstrument(
        reporter, "safety-bfs", graph, max_states=max_states,
        max_seconds=max_seconds, started_at=start)

    initial = graph.initial_id
    parents: Dict[int, Tuple[Optional[int], Optional[TransitionLabel]]] = {
        initial: (None, None)
    }
    queue: deque[int] = deque([initial])
    stats = Statistics(states_stored=1, max_frontier=1)
    stats.apply_compile_stats(graph.compile_stats)
    _sample_frontier(stats, queue)
    report = SafetyReport(stats=stats)

    # Statistics counters live in plain locals while the sweep runs —
    # dataclass attribute read-modify-write is measurable at ~100k
    # transitions/s — and ``flush`` publishes them whenever the stats
    # object escapes: on a violation, a budget stop, or completion.
    n_stored = stats.states_stored
    n_expanded = stats.states_expanded
    n_trans = stats.transitions
    max_frontier = stats.max_frontier

    def flush() -> None:
        stats.states_stored = n_stored
        stats.states_expanded = n_expanded
        stats.transitions = n_trans
        stats.max_frontier = max_frontier

    def done() -> SafetyReport:
        flush()
        if obs is not None:
            if report.budget_exhausted is not None:
                obs.budget(report.budget_exhausted, stats.states_stored)
            obs.finish(ok=report.ok, stats=stats,
                       incomplete=report.incomplete)
        return report

    def fail(kind: str, message: str, trace: Trace) -> bool:
        """Record a violation; return True if exploration should stop."""
        flush()
        stats.elapsed_seconds = time.perf_counter() - start
        report.results.append(
            VerificationResult(
                ok=False,
                kind=kind,
                message=message,
                trace=trace,
                stats=stats,
                property_text=_property_text(invariants, check_deadlock),
            )
        )
        if obs is not None:
            obs.counterexample(kind=kind, message=message,
                               trace_length=len(trace.steps))
        return stop_at_first

    # Check invariants on the initial state before exploring.
    for p in invariants:
        if not p.evaluate(system, graph.state(initial)):
            if fail(
                VIOLATION_INVARIANT,
                f"invariant {p.name!r} violated in the initial state",
                Trace(initial=graph.state(initial)),
            ):
                stats.elapsed_seconds = time.perf_counter() - start
                return done()

    # Hot-loop bindings: the BFS below visits every cached transition of
    # every reachable state, so attribute lookups and delegation frames
    # (graph.transitions -> cache.transitions -> dict.get) are hoisted
    # out of the loop, and the compiled driver (when present) is called
    # directly on a cache miss instead of through the cache's method.
    # ``unbounded`` budgets skip the per-state poll entirely —
    # ``Budget.exceeded`` can never fire without limits.
    cache = graph.cache
    cached_succ = cache._succ
    compute_transitions = cache.transitions
    drive = cache._drive
    store_states = graph.store._states
    state_of = graph.store.state
    unbounded = budget.unbounded
    inv_fns = [(p, p.fn) for p in invariants]
    popleft = queue.popleft
    push = queue.append

    # Dense cold walk: on a *cold* store with a compiled driver, BFS
    # discovery order is exactly interning order — every newly seen
    # target receives the next dense id — so the frontier is the
    # integer range [expanded, stored), "is this target new?" is a
    # single integer comparison, and the parent map is an append-only
    # list.  The deque and the per-target dict probes disappear.
    # Verdicts, traces, and statistics are identical to the general
    # loop below (the differential and cold≡warm suites pin this); the
    # general loop remains the only path for warm graphs (whose
    # interning order may stem from another checker's visit order),
    # budgeted runs, and instrumented runs.
    if (drive is not None and obs is None and unbounded
            and len(store_states) == 1 and not cached_succ):
        dense_parents: List[Tuple[Optional[int], Optional[TransitionLabel]]] \
            = [(None, None)]
        parents = dense_parents  # type: ignore[assignment]
        append_parent = dense_parents.append
        sid = 0
        with _gc_paused():
            while sid < n_stored:
                transitions = cached_succ[sid] = tuple(drive(store_states[sid]))
                cache.misses += 1
                n_trans += len(transitions)
                n_expanded += 1
                if not transitions and check_deadlock \
                        and not graph.is_valid_end_state(sid):
                    blocked = ", ".join(
                        i.name for i in graph.blocked_processes(sid))
                    if fail(
                        VIOLATION_DEADLOCK,
                        f"invalid end state (deadlock); "
                        f"blocked processes: {blocked}",
                        _rebuild_trace(graph, initial, sid, parents),
                    ):
                        return done()
                for t in transitions:
                    if check_assertions and t.violation:
                        trace = _rebuild_trace(
                            graph, initial, sid, parents,
                            extra=TraceStep(t.label, state_of(t.target)),
                        )
                        if fail(VIOLATION_ASSERTION, t.violation, trace):
                            return done()
                    target = t.target
                    if target >= n_stored:
                        append_parent((sid, t.label))
                        n_stored += 1
                        for p, fn in inv_fns:
                            if not fn(StateView(system, state_of(target))):
                                trace = _rebuild_trace(
                                    graph, initial, target, parents)
                                if fail(
                                    VIOLATION_INVARIANT,
                                    f"invariant {p.name!r} violated",
                                    trace,
                                ):
                                    return done()
                frontier = n_stored - sid - 1
                if frontier > max_frontier:
                    max_frontier = frontier
                sid += 1
        if max_frontier > 1:
            _sample_frontier(stats, deque(range(max_frontier)))
        stats.elapsed_seconds = time.perf_counter() - start
        return done()

    exhausted: Optional[str] = None
    while queue:
        # Check the budget *before* popping: an exhausted budget must not
        # silently discard a frontier state whose expansion would then be
        # missing from the partial statistics.
        if not unbounded:
            flush()
            exhausted = budget.exceeded(n_stored)
            if exhausted is not None:
                break
        sid = popleft()
        transitions = cached_succ.get(sid)
        if transitions is None:
            if drive is not None:
                transitions = cached_succ[sid] = tuple(drive(store_states[sid]))
                cache.misses += 1
            else:
                transitions = compute_transitions(sid)
        n_trans += len(transitions)
        n_expanded += 1
        if obs is not None:
            flush()
            obs.tick(n_stored, n_expanded, n_trans, len(queue))

        if not transitions and check_deadlock and not graph.is_valid_end_state(sid):
            blocked = ", ".join(i.name for i in graph.blocked_processes(sid))
            if fail(
                VIOLATION_DEADLOCK,
                f"invalid end state (deadlock); blocked processes: {blocked}",
                _rebuild_trace(graph, initial, sid, parents),
            ):
                return done()

        for t in transitions:
            if check_assertions and t.violation:
                trace = _rebuild_trace(
                    graph, initial, sid, parents,
                    extra=TraceStep(t.label, state_of(t.target)),
                )
                if fail(VIOLATION_ASSERTION, t.violation, trace):
                    return done()
            target = t.target
            if target in parents:
                continue
            parents[target] = (sid, t.label)
            n_stored += 1
            if not unbounded:
                flush()
                exhausted = budget.exceeded(n_stored)
                if exhausted is not None:
                    break
            for p, fn in inv_fns:
                if not fn(StateView(system, state_of(target))):
                    trace = _rebuild_trace(graph, initial, target, parents)
                    if fail(
                        VIOLATION_INVARIANT,
                        f"invariant {p.name!r} violated",
                        trace,
                    ):
                        return done()
            push(target)
            if len(queue) > max_frontier:
                max_frontier = len(queue)
                _sample_frontier(stats, queue)
        if exhausted is not None:
            break

    stats.elapsed_seconds = time.perf_counter() - start
    if exhausted is not None:
        report.incomplete = True
        report.budget_exhausted = exhausted
        stats.incomplete = True
        stats.budget_exhausted = exhausted
    return done()


def count_states(
    target: Target,
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
    raise_on_limit: bool = False,
    reporter: Optional[Reporter] = None,
) -> Statistics:
    """Count reachable states/transitions without checking anything.

    On an exhausted budget the partial tally is returned with
    ``stats.incomplete`` set (or :class:`StateLimitExceeded` /
    :class:`TimeLimitExceeded` raised in ``raise_on_limit`` mode).
    """
    graph = as_graph(target)
    budget = Budget(max_states=max_states, max_seconds=max_seconds,
                    raise_on_limit=raise_on_limit)
    start = budget.started_at
    obs = None if reporter is None else RunInstrument(
        reporter, "count-states", graph, max_states=max_states,
        max_seconds=max_seconds, started_at=start)
    initial = graph.initial_id
    seen = {initial}
    queue: deque[int] = deque([initial])
    stats = Statistics(states_stored=1, max_frontier=1)
    stats.apply_compile_stats(graph.compile_stats)
    _sample_frontier(stats, queue)
    cache = graph.cache
    cached_succ = cache._succ
    compute_transitions = cache.transitions
    drive = cache._drive
    store_states = graph.store._states
    unbounded = budget.unbounded
    popleft = queue.popleft
    push = queue.append
    seen_add = seen.add
    # Counters in locals; published to the dataclass after the walk.
    n_stored = stats.states_stored
    n_expanded = stats.states_expanded
    n_trans = stats.transitions
    max_frontier = stats.max_frontier
    # Dense cold walk (see sweep_safety): on a cold store BFS discovery
    # order is interning order, so counting needs no seen-set at all —
    # the stored count *is* the store's length.
    if (drive is not None and obs is None and unbounded
            and len(store_states) == 1 and not cached_succ):
        sid = 0
        with _gc_paused():
            while sid < len(store_states):
                transitions = cached_succ[sid] = tuple(drive(store_states[sid]))
                cache.misses += 1
                n_expanded += 1
                n_trans += len(transitions)
                frontier = len(store_states) - sid - 1
                if frontier > max_frontier:
                    max_frontier = frontier
                sid += 1
        n_stored = len(store_states)
        if max_frontier > 1:
            _sample_frontier(stats, deque(range(max_frontier)))
        stats.states_stored = n_stored
        stats.states_expanded = n_expanded
        stats.transitions = n_trans
        stats.max_frontier = max_frontier
        stats.elapsed_seconds = time.perf_counter() - start
        return stats

    exhausted: Optional[str] = None
    while queue and exhausted is None:
        sid = popleft()
        transitions = cached_succ.get(sid)
        if transitions is None:
            if drive is not None:
                transitions = cached_succ[sid] = tuple(drive(store_states[sid]))
                cache.misses += 1
            else:
                transitions = compute_transitions(sid)
        n_expanded += 1
        if obs is not None:
            obs.tick(n_stored, n_expanded, n_trans, len(queue))
        for t in transitions:
            n_trans += 1
            target = t.target
            if target not in seen:
                seen_add(target)
                n_stored += 1
                if not unbounded:
                    exhausted = budget.exceeded(n_stored)
                    if exhausted is not None:
                        break
                push(target)
        if len(queue) > max_frontier:
            max_frontier = len(queue)
            _sample_frontier(stats, queue)
    stats.states_stored = n_stored
    stats.states_expanded = n_expanded
    stats.transitions = n_trans
    stats.max_frontier = max_frontier
    stats.elapsed_seconds = time.perf_counter() - start
    if exhausted is not None:
        stats.incomplete = True
        stats.budget_exhausted = exhausted
    if obs is not None:
        if exhausted is not None:
            obs.budget(exhausted, stats.states_stored)
        obs.finish(ok=True, stats=stats, incomplete=stats.incomplete)
    return stats


def reachable_states(
    target: Target,
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
) -> List[State]:
    """Materialize the reachable state set (testing/analysis helper).

    A silently truncated state list would be a trap, so this helper
    always raises on an exhausted budget.
    """
    graph = as_graph(target)
    budget = Budget(max_states=max_states, max_seconds=max_seconds,
                    raise_on_limit=True)
    initial = graph.initial_id
    seen = {initial}
    order = [initial]
    queue: deque[int] = deque([initial])
    while queue:
        sid = queue.popleft()
        for t in graph.transitions(sid):
            if t.target not in seen:
                seen.add(t.target)
                order.append(t.target)
                budget.exceeded(len(seen))
                queue.append(t.target)
    return [graph.state(sid) for sid in order]


def find_state(
    target: Target,
    predicate: Prop,
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
    reporter: Optional[Reporter] = None,
) -> Optional[Trace]:
    """Search for a reachable state satisfying *predicate*.

    Returns the shortest trace to such a state, or ``None`` if no
    reachable state satisfies it.  This is the existential dual of an
    invariant check and is used by the Figure-4 scenario experiments
    ("there exists an execution where SEND_SUCC precedes delivery").

    ``None`` is a definite answer, so an exhausted budget always raises
    (:class:`StateLimitExceeded` / :class:`TimeLimitExceeded`) rather
    than degrading to a misleading "not found".
    """
    graph = as_graph(target)
    system = graph.system
    budget = Budget(max_states=max_states, max_seconds=max_seconds,
                    raise_on_limit=True)
    obs = None if reporter is None else RunInstrument(
        reporter, "find-state", graph, max_states=max_states,
        max_seconds=max_seconds, started_at=budget.started_at)
    initial = graph.initial_id
    if predicate.evaluate(system, graph.state(initial)):
        if obs is not None:
            obs.finish(ok=True, stats=Statistics(states_stored=1))
        return Trace(initial=graph.state(initial))
    parents: Dict[int, Tuple[Optional[int], Optional[TransitionLabel]]] = {
        initial: (None, None)
    }
    queue: deque[int] = deque([initial])
    expanded = 0

    def found(trace: Optional[Trace]) -> Optional[Trace]:
        if obs is not None:
            stats = Statistics(states_stored=len(parents),
                               states_expanded=expanded)
            stats.apply_compile_stats(graph.compile_stats)
            stats.elapsed_seconds = time.perf_counter() - budget.started_at
            obs.finish(ok=True, stats=stats)
        return trace

    cache = graph.cache
    cached_succ = cache._succ
    compute_transitions = cache.transitions
    drive = cache._drive
    store_states = graph.store._states
    state_of = graph.store.state
    unbounded = budget.unbounded
    pred_fn = predicate.fn

    # Dense cold walk (see sweep_safety): discovery order == interning
    # order on a cold store, so the frontier is an integer range and
    # the parent map an append-only list.
    if (drive is not None and obs is None and unbounded
            and len(store_states) == 1 and not cached_succ):
        dense_parents: List[Tuple[Optional[int], Optional[TransitionLabel]]] \
            = [(None, None)]
        parents = dense_parents  # type: ignore[assignment]
        append_parent = dense_parents.append
        n_parents = 1
        sid = 0
        with _gc_paused():
            while sid < n_parents:
                transitions = cached_succ[sid] = tuple(drive(store_states[sid]))
                cache.misses += 1
                expanded += 1
                for t in transitions:
                    target = t.target
                    if target >= n_parents:
                        append_parent((sid, t.label))
                        n_parents += 1
                        if pred_fn(StateView(system, state_of(target))):
                            return found(
                                _rebuild_trace(graph, initial, target, parents))
                sid += 1
        return found(None)

    popleft = queue.popleft
    push = queue.append
    while queue:
        sid = popleft()
        expanded += 1
        if obs is not None:
            obs.tick(len(parents), expanded, 0, len(queue))
        transitions = cached_succ.get(sid)
        if transitions is None:
            if drive is not None:
                transitions = cached_succ[sid] = tuple(drive(store_states[sid]))
                cache.misses += 1
            else:
                transitions = compute_transitions(sid)
        for t in transitions:
            target = t.target
            if target in parents:
                continue
            parents[target] = (sid, t.label)
            if not unbounded:
                budget.exceeded(len(parents))
            if pred_fn(StateView(system, state_of(target))):
                return found(_rebuild_trace(graph, initial, target, parents))
            push(target)
    return found(None)

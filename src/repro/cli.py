"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``catalog`` — print the building-block library (the paper's Figure 1);
* ``verify {bridge | abp | gas} [--report PATH] [--progress]
  [--log-jsonl PATH]`` — verify a case study and optionally write a
  self-contained run report (verdict, statistics, counterexample MSC,
  block-level explanation); ``gas`` takes ``--customers N`` and
  ``--selective`` (the fixed design; plain delivery is expected to
  FAIL on the crossed-delivery race);
* ``report PATH [--format {md,html,json}] [--out FILE]`` — re-render a
  saved run report (renders are pure functions of the JSON payload, so
  re-rendering is byte-identical);
* ``bridge [--variant V] [--cars N] [--trips T] [--composed]
  [--max-states S] [--max-seconds T]`` — build and verify one of the
  single-lane-bridge designs;
* ``resilience {abp | bridge} [--max-states S] [--max-seconds T]
  [--jobs N]`` — sweep fault-injection scenarios over a system and
  print the verdict matrix; ``--jobs`` fans independent scenarios out
  over a process pool;
* ``explore {bridge | pc} [--jobs N] [--cache-dir DIR] [--no-cache]
  [--backend {auto,jsonl,sqlite}] [--cache-max-mb MB] [--first-pass]
  [--max-states S] [--max-seconds T] [--run-id ID] [--resume ID]
  [--retries N] [--job-timeout T]`` — enumerate a design space, verify
  every variant (served from the persistent content-addressed cache
  when fingerprints match a previous run), and print the Pareto-ranked
  verdict table.  ``--cache-dir`` defaults to ``$REPRO_CACHE_DIR`` or
  ``.repro-cache``; ``--backend`` picks the verdict store (default
  auto-detect: an existing directory keeps its format, a fresh one
  gets the concurrent-safe sqlite store).  Every cached run journals
  per-job progress under ``<cache>/runs/<run-id>``; an interrupted run
  (Ctrl-C exits with code 2) resumes with ``--resume ID``, re-running
  only the jobs that never finished;
* ``cache {info | verify | compact | migrate | fsck} [--cache-dir DIR]
  [--backend B] [--cache-max-mb MB]`` — inspect the result cache,
  audit its checksums and integrity, compact/vacuum it, convert a
  JSONL cache to the sqlite backend verdict-equivalently, or repair
  damage (``fsck`` drops corrupt records, or quarantines an unreadable
  sqlite store and starts fresh — verdicts degrade to misses, never to
  wrong answers);
* ``serve [--host H] [--port P] [--cache-dir DIR] [--workers N]
  [--inline] [--retries N] [--job-timeout T] [--drain-timeout T]`` —
  run the verification service: a stdlib HTTP daemon that schedules
  submitted jobs on a worker pool, coalesces identical in-flight
  submissions onto one computation, serves warm verdicts from the
  shared sqlite cache, and streams per-job events as NDJSON.  SIGTERM
  drains gracefully: in-flight jobs finish (bounded by
  ``--drain-timeout``), the rest stay journaled for the next daemon
  (exit 0 on a clean drain, 2 when jobs were left behind);
* ``submit {gas | bridge | abp | explore-bridge | explore-pc}
  [--url U] [--no-wait] [--follow] [--report PATH] ...`` — submit a
  job to a running service and (by default) wait for its verdict; the
  exit code is the job's own, and ``--report`` saves the same run
  report a local run would have written;
* ``status [JOB_ID] [--url U] [--events]`` — service summary and job
  list, or one job's detail (``--events`` dumps its event stream);
* ``sweep [--messages K]`` — verify every send-port/channel combination
  on a producer/consumer pair and tabulate the verdicts (deprecated:
  a fixed-function subset of ``explore``);
* ``export [--out FILE]`` — emit the Promela model of a Figure 2(a)
  connector system;
* ``graph {block KIND | bridge} [--out FILE]`` — emit Graphviz/DOT for
  a block's state machine or the bridge topology.

``verify``, ``bridge``, ``resilience``, and ``explore`` all take the
observability flags ``--progress`` (live status line on stderr),
``--log-jsonl PATH`` (append engine events as JSON lines), and
``--report PATH`` (write a run report; ``.json`` is the canonical
re-renderable format).

The CLI is a thin veneer over the library — everything it does is two
or three calls on the public API.

Exit codes (pinned by the integration tests):

====  =====================================================================
code  meaning
====  =====================================================================
0     the run completed and the outcome was the expected one
1     a property violation (or an unexpected pass) — the *model* failed
2     partial result: an exploration budget ran out, or the run was
      interrupted (SIGINT/SIGTERM) — resumable where a journal exists
3     internal failure: the *tool* (not the model) errored out
====  =====================================================================
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Tuple


def _add_jit_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument("--no-jit", action="store_true",
                   help="force the tree-walk interpreter instead of the "
                        "compiled hot path (debugging fallback; equivalent "
                        "to REPRO_NO_JIT=1, verdicts are identical)")


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--progress", action="store_true",
                   help="live progress line on stderr while exploring")
    p.add_argument("--log-jsonl", metavar="PATH", default=None,
                   help="append engine events to PATH, one JSON object "
                        "per line")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="write a self-contained run report; .json is "
                        "canonical (re-render with 'repro report'), "
                        ".md/.html save renderings directly")


def _build_reporter(args: argparse.Namespace) -> Tuple[object, object]:
    """Assemble the reporter stack the observability flags ask for.

    Returns ``(reporter, collector)``; ``collector`` buffers the event
    stream for ``--report`` and is None unless that flag was given.
    """
    reporters = []
    collector = None
    if getattr(args, "progress", False):
        from repro.obs import ProgressReporter
        reporters.append(ProgressReporter())
    if getattr(args, "log_jsonl", None):
        from repro.obs import JsonlReporter
        reporters.append(JsonlReporter(args.log_jsonl))
    if getattr(args, "report", None):
        from repro.obs import CollectingReporter
        collector = CollectingReporter()
        reporters.append(collector)
    if not reporters:
        return None, None
    if len(reporters) == 1:
        return reporters[0], collector
    from repro.obs import TeeReporter
    return TeeReporter(reporters), collector


def _command_line(args: argparse.Namespace) -> str:
    """The invocation recorded in run reports."""
    return "repro " + " ".join(getattr(args, "argv", []))


def _cmd_catalog(args: argparse.Namespace) -> int:
    from repro.core import figure1_table
    print(figure1_table())
    return 0


def _compile_line(stats) -> Optional[str]:
    """One-line JIT accounting, or ``None`` on the tree-walk path."""
    if stats.programs_compiled == 0 and stats.compile_cache_hits == 0:
        return None
    return (f"compile: {stats.programs_compiled} programs lowered, "
            f"{stats.compile_cache_hits} served from cache, "
            f"{stats.compile_seconds * 1000:.1f} ms")


def _bridge_arch(args: argparse.Namespace):
    from repro.systems.bridge import (
        BridgeConfig,
        build_at_most_n_bridge,
        build_exactly_n_bridge,
        fix_exactly_n_bridge,
    )

    config = BridgeConfig(cars_per_side=args.cars, n_per_turn=args.n,
                          trips=args.trips)
    if args.variant == "initial":
        return build_exactly_n_bridge(config)
    if args.variant == "fixed":
        return fix_exactly_n_bridge(build_exactly_n_bridge(config))
    return build_at_most_n_bridge(config)


def _write_verification_report(args: argparse.Namespace, arch, system,
                               result, collector) -> None:
    from repro.obs.report import RunReport
    run = RunReport.from_verification(
        arch, system, result,
        command=_command_line(args),
        events=collector.events if collector is not None else None,
    )
    run.save(args.report)
    print(f"report written to {args.report}")


def _cmd_bridge(args: argparse.Namespace) -> int:
    from repro.core import verify_safety
    from repro.systems.bridge import bridge_safety_prop

    arch = _bridge_arch(args)
    print(arch.describe())
    reporter, collector = _build_reporter(args)
    try:
        report = verify_safety(
            arch,
            invariants=[bridge_safety_prop()],
            check_deadlock=args.variant != "initial",
            fused=not args.composed,
            max_states=args.max_states,
            max_seconds=args.max_seconds,
            reporter=reporter,
        )
        print()
        print(report.summary())
        stats = report.result.stats
        print(f"throughput: {stats.states_per_second:,.0f} states/s, "
              f"peak frontier ≈ {stats.peak_frontier_bytes} bytes")
        compile_line = _compile_line(stats)
        if compile_line:
            print(compile_line)
        if not report.ok and report.result.trace is not None:
            from repro.core import explain_trace
            print("\ncounterexample:")
            system = arch.to_system(fused=not args.composed)
            print(explain_trace(report.result.trace, arch, system,
                                max_steps=20))
        if args.report:
            system = arch.to_system(fused=not args.composed)
            _write_verification_report(args, arch, system, report.result,
                                       collector)
    finally:
        if reporter is not None:
            reporter.close()
    if report.result.incomplete:
        return 2
    return 0 if report.ok == (args.variant != "initial") else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core import verify_safety

    if args.system == "bridge":
        from repro.systems.bridge import bridge_safety_prop
        arch = _bridge_arch(args)
        invariants = [bridge_safety_prop()]
        check_deadlock = args.variant != "initial"
        expect_ok = args.variant != "initial"
    elif args.system == "gas":
        from repro.systems.gas_station import build_gas_station
        arch = build_gas_station(customers=args.customers,
                                 selective_delivery=args.selective)
        invariants = []
        check_deadlock = True
        # Plain delivery races crossed deliveries into an assertion
        # violation; selective delivery is the paper's fix.
        expect_ok = args.selective
    else:
        from repro.systems.abp import build_abp
        arch = build_abp(messages=1, max_sends=2, receiver_polls=2)
        invariants = []
        check_deadlock = False  # bounded polls terminate by design
        expect_ok = True
    fused = not args.composed
    reporter, collector = _build_reporter(args)
    try:
        report = verify_safety(
            arch,
            invariants=invariants,
            check_deadlock=check_deadlock,
            fused=fused,
            max_states=args.max_states,
            max_seconds=args.max_seconds,
            reporter=reporter,
        )
        print(report.summary())
        compile_line = _compile_line(report.result.stats)
        if compile_line:
            print(compile_line)
        if args.report:
            system = arch.to_system(fused=fused)
            _write_verification_report(args, arch, system, report.result,
                                       collector)
    finally:
        if reporter is not None:
            reporter.close()
    if report.result.incomplete:
        return 2
    return 0 if report.ok == expect_ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import RunReport

    run = RunReport.load(args.path)
    if args.format == "json":
        text = run.to_json()
    elif args.format == "html":
        text = run.to_html()
    else:
        text = run.to_markdown()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    from repro.core import ModelLibrary, verify_resilience

    library = ModelLibrary()
    reporter, collector = _build_reporter(args)
    try:
        if args.system == "abp":
            from repro.systems.abp import (
                abp_delivery_prop,
                abp_fault_scenarios,
                build_abp,
            )
            arch = build_abp(messages=1, max_sends=2, receiver_polls=2)
            report = verify_resilience(
                arch,
                faults=abp_fault_scenarios(),
                goal=abp_delivery_prop(messages=1),
                check_deadlock=False,  # bounded polls terminate by design
                library=library,
                max_states=args.max_states,
                max_seconds=args.max_seconds,
                fused=True,
                jobs=args.jobs,
                reporter=reporter,
            )
        else:
            from repro.systems.bridge import (
                bridge_fault_scenarios,
                bridge_safety_prop,
                build_exactly_n_bridge,
                fix_exactly_n_bridge,
            )
            arch = fix_exactly_n_bridge(build_exactly_n_bridge())
            report = verify_resilience(
                arch,
                faults=bridge_fault_scenarios(),
                invariants=[bridge_safety_prop()],
                library=library,
                max_states=args.max_states,
                max_seconds=args.max_seconds,
                fused=True,
                jobs=args.jobs,
                reporter=reporter,
            )
        if args.report:
            from repro.obs.report import RunReport
            run = RunReport.from_resilience(
                arch, report, fused=True,
                command=_command_line(args),
                events=collector.events if collector is not None else None,
            )
            run.save(args.report)
            print(f"report written to {args.report}")
    finally:
        if reporter is not None:
            reporter.close()
    print(f"resilience sweep: {report.architecture}")
    print()
    print(report.table())
    for message in report.warnings:
        print(f"warning: {message}")
    total_states = sum(s.safety.stats.states_stored for s in report)
    total_seconds = sum(s.safety.stats.elapsed_seconds for s in report)
    peak_frontier = max(
        (s.safety.stats.peak_frontier_bytes for s in report), default=0)
    if total_seconds > 0:
        print(f"throughput: {total_states / total_seconds:,.0f} states/s "
              f"across {len(report.scenarios)} scenarios "
              f"(jobs={args.jobs}), peak frontier ≈ {peak_frontier} bytes")
    broken = [s for s in report if s.verdict == "broken"]
    if broken and broken[0].trace is not None:
        print(f"\ncounterexample for {broken[0].name!r}:")
        print(broken[0].trace.pretty(max_steps=20))
    if not report.complete:
        return 2
    return 0 if report.ok else 1


def _pc_space(messages: int):
    """The producer/consumer port x channel design space (sweep/explore)."""
    from repro.core.channels import CHANNEL_SPECS
    from repro.core.ports import SEND_PORT_SPECS
    from repro.design import ChannelAxis, DesignSpace, SendPortAxis
    from repro.systems.producer_consumer import simple_pair

    return DesignSpace(
        "producer_consumer",
        simple_pair(SEND_PORT_SPECS[0], CHANNEL_SPECS[0], messages=messages),
        axes=[
            ChannelAxis("link", CHANNEL_SPECS),
            SendPortAxis("link", SEND_PORT_SPECS, component="Producer0"),
        ],
        fused=True,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core import ModelLibrary
    from repro.core.channels import CHANNEL_SPECS
    from repro.core.ports import SEND_PORT_SPECS
    from repro.design import explore

    print("note: 'repro sweep' is deprecated; use 'repro explore pc' "
          "(cached, parallel, ranked)", file=sys.stderr)
    library = ModelLibrary()
    report = explore(_pc_space(args.messages), library=library)
    header = f"{'send port':26s}{'channel':28s}{'verdict':10s}{'states':>8s}"
    print(header)
    print("-" * len(header))
    results = iter(report.results)
    for channel in CHANNEL_SPECS:
        for port in SEND_PORT_SPECS:
            record = next(results)
            safety = record["safety"]
            verdict = "ok" if safety["ok"] else safety["kind"].upper()
            print(f"{port.kind:26s}{channel.display_name():28s}{verdict:10s}"
                  f"{record['states']:8d}")
    stats = library.stats
    print("-" * len(header))
    print(f"models built {stats.misses}, reused {stats.hits} "
          f"({stats.reuse_ratio:.0%} reuse)")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    import os

    from repro.design import (
        EXHAUSTIVE,
        FIRST_PASS,
        RetryPolicy,
        explore,
        open_cache,
    )

    if args.space == "bridge":
        from repro.systems.bridge import (
            BridgeConfig,
            bridge_design_space,
            bridge_fault_scenarios,
            bridge_safety_prop,
        )
        space = bridge_design_space(
            BridgeConfig(cars_per_side=args.cars, n_per_turn=args.n,
                         trips=args.trips))
        kwargs = {
            "invariants": [bridge_safety_prop()],
            "faults": bridge_fault_scenarios(),
        }
    else:
        space = _pc_space(args.messages)
        kwargs = {}

    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.environ.get(
            "REPRO_CACHE_DIR") or ".repro-cache"
        cache = open_cache(cache_dir, backend=args.backend,
                           max_bytes=_cache_max_bytes(args))

    retry = None
    if args.retries is not None:
        retry = RetryPolicy(max_retries=args.retries)

    reporter, collector = _build_reporter(args)
    try:
        report = explore(
            space,
            cache=cache,
            jobs=args.jobs,
            max_states=args.max_states,
            max_seconds=args.max_seconds,
            policy=FIRST_PASS if args.first_pass else EXHAUSTIVE,
            reporter=reporter,
            run_id=args.run_id,
            resume=args.resume,
            retry=retry,
            job_timeout=args.job_timeout,
            **kwargs,
        )
        if args.report:
            run = report.to_run_report(
                command=_command_line(args),
                events=collector.events if collector is not None else None,
            )
            run.save(args.report)
            print(f"report written to {args.report}")
    finally:
        if cache is not None:
            cache.close()  # explore() closes too; this covers errors
        if reporter is not None:
            reporter.close()
    print(f"design-space exploration: {report.space} "
          f"({len(report.results)} variants, jobs={report.jobs})")
    if report.run_id is not None:
        print(f"run id: {report.run_id}")
    print()
    print(report.table())
    if report.interrupted or report.any_budget_hit or report.failures:
        return 2
    return 0 if report.any_pass else 1


def _cache_max_bytes(args: argparse.Namespace) -> Optional[int]:
    """``--cache-max-mb`` converted to bytes (None = uncapped)."""
    max_mb = getattr(args, "cache_max_mb", None)
    if max_mb is None:
        return None
    return int(max_mb * 1024 * 1024)


def _print_kv(mapping, *, skip=("ok", "backend")) -> None:
    for key, value in mapping.items():
        if key in skip or value is None:
            continue
        print(f"  {key.replace('_', ' ')}: {value}")


def _cmd_cache(args: argparse.Namespace) -> int:
    import os

    from repro.design import (
        detect_backend,
        list_runs,
        migrate_jsonl_to_sqlite,
        open_cache,
    )

    cache_dir = args.cache_dir or os.environ.get(
        "REPRO_CACHE_DIR") or ".repro-cache"

    if args.action == "migrate":
        if detect_backend(cache_dir) == "sqlite":
            print(f"cache: {cache_dir}\n  already on the sqlite backend; "
                  "nothing to migrate")
            return 0
        summary = migrate_jsonl_to_sqlite(cache_dir)
        print(f"migrated {cache_dir} to sqlite:")
        _print_kv(summary)
        return 0

    with open_cache(cache_dir, backend=args.backend,
                    max_bytes=_cache_max_bytes(args)) as cache:
        if args.action == "verify":
            audit = cache.verify()
            print(f"cache: {cache.directory} ({audit['backend']} backend)")
            _print_kv(audit)
            print("ok" if audit["ok"] else "NOT OK")
            return 0 if audit["ok"] else 3
        if args.action == "compact":
            outcome = cache.compact()
            print(f"compacted {cache.directory}: "
                  f"{outcome['before_lines']} -> "
                  f"{outcome['after_lines']} records")
            return 0
        if args.action == "fsck":
            outcome = cache.fsck()
            print(f"fsck {cache.directory} ({outcome['backend']} backend):")
            _print_kv(outcome)
            if outcome.get("quarantined"):
                print(f"  damaged store quarantined to "
                      f"{outcome['quarantined']}; verdicts degrade to "
                      "misses")
            print("ok")
            return 0
        stats = cache.stats()
        print(f"cache: {cache.directory} ({stats['backend']} backend)")
        _print_kv(stats, skip=("ok", "backend", "hits", "misses", "stored"))
        runs = list_runs(os.path.join(cache.directory, "runs"))
        print(f"  runs journaled: {len(runs)}")
        for run in runs:
            print(f"    {run}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.codegen import system_to_promela
    from repro.core import AsynBlockingSend, SingleSlotBuffer
    from repro.systems.producer_consumer import simple_pair

    arch = simple_pair(AsynBlockingSend(), SingleSlotBuffer(), messages=1)
    source = system_to_promela(arch.to_system())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(source + "\n")
        print(f"wrote {len(source.splitlines())} lines to {args.out}")
    else:
        print(source)
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    from repro.codegen import architecture_to_dot, automaton_to_dot

    if args.what == "bridge":
        from repro.systems.bridge import BridgeConfig, build_exactly_n_bridge
        dot = architecture_to_dot(
            build_exactly_n_bridge(BridgeConfig(1, 1, trips=1)))
    else:
        from repro.core import make_block
        dot = automaton_to_dot(make_block(args.what).build_def())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(dot + "\n")
        print(f"wrote {args.out}")
    else:
        print(dot)
    return 0


def _serve_cache_dir(args: argparse.Namespace) -> str:
    return (args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
            or ".repro-cache")


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.design import RetryPolicy
    from repro.serve import JobManager, VerificationServer, serve_until

    cache_dir = _serve_cache_dir(args)
    retry = (RetryPolicy(max_retries=args.retries)
             if args.retries is not None else None)
    manager = JobManager(
        cache_dir,
        workers=args.workers,
        supervised=not args.inline,
        retry=retry,
        job_timeout=args.job_timeout,
    )
    server = VerificationServer((args.host, args.port), manager)
    host, port = server.server_address[:2]
    mode = "inline" if args.inline else "supervised"
    print(f"repro serve: listening on http://{host}:{port} "
          f"(cache {cache_dir}, {args.workers} workers, {mode} jobs)")
    sys.stdout.flush()

    stop = threading.Event()

    def _request_stop(signum: int, frame: object) -> None:
        stop.set()

    old_term = signal.signal(signal.SIGTERM, _request_stop)
    old_int = signal.signal(signal.SIGINT, _request_stop)
    try:
        serve_until(server, stop)
    finally:
        signal.signal(signal.SIGTERM, old_term)
        signal.signal(signal.SIGINT, old_int)
    print("repro serve: draining...")
    sys.stdout.flush()
    summary = manager.drain(timeout=args.drain_timeout)
    server.server_close()
    manager.close()
    if summary["drained"]:
        print(f"repro serve: drained cleanly "
              f"({summary['finished']} in-flight jobs finished)")
        return 0
    print(f"repro serve: drain timed out; {len(summary['leftover'])} "
          f"jobs journaled for resume", file=sys.stderr)
    return 2


def _submit_spec(args: argparse.Namespace) -> dict:
    """The JSON job spec a ``repro submit`` invocation describes."""
    budgets = {}
    if args.max_states is not None:
        budgets["max_states"] = args.max_states
    if args.max_seconds is not None:
        budgets["max_seconds"] = args.max_seconds
    if args.target == "gas":
        return {"kind": "verify", "system": "gas",
                "options": {"customers": args.customers,
                            "selective": args.selective, **budgets}}
    if args.target == "bridge":
        return {"kind": "verify", "system": "bridge",
                "options": {"variant": args.variant, "cars": args.cars,
                            "n": args.n, "trips": args.trips, **budgets}}
    if args.target == "abp":
        return {"kind": "verify", "system": "abp", "options": budgets}
    if args.target == "explore-bridge":
        return {"kind": "explore", "space": "bridge",
                "options": {"cars": args.cars, "n": args.n,
                            "trips": args.trips,
                            "first_pass": args.first_pass, **budgets}}
    return {"kind": "explore", "space": "pc",
            "options": {"messages": args.messages,
                        "first_pass": args.first_pass, **budgets}}


def _describe_view(view: dict) -> str:
    """One status line for a job view (submit/status output)."""
    line = f"job {view['job_id']}: {view['status']}"
    if view.get("cached"):
        line += " (served from cache)"
    elif view.get("coalesced_with"):
        line += f" (coalesced with {view['coalesced_with']})"
    if view.get("verdict"):
        line += f" — {view['verdict']}"
        if view.get("detail"):
            line += f": {view['detail']}"
    return line


def _cmd_submit(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve import ServeClient

    client = ServeClient(args.url)
    view = client.submit(_submit_spec(args))
    job_id = view["job_id"]
    terminal = view["status"] in ("done", "failed")
    if args.no_wait or not terminal:
        print(_describe_view(view))
    if args.no_wait:
        return 0
    if args.follow:
        for event in client.events(job_id):
            print(_json.dumps(event, sort_keys=True))
    view = client.wait(job_id, timeout=args.timeout)
    if view["status"] not in ("done", "failed"):
        print(f"job {job_id} still {view['status']} after "
              f"{args.timeout}s", file=sys.stderr)
        return 2
    print(_describe_view(view))
    if args.report:
        from repro.obs.report import RunReport
        RunReport(client.report(job_id)).save(args.report)
        print(f"report written to {args.report}")
    exit_code = view.get("exit_code")
    return exit_code if exit_code is not None else 3


def _cmd_status(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve import ServeClient

    client = ServeClient(args.url)
    if args.job_id:
        view = client.job(args.job_id)
        print(_describe_view(view))
        for key in ("kind", "fingerprint", "command", "exit_code", "error"):
            if view.get(key) is not None:
                print(f"  {key.replace('_', ' ')}: {view[key]}")
        if args.events:
            for event in client.events(args.job_id, follow=False):
                print(_json.dumps(event, sort_keys=True))
        return 0
    stats = client.stats()
    counters = stats.get("counters", {})
    print(f"repro serve at http://{client.host}:{client.port} "
          f"(version {stats.get('repro_version', '?')}, "
          f"{'draining' if stats.get('draining') else 'accepting'})")
    print(f"  workers: {stats.get('workers')} "
          f"({'supervised' if stats.get('supervised') else 'inline'}), "
          f"in-flight fingerprints: {stats.get('inflight')}")
    print("  jobs: " + (", ".join(
        f"{status} {count}"
        for status, count in sorted(stats.get("jobs", {}).items()))
        or "none"))
    print("  counters: " + ", ".join(
        f"{key} {value}" for key, value in sorted(counters.items())))
    cache = stats.get("cache", {})
    print(f"  cache: {cache.get('records')} records "
          f"({cache.get('backend')} backend)")
    for view in client.jobs():
        print("  " + _describe_view(view))
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Plug-and-Play architectural design and verification",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("catalog", help="print the block library (Figure 1)")

    def _add_design_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--variant",
                       choices=["initial", "fixed", "atmostn"],
                       default="initial",
                       help="bridge design variant (bridge only)")
        p.add_argument("--cars", type=int, default=1,
                       help="cars per side (default 1)")
        p.add_argument("--n", type=int, default=1,
                       help="cars per turn (default 1)")
        p.add_argument("--trips", type=int, default=1,
                       help="trips per car; 0 = cycle forever (default 1)")
        p.add_argument("--composed", action="store_true",
                       help="use composed block models instead of fused")
        p.add_argument("--max-states", type=int, default=None,
                       help="state budget; exceeding it yields exit code 2")
        p.add_argument("--max-seconds", type=float, default=None,
                       help="time budget; exceeding it yields exit code 2")

    verify = sub.add_parser(
        "verify", help="verify a case study, optionally writing a report")
    verify.add_argument("system", choices=["bridge", "abp", "gas"],
                        help="bridge: single-lane bridge (--variant picks "
                             "the design); abp: alternating-bit protocol; "
                             "gas: the gas-station case study "
                             "(--selective picks the fixed design)")
    _add_design_flags(verify)
    verify.add_argument("--customers", type=int, default=2,
                        help="gas station: customers at the pump (default 2)")
    verify.add_argument("--selective", action="store_true",
                        help="gas station: selective delivery (the fix; "
                             "expected PASS, plain delivery expected FAIL)")
    _add_jit_flag(verify)
    _add_obs_flags(verify)

    rep = sub.add_parser(
        "report", help="re-render a saved run report")
    rep.add_argument("path", help="a .json report written by --report")
    rep.add_argument("--format", choices=["md", "html", "json"],
                     default="md", help="output format (default md)")
    rep.add_argument("--out", default=None,
                     help="write to a file instead of stdout")

    bridge = sub.add_parser("bridge", help="verify a single-lane bridge design")
    _add_design_flags(bridge)
    _add_jit_flag(bridge)
    _add_obs_flags(bridge)

    res = sub.add_parser(
        "resilience", help="sweep fault scenarios over a system")
    res.add_argument("system", choices=["abp", "bridge"],
                     help="abp: fault channels on the data link; "
                          "bridge: timing-out controller receives")
    res.add_argument("--max-states", type=int, default=None,
                     help="per-scenario state budget (UNKNOWN verdict when hit)")
    res.add_argument("--max-seconds", type=float, default=None,
                     help="per-scenario time budget (UNKNOWN verdict when hit)")
    res.add_argument("--jobs", type=int, default=1,
                     help="verify scenarios in parallel over N worker "
                          "processes (default 1 = serial; falls back to "
                          "serial when the design does not pickle or "
                          "only 1 CPU is available)")
    _add_jit_flag(res)
    _add_obs_flags(res)

    exp = sub.add_parser(
        "explore", help="enumerate and verify a design space (cached)")
    exp.add_argument("space", choices=["bridge", "pc"],
                     help="bridge: enter-send axes over the exactly-n and "
                          "at-most-n designs; pc: every send-port/channel "
                          "combination on a producer/consumer pair")
    exp.add_argument("--jobs", type=int, default=1,
                     help="verify variants in parallel over N worker "
                          "processes (default 1 = serial; falls back to "
                          "serial when the design does not pickle)")
    exp.add_argument("--cache-dir", default=None,
                     help="persistent result cache directory (default "
                          "$REPRO_CACHE_DIR or .repro-cache)")
    exp.add_argument("--no-cache", action="store_true",
                     help="verify every variant afresh, touch no cache")
    exp.add_argument("--backend", choices=["auto", "jsonl", "sqlite"],
                     default="auto",
                     help="cache backend: jsonl (single-writer journal), "
                          "sqlite (concurrent multi-process WAL store), or "
                          "auto (default: whatever the directory already "
                          "holds; sqlite for a fresh one)")
    exp.add_argument("--cache-max-mb", type=float, default=None,
                     metavar="MB",
                     help="cap the sqlite cache size; coldest records "
                          "(LRU by last hit) are evicted past the cap")
    exp.add_argument("--first-pass", action="store_true",
                     help="stop at the first PASS verdict (cheapest-first "
                          "order) instead of exploring exhaustively")
    exp.add_argument("--max-states", type=int, default=None,
                     help="per-variant state budget; any hit yields exit "
                          "code 2")
    exp.add_argument("--max-seconds", type=float, default=None,
                     help="per-variant time budget; any hit yields exit "
                          "code 2")
    exp.add_argument("--cars", type=int, default=1,
                     help="bridge space: cars per side (default 1)")
    exp.add_argument("--n", type=int, default=1,
                     help="bridge space: crossings per turn (default 1)")
    exp.add_argument("--trips", type=int, default=1,
                     help="bridge space: trips per car, 0 = forever "
                          "(default 1)")
    exp.add_argument("--messages", type=int, default=2,
                     help="pc space: messages to deliver (default 2)")
    exp.add_argument("--run-id", default=None,
                     help="name this run's journal (default: a minted "
                          "timestamped id)")
    exp.add_argument("--resume", metavar="RUN_ID", default=None,
                     help="resume a journaled run: completed variants are "
                          "served from the journal, only pending or failed "
                          "ones re-run")
    exp.add_argument("--retries", type=int, default=None,
                     help="retries per failed job before it degrades to an "
                          "INCOMPLETE verdict (default 1)")
    exp.add_argument("--job-timeout", type=float, default=None,
                     help="per-job wall-clock timeout in seconds for "
                          "parallel workers (default: none)")
    _add_jit_flag(exp)
    _add_obs_flags(exp)

    cache = sub.add_parser(
        "cache",
        help="inspect, audit, repair, or migrate the result cache")
    cache.add_argument("action",
                       choices=["info", "verify", "compact", "migrate",
                                "fsck"],
                       help="info: summary + journaled runs; verify: audit "
                            "record checksums and store integrity; "
                            "compact: rewrite/vacuum to live records only; "
                            "migrate: convert a JSONL cache to sqlite, "
                            "verdict-equivalently; fsck: repair damage "
                            "(drop corrupt records, or quarantine an "
                            "unreadable sqlite store)")
    cache.add_argument("--cache-dir", default=None,
                       help="cache directory (default $REPRO_CACHE_DIR or "
                            ".repro-cache)")
    cache.add_argument("--backend", choices=["auto", "jsonl", "sqlite"],
                       default="auto",
                       help="cache backend (default auto: detect from the "
                            "directory)")
    cache.add_argument("--cache-max-mb", type=float, default=None,
                       metavar="MB",
                       help="sqlite size cap applied while this command "
                            "has the store open (LRU eviction)")

    serve = sub.add_parser(
        "serve",
        help="run the verification service daemon (HTTP, stdlib only)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7477,
                       help="listen port; 0 picks a free one "
                            "(default 7477)")
    serve.add_argument("--cache-dir", default=None,
                       help="shared verdict store, sqlite backend required "
                            "(default $REPRO_CACHE_DIR or .repro-cache)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent job slots (default 2)")
    serve.add_argument("--inline", action="store_true",
                       help="run jobs on worker threads instead of "
                            "supervised sandbox processes (faster startup, "
                            "no crash isolation)")
    serve.add_argument("--retries", type=int, default=None,
                       help="retries per failed job (default 1)")
    serve.add_argument("--job-timeout", type=float, default=None,
                       help="per-job wall-clock timeout for supervised "
                            "jobs (default: none)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds to let in-flight jobs finish on "
                            "SIGTERM before journaling the rest "
                            "(default 30)")

    def _add_submit_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", default="http://127.0.0.1:7477",
                       help="service URL (default http://127.0.0.1:7477)")

    submit = sub.add_parser(
        "submit", help="submit a job to a running verification service")
    submit.add_argument("target",
                        choices=["gas", "bridge", "abp",
                                 "explore-bridge", "explore-pc"],
                        help="what to verify: a case study (gas/bridge/abp) "
                             "or a design space to explore")
    _add_submit_flags(submit)
    submit.add_argument("--customers", type=int, default=2,
                        help="gas: customers at the pump (default 2)")
    submit.add_argument("--selective", action="store_true",
                        help="gas: selective delivery (the fixed design)")
    submit.add_argument("--variant",
                        choices=["initial", "fixed", "atmostn"],
                        default="fixed",
                        help="bridge: design variant (default fixed)")
    submit.add_argument("--cars", type=int, default=1,
                        help="bridge: cars per side (default 1)")
    submit.add_argument("--n", type=int, default=1,
                        help="bridge: cars per turn (default 1)")
    submit.add_argument("--trips", type=int, default=1,
                        help="bridge: trips per car (default 1)")
    submit.add_argument("--messages", type=int, default=2,
                        help="explore-pc: messages to deliver (default 2)")
    submit.add_argument("--first-pass", action="store_true",
                        help="explore: stop at the first PASS verdict")
    submit.add_argument("--max-states", type=int, default=None,
                        help="state budget (INCOMPLETE verdict when hit)")
    submit.add_argument("--max-seconds", type=float, default=None,
                        help="time budget (INCOMPLETE verdict when hit)")
    submit.add_argument("--no-wait", action="store_true",
                        help="return after submission; poll with "
                             "'repro status JOB_ID'")
    submit.add_argument("--follow", action="store_true",
                        help="stream the job's events (NDJSON) while "
                             "waiting")
    submit.add_argument("--timeout", type=float, default=None,
                        help="give up waiting after this many seconds "
                             "(exit code 2)")
    submit.add_argument("--report", metavar="PATH", default=None,
                        help="save the finished job's run report (same "
                             "format as a local run's --report)")

    status = sub.add_parser(
        "status", help="inspect a running verification service")
    status.add_argument("job_id", nargs="?", default=None,
                        help="a job id (default: service summary + job "
                             "list)")
    _add_submit_flags(status)
    status.add_argument("--events", action="store_true",
                        help="with a job id: dump its event stream "
                             "snapshot (NDJSON)")

    sweep = sub.add_parser(
        "sweep", help="verify all port/channel combos (deprecated: "
                      "use 'explore pc')")
    sweep.add_argument("--messages", type=int, default=2)

    export = sub.add_parser("export", help="emit Promela for Figure 2(a)")
    export.add_argument("--out", default=None)

    graph = sub.add_parser("graph", help="emit Graphviz DOT")
    graph.add_argument("what",
                       help="a block kind (e.g. syn_blocking_send) or 'bridge'")
    graph.add_argument("--out", default=None)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(argv)
    args.argv = argv  # recorded in run reports as the invocation line
    handlers = {
        "catalog": _cmd_catalog,
        "verify": _cmd_verify,
        "report": _cmd_report,
        "bridge": _cmd_bridge,
        "resilience": _cmd_resilience,
        "explore": _cmd_explore,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "sweep": _cmd_sweep,
        "export": _cmd_export,
        "graph": _cmd_graph,
    }
    if getattr(args, "no_jit", False):
        # The flag travels as the documented environment escape hatch so
        # worker processes (resilience/explore pools) inherit it too.
        os.environ["REPRO_NO_JIT"] = "1"
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        # A graceful interrupt inside explore() never gets here (the
        # handler flag drains the run); this is the blunt path.
        print("interrupted", file=sys.stderr)
        return 2
    except Exception as exc:  # noqa: BLE001 - the CLI's last line of defense
        print(f"repro: internal failure: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())

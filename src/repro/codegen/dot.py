"""Graphviz (DOT) rendering: automata and architecture topology.

Two views, both pure structure (no simulation involved):

* :func:`automaton_to_dot` — the compiled control-flow automaton of one
  process definition, with end locations double-circled and edges
  labeled by their operations.  Useful for inspecting the building-block
  models (the state machines behind the paper's Figures 6-11).
* :func:`architecture_to_dot` — the component-and-connector topology of
  an architecture (the paper's Figures 2/13/14 box diagrams):
  components as boxes, connectors as (channel-labeled) ellipses, port
  kinds on the edges.
"""

from __future__ import annotations

from typing import List

from ..core.architecture import Architecture
from ..psl.system import ProcessDef


def _esc(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def automaton_to_dot(definition: ProcessDef, max_label: int = 40) -> str:
    """Render a process definition's automaton as a DOT digraph."""
    auto = definition.automaton
    lines: List[str] = [
        f'digraph "{_esc(definition.name)}" {{',
        "    rankdir=TB;",
        '    node [shape=circle, fontsize=10];',
        f'    __start [shape=point, label=""];',
        f"    __start -> L{auto.initial};",
    ]
    for loc in range(auto.n_locations):
        if not auto.edges_from[loc] and loc not in auto.end_locations:
            # unreachable/removed location: skip unless referenced
            if not any(e.dst == loc or e.src == loc for e in auto.edges):
                continue
        shape = "doublecircle" if loc in auto.end_locations else "circle"
        lines.append(f'    L{loc} [shape={shape}, label="{loc}"];')
    for edge in auto.edges:
        label = edge.describe()
        if len(label) > max_label:
            label = label[: max_label - 3] + "..."
        lines.append(
            f'    L{edge.src} -> L{edge.dst} [label="{_esc(label)}", '
            f"fontsize=9];"
        )
    lines.append("}")
    return "\n".join(lines)


def architecture_to_dot(architecture: Architecture) -> str:
    """Render an architecture's component/connector topology as DOT."""
    architecture.validate()
    lines: List[str] = [
        f'digraph "{_esc(architecture.name)}" {{',
        "    rankdir=LR;",
        '    node [fontsize=11];',
    ]
    for name in sorted(architecture.components):
        lines.append(
            f'    "{_esc(name)}" [shape=box, style=filled, '
            f'fillcolor=lightblue];'
        )
    for conn_name in sorted(architecture.connectors):
        conn = architecture.connectors[conn_name]
        label = f"{conn_name}\\n{conn.channel.display_name()}"
        lines.append(
            f'    "{_esc(conn_name)}" [shape=ellipse, style=filled, '
            f'fillcolor=lightyellow, label="{_esc(label)}"];'
        )
        for att in conn.senders:
            lines.append(
                f'    "{_esc(att.component)}" -> "{_esc(conn_name)}" '
                f'[label="{_esc(att.port)}\\n{_esc(att.spec.display_name())}", '
                f"fontsize=9];"
            )
        for att in conn.receivers:
            lines.append(
                f'    "{_esc(conn_name)}" -> "{_esc(att.component)}" '
                f'[label="{_esc(att.port)}\\n{_esc(att.spec.display_name())}", '
                f"fontsize=9];"
            )
    lines.append("}")
    return "\n".join(lines)

"""Code generation back-ends for PSL systems."""

from .dot import architecture_to_dot, automaton_to_dot
from .promela import PromelaEmitter, block_to_promela, system_to_promela

__all__ = [
    "PromelaEmitter",
    "architecture_to_dot",
    "automaton_to_dot",
    "block_to_promela",
    "system_to_promela",
]

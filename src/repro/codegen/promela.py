"""Promela source generation for PSL systems.

The paper models its building blocks in Promela (Figures 5-11) and
notes that the approach "is not tied to any particular model checker or
modeling language" (they also encoded the blocks in FSP for LTSA).  The
reproduction's blocks are defined once in PSL; this emitter demonstrates
the same formalism-independence by pretty-printing any composed system —
blocks, components, wiring — back into Promela.

The output is intended to be read (and diffed against the paper's
figures) and to be loadable by SPIN with two caveats, called out with
comments in the generated source:

* PSL's guarded receive (``Recv(..., when=...)``, used by the optimized
  channel models) has no single-statement Promela equivalent; it is
  emitted as an ``atomic { guard -> receive }`` pair, which differs from
  PSL semantics in that the guard and receive are evaluated at two
  instants.  Faithful-variant models never use guarded receives and emit
  verbatim.
* PSL symbols become one global ``mtype`` declaration; data fields are
  emitted as ``int`` and symbol values as their mtype constants.

Channel-valued process parameters are emitted as ``chan`` parameters and
bound in the ``init`` block, exactly mirroring the paper's composition
scheme (Section 3.4).
"""

from __future__ import annotations

from typing import List, Sequence, Set

from ..psl.channels import Channel
from ..psl.expr import BinOp, Const, Expr, Not
from ..psl.stmt import (
    Assert,
    Assign,
    Branch,
    Break,
    Do,
    DStep,
    Else,
    EndLabel,
    Guard,
    If,
    MatchEq,
    Recv,
    Send,
    Seq,
    Skip,
    Stmt,
)
from ..psl.system import ProcessDef, System

_INDENT = "    "


def _collect_symbols_expr(expr: Expr, out: Set[str]) -> None:
    if isinstance(expr, Const) and isinstance(expr.value, str):
        out.add(expr.value)
    elif isinstance(expr, BinOp):
        _collect_symbols_expr(expr.left, out)
        _collect_symbols_expr(expr.right, out)
    elif isinstance(expr, Not):
        _collect_symbols_expr(expr.operand, out)


def _collect_symbols_stmt(stmt: Stmt, out: Set[str]) -> None:
    if isinstance(stmt, Seq):
        for s in stmt.stmts:
            _collect_symbols_stmt(s, out)
    elif isinstance(stmt, (If, Do)):
        for b in stmt.branches:
            _collect_symbols_stmt(b.body, out)
    elif isinstance(stmt, (Assign, Guard, Assert)):
        _collect_symbols_expr(stmt.expr, out)
    elif isinstance(stmt, Send):
        for a in stmt.args:
            _collect_symbols_expr(a, out)
    elif isinstance(stmt, Recv):
        for p in stmt.patterns:
            if isinstance(p, MatchEq):
                _collect_symbols_expr(p.expr, out)
        if stmt.when is not None:
            _collect_symbols_expr(stmt.when, out)
    elif isinstance(stmt, DStep):
        for s in stmt.stmts:
            _collect_symbols_stmt(s, out)


class PromelaEmitter:
    """Pretty-prints a PSL :class:`System` as Promela source."""

    def __init__(self, system: System) -> None:
        system.finalize()
        self.system = system
        self._end_label_count = 0

    # -- top level -------------------------------------------------------

    def emit(self) -> str:
        parts: List[str] = [
            f"/* Promela model generated from PSL system {self.system.name!r} */",
            "",
        ]
        symbols = self._symbols()
        if symbols:
            parts.append("mtype = { " + ", ".join(sorted(symbols)) + " };")
            parts.append("")
        for gname, ginit in self.system.global_vars.items():
            parts.append(f"int {gname} = {self._value(ginit)};")
        if self.system.global_vars:
            parts.append("")
        for chan in self.system.channels:
            parts.append(self._channel_decl(chan))
        if self.system.channels:
            parts.append("")
        for definition in self.system.definitions():
            parts.append(self.emit_proctype(definition))
            parts.append("")
        parts.append(self._init_block())
        return "\n".join(parts)

    def _symbols(self) -> Set[str]:
        out: Set[str] = set()
        for definition in self.system.definitions():
            _collect_symbols_stmt(definition.body, out)
        for inst in self.system.instances:
            for value in inst.value_bindings.values():
                if isinstance(value, str):
                    out.add(value)
        return out

    def _channel_decl(self, chan: Channel) -> str:
        fields = ", ".join("int" for _ in chan.fields)
        comment = f"  /* fields: {', '.join(chan.fields)} */"
        return f"chan {self._chan_name(chan)} = [{chan.capacity}] of {{ {fields} }};{comment}"

    def _chan_name(self, chan: Channel) -> str:
        return chan.name.replace(".", "_").replace("-", "_")

    def _proc_name(self, name: str) -> str:
        return name.replace(".", "_").replace("-", "_")

    def _init_block(self) -> str:
        lines = ["init {", _INDENT + "atomic {"]
        for inst in self.system.instances:
            args: List[str] = []
            for param in inst.definition.chan_params:
                args.append(self._chan_name(inst.chan_bindings[param]))
            for param in inst.definition.params:
                args.append(self._value(inst.value_bindings[param]))
            arg_txt = ", ".join(args)
            lines.append(
                f"{_INDENT * 2}run {self._proc_name(inst.definition.name)}"
                f"({arg_txt});  /* {inst.name} */"
            )
        lines.append(_INDENT + "}")
        lines.append("}")
        return "\n".join(lines)

    # -- proctypes ------------------------------------------------------------

    def emit_proctype(self, definition: ProcessDef) -> str:
        # Promela labels are scoped per proctype; numbering restarts so a
        # definition's text is independent of what was emitted before it.
        self._end_label_count = 0
        params: List[str] = [f"chan {p}" for p in definition.chan_params]
        params.extend(f"int {p}" for p in definition.params)
        header = f"proctype {self._proc_name(definition.name)}({'; '.join(params)})"
        lines = [header + " {"]
        for var, init in definition.local_vars.items():
            lines.append(f"{_INDENT}int {var} = {self._value(init)};")
        body_lines = self._stmt(definition.body, 1)
        lines.extend(body_lines)
        lines.append("}")
        return "\n".join(lines)

    def _value(self, value) -> str:
        return str(value)

    # -- statements --------------------------------------------------------------

    def _stmt(self, stmt: Stmt, depth: int) -> List[str]:
        pad = _INDENT * depth
        comment = f"  /* {stmt.comment} */" if stmt.comment else ""
        if isinstance(stmt, Seq):
            out: List[str] = []
            for s in stmt.stmts:
                out.extend(self._stmt(s, depth))
            return out
        if isinstance(stmt, Assign):
            return [f"{pad}{stmt.name} = {stmt.expr.to_promela()};{comment}"]
        if isinstance(stmt, Guard):
            return [f"{pad}({stmt.expr.to_promela()});{comment}"]
        if isinstance(stmt, Else):
            return [f"{pad}else{comment}"]
        if isinstance(stmt, Send):
            args = ",".join(a.to_promela() for a in stmt.args)
            return [f"{pad}{stmt.chan}!{args};{comment}"]
        if isinstance(stmt, Recv):
            return self._recv(stmt, depth, comment)
        if isinstance(stmt, Assert):
            return [f"{pad}assert({stmt.expr.to_promela()});{comment}"]
        if isinstance(stmt, Skip):
            return [f"{pad}skip;{comment}"]
        if isinstance(stmt, Break):
            return [f"{pad}break;{comment}"]
        if isinstance(stmt, EndLabel):
            self._end_label_count += 1
            return [f"{pad[:-len(_INDENT)] if len(pad) else ''}end{self._end_label_count}:{comment}"]
        if isinstance(stmt, DStep):
            out = [f"{pad}d_step {{{comment}"]
            for s in stmt.stmts:
                out.extend(self._stmt(s, depth + 1))
            out.append(f"{pad}}}")
            return out
        if isinstance(stmt, If):
            return self._selection("if", "fi", stmt.branches, depth, comment)
        if isinstance(stmt, Do):
            return self._selection("do", "od", stmt.branches, depth, comment)
        raise TypeError(f"cannot emit {type(stmt).__name__}")

    def _selection(
        self, open_kw: str, close_kw: str, branches: Sequence[Branch],
        depth: int, comment: str,
    ) -> List[str]:
        pad = _INDENT * depth
        out = [f"{pad}{open_kw}{comment}"]
        for branch in branches:
            stmts = list(branch.body.stmts)
            first_lines = self._stmt(stmts[0], depth + 1)
            # attach the '::' to the first statement of the branch
            stripped = first_lines[0].lstrip()
            out.append(f"{pad}:: {stripped}")
            out.extend(first_lines[1:])
            for s in stmts[1:]:
                out.extend(self._stmt(s, depth + 1))
        out.append(f"{pad}{close_kw};")
        return out

    def _recv(self, stmt: Recv, depth: int, comment: str) -> List[str]:
        pad = _INDENT * depth
        op = "??" if stmt.matching else "?"
        pats = ",".join(p.to_promela() for p in stmt.patterns)
        core = f"{stmt.chan}{op}<{pats}>" if stmt.peek else f"{stmt.chan}{op}{pats}"
        if stmt.when is None:
            return [f"{pad}{core};{comment}"]
        # Guarded receive: no single-statement Promela equivalent.
        return [
            f"{pad}atomic {{  /* PSL guarded receive: guard and receive "
            f"are one operation in PSL */",
            f"{pad}{_INDENT}({stmt.when.to_promela()}) -> {core};{comment}",
            f"{pad}}}",
        ]


def system_to_promela(system: System) -> str:
    """Emit Promela source for a composed PSL system."""
    return PromelaEmitter(system).emit()


def block_to_promela(spec) -> str:
    """Emit Promela source for one building block's process model.

    Renders a single :class:`~repro.core.spec.BlockSpec` — e.g. a
    fault-injection channel — as a standalone proctype plus the mtype
    declaration its body needs, in the format of the paper's Figures
    5-11.  The channel parameters stay formal (``chan`` arguments), as
    the block is printed outside any composed system.
    """
    definition = spec.build_def()
    emitter = PromelaEmitter(System(f"block_{definition.name}"))
    symbols: Set[str] = set()
    _collect_symbols_stmt(definition.body, symbols)
    parts: List[str] = [
        f"/* Promela model of building block {spec.display_name()!r} */",
        "",
    ]
    if symbols:
        parts.append("mtype = { " + ", ".join(sorted(symbols)) + " };")
        parts.append("")
    parts.append(emitter.emit_proctype(definition))
    return "\n".join(parts)

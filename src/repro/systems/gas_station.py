"""The gas station — the classic UMass finite-state-verification study.

The automated gas station (Helmbold & Luckham) is the benchmark the
paper's authors' group used throughout their verification work, so it
belongs in this reproduction's example set.  Customers prepay an
operator; the operator activates the pump for one customer at a time;
the pump delivers gas tagged with the customer it was activated for.

The interesting design decision is the *gas-delivery connector*: the
pump's deliveries to all customers share one channel.

* With plain (non-selective) receives, a waiting customer can grab a
  delivery *tagged for someone else* — the classic
  wrong-customer-gets-the-gas race, caught here by an assertion in the
  customer (``my gas must carry my id``).
* Requesting **selective receive** — each customer retrieves only
  messages tagged with its own id, a capability the PnP receive blocks
  already provide — removes the race; verification then passes.

Globals ``paid_<i>`` / ``fueled_<i>`` expose the per-customer protocol
state for properties.
"""

from __future__ import annotations

from ..core import (
    Architecture,
    AsynBlockingSend,
    BlockingReceive,
    Component,
    FifoQueue,
    RECEIVE,
    SEND,
    SynBlockingSend,
    receive_message,
    send_message,
)
from ..mc.props import Prop
from ..psl.expr import V
from ..psl.stmt import Assert, Assign, Branch, Break, Do, Guard, Seq


def all_fueled_prop(customers: int) -> Prop:
    """Every customer received gas."""
    names = [f"fueled_{i}" for i in range(customers)]
    return Prop(
        name="all_fueled",
        fn=lambda v, names=names: all(v.global_(n) == 1 for n in names),
        globals_read=frozenset(names),
        locals_read=frozenset(),
    )


def _customer(index: int, selective: bool) -> Component:
    """Pay, then wait for gas; assert the delivery is really ours.

    The receive loops until it succeeds: a *selective* request may be
    answered ``RECV_FAIL`` while only other customers' deliveries are
    buffered (the fused channel models answer immediately rather than
    parking match-dependent requests), in which case the customer simply
    asks again.
    """
    from ..psl.stmt import Do, Else, If

    receive_gas = Do(
        Branch(
            receive_message("gas", into="delivery",
                            selective_tag=index if selective else None),
            If(
                Branch(Guard(V("recv_status") == "RECV_SUCC"), Break()),
                Branch(Else()),  # nothing for us yet: ask again
            ),
        ),
    )
    body = Seq([
        Assign(f"paid_{index}", 1, comment="hands money to the operator"),
        send_message("pay", index, tag=index),
        receive_gas,
        Assert(V("delivery") == index,
               comment="the gas must be the one pumped for this customer"),
        Assign(f"fueled_{index}", 1, comment="drives away fueled"),
    ])
    return Component(
        f"Customer{index}",
        ports={"pay": SEND, "gas": RECEIVE},
        body=body,
        local_vars={"delivery": -1},
    )


def _operator(customers: int) -> Component:
    """Serve payments in order, activating the pump for each."""
    return Component(
        "Operator",
        ports={"payments": RECEIVE, "activate": SEND},
        body=Seq([
            Do(
                Branch(Guard(V("served") < customers),
                       receive_message("payments", into="who"),
                       send_message("activate", V("who")),
                       Assign("served", V("served") + 1)),
                Branch(Guard(V("served") == customers), Break()),
            ),
        ]),
        local_vars={"served": 0, "who": -1},
    )


def _pump(customers: int) -> Component:
    """Pump gas for whoever the operator activated, tagging the delivery."""
    return Component(
        "Pump",
        ports={"activations": RECEIVE, "deliver": SEND},
        body=Seq([
            Do(
                Branch(Guard(V("pumped") < customers),
                       receive_message("activations", into="target"),
                       send_message("deliver", V("target"), tag=V("target")),
                       Assign("pumped", V("pumped") + 1)),
                Branch(Guard(V("pumped") == customers), Break()),
            ),
        ]),
        local_vars={"pumped": 0, "target": -1},
    )


def build_gas_station(
    customers: int = 2,
    selective_delivery: bool = False,
    name: str = "gas_station",
) -> Architecture:
    """Assemble the gas station.

    ``selective_delivery=False`` reproduces the classic race (customers
    take whatever delivery comes first); ``True`` applies the
    selective-receive fix.
    """
    if customers < 1:
        raise ValueError("need at least one customer")
    arch = Architecture(name)
    for i in range(customers):
        arch.add_global(f"paid_{i}", 0)
        arch.add_global(f"fueled_{i}", 0)

    operator = arch.add_component(_operator(customers))
    pump = arch.add_component(_pump(customers))
    custs = [arch.add_component(_customer(i, selective_delivery))
             for i in range(customers)]

    pay = arch.add_connector("Pay", FifoQueue(size=max(1, customers)))
    for cust in custs:
        pay.attach_sender(cust, "pay", SynBlockingSend())
    pay.attach_receiver(operator, "payments", BlockingReceive())

    activate = arch.add_connector("Activate", FifoQueue(size=customers))
    activate.attach_sender(operator, "activate", AsynBlockingSend())
    activate.attach_receiver(pump, "activations", BlockingReceive())

    # The shared gas-delivery connector: the seat of the classic race.
    gas = arch.add_connector("Gas", FifoQueue(size=customers))
    gas.attach_sender(pump, "deliver", AsynBlockingSend())
    for cust in custs:
        gas.attach_receiver(cust, "gas", BlockingReceive())

    return arch

"""Dining philosophers assembled from PnP building blocks.

A classic concurrency study recast in the paper's methodology: forks
are *components* guarding a token, philosophers *request* and *release*
forks through ordinary message-passing connectors, and design-time
verification decides whether a seating protocol can deadlock.

Protocol per fork: a fork component repeatedly blocking-receives one
``acquire`` request (granting the fork — the requester's synchronous
send completes only when the fork accepts) and then one ``release``
message.  A philosopher picks up one neighbour fork, then the other,
eats (bumping a global counter), and releases both.

Two seating protocols:

* :func:`build_dining` with ``symmetric=True`` — every philosopher
  grabs the left fork first: the textbook circular wait.  Verification
  finds the deadlock (all philosophers holding one fork, each waiting
  for a neighbour).
* ``symmetric=False`` — the last philosopher grabs the right fork
  first (the standard asymmetry fix): verification proves
  deadlock-freedom.

Each fork needs two connectors (acquire and release) shared by its two
neighbouring philosophers — six connectors for three philosophers —
so this also exercises multi-sender connectors harder than the bridge.
"""

from __future__ import annotations

from typing import List

from ..core import (
    Architecture,
    AsynBlockingSend,
    BlockingReceive,
    Component,
    FifoQueue,
    RECEIVE,
    SEND,
    SynBlockingSend,
    receive_message,
    send_message,
)
from ..mc.props import Prop, global_prop
from ..psl.expr import V
from ..psl.stmt import Assign, Branch, Break, Do, EndLabel, Guard, Seq

#: Global counter of completed meals.
MEALS = "meals"


def meals_prop(target: int) -> Prop:
    return global_prop(
        f"meals_{target}", lambda v, t=target: v.global_(MEALS) >= t, MEALS)


def _fork_component(index: int) -> Component:
    """A fork: grant (receive an acquire), then await the release."""
    return Component(
        f"Fork{index}",
        ports={"acquire": RECEIVE, "release": RECEIVE},
        body=Seq([
            EndLabel(),
            Do(Branch(
                receive_message("acquire", into="holder"),
                receive_message("release", into="dropped"),
            )),
        ]),
        local_vars={"holder": 0, "dropped": 0},
    )


def _philosopher_component(index: int, first: str, second: str,
                           meals_each: int) -> Component:
    """Acquire ``first`` then ``second``, eat, release both.

    ``first``/``second`` name the interaction points ("left"/"right").
    The acquire sends are synchronous — the philosopher holds a fork
    exactly when the fork component accepted the request.
    """
    body = Seq([
        Do(
            Branch(
                Guard(V("eaten") < meals_each),
                send_message(f"{first}_acq", index),
                send_message(f"{second}_acq", index),
                Assign(MEALS, V(MEALS) + 1, comment="eats"),
                Assign("eaten", V("eaten") + 1),
                send_message(f"{first}_rel", index),
                send_message(f"{second}_rel", index),
            ),
            Branch(Guard(V("eaten") == meals_each), Break()),
        ),
    ])
    return Component(
        f"Philosopher{index}",
        ports={
            f"{first}_acq": SEND, f"{first}_rel": SEND,
            f"{second}_acq": SEND, f"{second}_rel": SEND,
        },
        body=body,
        local_vars={"eaten": 0},
    )


def build_dining(
    philosophers: int = 3,
    meals_each: int = 1,
    symmetric: bool = True,
    name: str = "dining",
) -> Architecture:
    """The dining-philosophers architecture.

    ``symmetric=True`` reproduces the deadlocking protocol (everyone
    left-first); ``symmetric=False`` applies the asymmetry fix to the
    last philosopher.
    """
    if philosophers < 2:
        raise ValueError("need at least two philosophers")
    arch = Architecture(name)
    arch.add_global(MEALS, 0)

    forks = [arch.add_component(_fork_component(i))
             for i in range(philosophers)]

    phils: List[Component] = []
    for i in range(philosophers):
        left, right = i, (i + 1) % philosophers
        last = i == philosophers - 1
        if symmetric or not last:
            first, second = "left", "right"
        else:
            first, second = "right", "left"
        phils.append(arch.add_component(
            _philosopher_component(i, first, second, meals_each)))

    # One acquire connector and one release connector per fork, each
    # shared by the fork's two neighbours.
    for i, fork in enumerate(forks):
        left_phil = phils[i]          # phil i uses fork i as its "left"
        right_phil = phils[(i - 1) % philosophers]  # phil i-1's "right"
        acq = arch.add_connector(f"Acquire{i}", FifoQueue(size=1))
        acq.attach_sender(left_phil, "left_acq", SynBlockingSend())
        acq.attach_sender(right_phil, "right_acq", SynBlockingSend())
        acq.attach_receiver(fork, "acquire", BlockingReceive())
        rel = arch.add_connector(f"Release{i}", FifoQueue(size=1))
        rel.attach_sender(left_phil, "left_rel", AsynBlockingSend())
        rel.attach_sender(right_phil, "right_rel", AsynBlockingSend())
        rel.attach_receiver(fork, "release", BlockingReceive())

    return arch

"""Remote procedure call assembled from PnP building blocks (paper §6).

RPC is a *pattern* over the message-passing blocks rather than a new
block: a call connector carries requests from clients to the server,
and one reply connector per client carries results back.  The blocking
call semantics emerge from the composition:

* the client sends its request through a **synchronous blocking send**
  (so the call does not proceed until the server has taken the request)
  and then blocks in a **blocking receive** on its reply connector;
* the server loops: blocking-receive a request, compute, send the reply
  through an **asynchronous blocking send** (the server should not wait
  for the client to pick the result up).

The demo procedure doubles its argument; a client asserts the returned
value, giving the verification something end-to-end to check.  Clients
are distinguished by the priority tag on the reply (each client's reply
connector is separate, so tags are only documentation here).
"""

from __future__ import annotations


from ..core import (
    Architecture,
    AsynBlockingSend,
    BlockingReceive,
    Component,
    FifoQueue,
    RECEIVE,
    SEND,
    SingleSlotBuffer,
    SynBlockingSend,
    receive_message,
    send_message,
)
from ..psl.expr import V
from ..psl.stmt import (
    Assert,
    Assign,
    Branch,
    Break,
    Do,
    Else,
    EndLabel,
    Guard,
    If,
    Seq,
)


def build_rpc(
    clients: int = 1,
    calls_each: int = 1,
    name: str = "rpc",
) -> Architecture:
    """An RPC system: ``clients`` callers of a doubling server.

    Client *i* calls the server ``calls_each`` times with arguments
    ``10*i + k`` and asserts each reply equals twice the argument.
    Globals ``calls_done_<i>`` count completed calls per client.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    arch = Architecture(name)

    # The server tags each reply with the client index it belongs to;
    # requests carry the client index in their tag field.
    server_body = Seq([
        EndLabel(),
        Do(Branch(
            receive_message("calls", into="request"),
            Assign("result", V("request") * 2, comment="the procedure body"),
            # route the reply to the calling client
            _reply_switch(clients),
        )),
    ])
    server = Component(
        "Server",
        ports={"calls": RECEIVE,
               **{f"reply{i}": SEND for i in range(clients)}},
        body=server_body,
        local_vars={"request": 0, "result": 0, "caller": 0},
    )
    arch.add_component(server)

    call_conn = arch.add_connector("Call", FifoQueue(size=max(1, clients)))
    call_conn.attach_receiver(server, "calls", BlockingReceive())

    for i in range(clients):
        done = arch.add_global(f"calls_done_{i}", 0)
        client_body = Seq([
            Do(
                Branch(
                    Guard(V(done) < calls_each),
                    Assign("arg", V(done) + 10 * i + 1),
                    send_message("call", V("arg"), tag=i),
                    receive_message("ret", into="ret_val"),
                    Assert(V("ret_val") == V("arg") * 2,
                           comment="the RPC result must be the doubled arg"),
                    Assign(done, V(done) + 1),
                ),
                Branch(Guard(V(done) == calls_each), Break()),
            ),
        ])
        client = Component(
            f"Client{i}",
            ports={"call": SEND, "ret": RECEIVE},
            body=client_body,
            local_vars={"arg": 0, "ret_val": 0},
        )
        arch.add_component(client)
        call_conn.attach_sender(client, "call", SynBlockingSend())

        reply_conn = arch.add_connector(f"Reply{i}", SingleSlotBuffer())
        reply_conn.attach_sender(server, f"reply{i}", AsynBlockingSend())
        reply_conn.attach_receiver(client, "ret", BlockingReceive())

    return arch


def _reply_switch(clients: int):
    """Dispatch the reply to the caller's reply connector.

    The request's *tag* (bound by the standard interface into the
    message, surfaced here via the ``caller`` variable set from the
    payload's derived value) identifies the client.  To keep the server
    generic we recover the caller from the argument range: client *i*
    sends arguments in ``(10*i, 10*i + 9]``.
    """
    branches = []
    for i in range(clients):
        branches.append(Branch(
            Guard((V("request") > 10 * i) & (V("request") <= 10 * i + 9)),
            send_message(f"reply{i}", V("result")),
        ))
    branches.append(Branch(Else(), send_message("reply0", V("result"))))
    return If(*branches)

"""The single-lane bridge case study (paper Section 4, Figures 12-14).

A bridge only wide enough for one lane of traffic is controlled by two
controllers, one at each end.  *Blue* cars enter from one end (managed
by the blue controller) and notify the *red* controller when they exit;
red cars mirror this.  The safety property: cars travelling in opposite
directions must never be on the bridge at the same time.

Two traffic-control designs from the paper:

* **exactly-N-cars-per-turn** (Figure 13): controllers take turns
  letting exactly N cars from their side enter.  No controller-to-
  controller communication: each controller starts its turn after
  counting N exit notifications from the *other* side's cars.  The blue
  controller starts with the first turn.

* **at-most-N-cars-per-turn** (Figure 14): a controller may yield its
  turn early when no cars are waiting on its side.  This requires two
  new connectors between the controllers (the turn-transfer messages,
  which carry how many cars were granted) and modified controller
  components that poll with nonblocking receives.

The paper's narrative, reproduced by the F13/F13b/F14 experiments:

1. The initial Figure 13 design uses *asynchronous blocking* send ports
   for enter requests.  A car then receives ``SEND_SUCC`` as soon as its
   request is buffered — before the controller grants it — and drives
   onto the bridge during the other side's turn.  **Verification reports
   a safety violation.**
2. Swapping the enter-request send ports to *synchronous blocking* —
   a connector-only change — makes ``SEND_SUCC`` arrive only after the
   controller has actually received (granted) the request.  **The
   property then holds**, and no component model changed.
3. The at-most-N design (Figure 14) with synchronous sends, nonblocking
   receives, and single-slot turn connectors also satisfies the
   property.

Components model the bridge with two global occupancy counters; the
safety invariant is ``not (blue_on_bridge > 0 and red_on_bridge > 0)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core import (
    Architecture,
    AsynBlockingSend,
    BlockingReceive,
    Component,
    FaultScenario,
    FifoQueue,
    NonblockingReceive,
    RECEIVE,
    ReceivePortFault,
    SEND,
    SendPortSpec,
    SingleSlotBuffer,
    SynBlockingSend,
    TimeoutReceive,
    receive_message,
    send_message,
)
from ..mc.props import Prop, global_prop
from ..psl.expr import V
from ..psl.stmt import (
    Assign,
    Branch,
    Break,
    Do,
    Else,
    EndLabel,
    Guard,
    If,
    Seq,
    Stmt,
)

#: Global occupancy counters (shared by both design variants).
BLUE_ON = "blue_on_bridge"
RED_ON = "red_on_bridge"


# Module-level predicates (rather than lambdas) keep the props picklable,
# which is what lets `verify_resilience(jobs=N)` ship them to worker
# processes.
def _no_opposing_cars(v) -> bool:
    return not (v.global_(BLUE_ON) > 0 and v.global_(RED_ON) > 0)


def _opposing_cars(v) -> bool:
    return v.global_(BLUE_ON) > 0 and v.global_(RED_ON) > 0


def bridge_safety_prop() -> Prop:
    """No cars travelling in opposite directions on the bridge at once."""
    return global_prop("bridge_safe", _no_opposing_cars, BLUE_ON, RED_ON)


def crash_prop() -> Prop:
    """The negation of safety — used to locate crash states explicitly."""
    return global_prop("bridge_crash", _opposing_cars, BLUE_ON, RED_ON)


def _car_component(name: str, on_var: str, trips: int) -> Component:
    """A car: request entry, cross the bridge, notify the far controller.

    The car drives onto the bridge as soon as its enter request is
    confirmed (``SEND_SUCC``) — which is exactly why the *kind* of send
    port matters: an asynchronous port confirms at buffering time, a
    synchronous one only once the controller has received the request.
    """
    one_trip = Seq([
        send_message("enter", 1),
        Assign(on_var, V(on_var) + 1, comment="drives onto the bridge"),
        Assign(on_var, V(on_var) - 1, comment="leaves the bridge"),
        send_message("exits", 1),
    ])
    if trips <= 0:
        # A car that cycles forever.
        body: Stmt = Seq([EndLabel(), Do(Branch(one_trip))])
    else:
        body = Seq([
            Do(
                Branch(Guard(V("trips_done") < trips),
                       one_trip,
                       Assign("trips_done", V("trips_done") + 1)),
                Branch(Guard(V("trips_done") == trips), Break()),
            ),
        ])
    return Component(
        name,
        ports={"enter": SEND, "exits": SEND},
        body=body,
        local_vars={"trips_done": 0},
    )


def _exactly_n_controller(name: str, n: int, starts_with_turn: bool) -> Component:
    """Figure 13 controller: grant exactly N, then await N far-side exits.

    ``grants``/``exits_seen`` count within the current turn.  The
    controller that does not start with the turn first waits for N exit
    notifications from the other side's cars.
    """
    grant_phase = Seq([
        Assign("grants", 0),
        Do(
            Branch(Guard(V("grants") < n),
                   receive_message("enter_req", into="req"),
                   Assign("grants", V("grants") + 1)),
            Branch(Guard(V("grants") == n), Break()),
        ),
    ])
    wait_phase = Seq([
        Assign("exits_seen", 0),
        Do(
            Branch(Guard(V("exits_seen") < n),
                   receive_message("exit_note", into="note"),
                   Assign("exits_seen", V("exits_seen") + 1)),
            Branch(Guard(V("exits_seen") == n), Break()),
        ),
    ])
    if starts_with_turn:
        cycle = Seq([grant_phase, wait_phase])
    else:
        cycle = Seq([wait_phase, grant_phase])
    return Component(
        name,
        ports={"enter_req": RECEIVE, "exit_note": RECEIVE},
        body=Seq([EndLabel(), Do(Branch(cycle))]),
        local_vars={"grants": 0, "exits_seen": 0, "req": 0, "note": 0},
    )


@dataclass
class BridgeConfig:
    """Parameters of a bridge instance."""

    cars_per_side: int = 1
    n_per_turn: int = 1
    trips: int = 0  # 0 = cars cycle forever
    queue_size: Optional[int] = None  # enter-request queue; default: cars_per_side

    @property
    def enter_queue_size(self) -> int:
        return self.queue_size if self.queue_size is not None else max(
            1, self.cars_per_side
        )


def build_exactly_n_bridge(
    config: BridgeConfig = BridgeConfig(),
    enter_send: Optional[SendPortSpec] = None,
) -> Architecture:
    """The Figure 13 architecture ("exactly-N-cars-per-turn").

    ``enter_send`` chooses the send-port kind for car→controller enter
    requests; the paper's flawed initial design is the default
    :class:`AsynBlockingSend`, and its fix is :class:`SynBlockingSend`.
    Exit notifications always use asynchronous blocking sends, and
    controllers use blocking receives, as in Figure 13.
    """
    enter_send = enter_send if enter_send is not None else AsynBlockingSend()
    arch = Architecture("single_lane_bridge_exactly_n")
    arch.add_global(BLUE_ON, 0)
    arch.add_global(RED_ON, 0)

    blue_ctrl = arch.add_component(
        _exactly_n_controller("BlueController", config.n_per_turn, True)
    )
    red_ctrl = arch.add_component(
        _exactly_n_controller("RedController", config.n_per_turn, False)
    )

    blue_cars = [
        arch.add_component(_car_component(f"BlueCar{i}", BLUE_ON, config.trips))
        for i in range(1, config.cars_per_side + 1)
    ]
    red_cars = [
        arch.add_component(_car_component(f"RedCar{i}", RED_ON, config.trips))
        for i in range(1, config.cars_per_side + 1)
    ]

    # Enter-request connectors: cars -> same-side controller, FIFO queue.
    blue_enter = arch.add_connector("BlueEnter", FifoQueue(size=config.enter_queue_size))
    for car in blue_cars:
        blue_enter.attach_sender(car, "enter", enter_send)
    blue_enter.attach_receiver(blue_ctrl, "enter_req", BlockingReceive())

    red_enter = arch.add_connector("RedEnter", FifoQueue(size=config.enter_queue_size))
    for car in red_cars:
        red_enter.attach_sender(car, "enter", enter_send)
    red_enter.attach_receiver(red_ctrl, "enter_req", BlockingReceive())

    # Exit-notification connectors: cars -> far-side controller, single slot.
    # (Blue cars notify the red controller, and vice versa — Fig. 12/13.)
    blue_exit = arch.add_connector("BlueExit", SingleSlotBuffer())
    for car in blue_cars:
        blue_exit.attach_sender(car, "exits", AsynBlockingSend())
    blue_exit.attach_receiver(red_ctrl, "exit_note", BlockingReceive())

    red_exit = arch.add_connector("RedExit", SingleSlotBuffer())
    for car in red_cars:
        red_exit.attach_sender(car, "exits", AsynBlockingSend())
    red_exit.attach_receiver(blue_ctrl, "exit_note", BlockingReceive())

    return arch


def fix_exactly_n_bridge(arch: Architecture) -> Architecture:
    """Apply the paper's connector-only fix to a Figure 13 architecture.

    Replaces the asynchronous blocking send ports on both enter-request
    connectors with synchronous blocking ones.  No component is touched.
    """
    for conn_name in ("BlueEnter", "RedEnter"):
        arch.connector(conn_name).swap_all_send_ports(SynBlockingSend())
    return arch


def bridge_fault_scenarios() -> List[FaultScenario]:
    """Fault scenarios for the fixed exactly-N bridge.

    Each swaps one controller's enter-request receive for a
    :class:`~repro.core.ports.TimeoutReceive`.  A spurious timeout means
    the controller burns one of its N grants on an empty receive; the
    granted-but-never-delivered request leaves its car waiting forever —
    safety holds (nobody enters without a real grant) but the system
    deadlocks, the characteristic *degraded* outcome.
    """
    return [
        FaultScenario("blue enter_req times out", [
            ReceivePortFault("BlueEnter", "BlueController", TimeoutReceive()),
        ]),
        FaultScenario("red enter_req times out", [
            ReceivePortFault("RedEnter", "RedController", TimeoutReceive()),
        ]),
    ]


def _enter_sends_agree(variant) -> bool:
    """Both sides' enter connectors must use the same send-port kind.

    The paper's experiment varies the enter-request semantics of the
    *design*, not of one side; mixed blue-async/red-sync combinations
    are not part of the Figure 13/14 narrative.
    """
    return variant.choice("send[BlueEnter]") == variant.choice("send[RedEnter]")


def bridge_design_space(config: Optional[BridgeConfig] = None):
    """The single-lane-bridge design space (paper Section 4 as a space).

    Two bases — the exactly-N (Figure 13) and at-most-N (Figure 14)
    shapes — crossed with the enter-request send-port kind on both
    sides (asynchronous blocking, the paper's flawed default, vs
    synchronous blocking, its fix), constrained so both sides agree:
    four variants.  Exploring it with ``invariants=[bridge_safety_prop()]``
    and ``faults=bridge_fault_scenarios()`` rediscovers the paper's
    arc: the async designs FAIL, the sync designs PASS, and the
    at-most-N design — whose controllers tolerate a timed-out enter
    receive by yielding the turn instead of burning a grant — ranks
    first on resilience.
    """
    from ..design import DesignSpace, SendPortAxis

    cfg = config if config is not None else BridgeConfig()
    sends = [AsynBlockingSend(), SynBlockingSend()]
    return DesignSpace(
        "single_lane_bridge",
        bases=[
            ("exactly_n", build_exactly_n_bridge(cfg)),
            ("at_most_n", build_at_most_n_bridge(cfg)),
        ],
        axes=[
            SendPortAxis("BlueEnter", sends),
            SendPortAxis("RedEnter", sends),
        ],
        constraints=[_enter_sends_agree],
        # The bridge state spaces are only tractable against the fused
        # connector models (same encoding the CLI uses throughout).
        fused=True,
    )


# ---------------------------------------------------------------------------
# Figure 14: at-most-N-cars-per-turn
# ---------------------------------------------------------------------------

def _at_most_n_controller(name: str, n: int, starts_with_turn: bool) -> Component:
    """Figure 14 controller: poll requests, yield early when none waiting.

    During its turn the controller polls its enter-request connector
    with a *nonblocking* receive; on ``RECV_FAIL`` (no car waiting) or
    after N grants it sends a turn-transfer message carrying the number
    of cars granted to the other controller, then waits for the other
    controller's turn-transfer, collecting the other side's exit
    notifications it is responsible for.

    Deviation from the paper's prose (recorded in EXPERIMENTS.md): the
    paper changes *all* controller-side receives to nonblocking, making
    the controllers poll everything.  Here only the enter-request
    receive — the one whose failure carries information ("no cars
    waiting, yield the turn") — is nonblocking; the turn-transfer and
    exit-note receives are blocking, since the controller has nothing
    else to do while waiting for them.  This bounds the controllers'
    polling (one probe per grant decision) instead of leaving them
    spinning, which is what keeps the design's state space explorable;
    the granted/yield semantics of Figure 14 are unchanged.
    """
    grant_phase = Seq([
        Assign("grants", 0),
        Do(
            Branch(
                Guard(V("grants") < n),
                receive_message("enter_req", into="req"),
                If(
                    Branch(Guard(V("recv_status") == "RECV_SUCC"),
                           Assign("grants", V("grants") + 1)),
                    Branch(Else(), Break()),  # nobody waiting: yield early
                ),
            ),
            Branch(Guard(V("grants") == n), Break()),
        ),
        send_message("turn_out", V("grants")),
    ])
    wait_phase = Seq([
        # Learn how many cars the other side granted this turn.
        receive_message("turn_in", into="other_grants"),
        # Collect that many exit notifications from the other side's cars.
        Assign("exits_seen", 0),
        Do(
            Branch(Guard(V("exits_seen") < V("other_grants")),
                   receive_message("exit_note", into="note"),
                   Assign("exits_seen", V("exits_seen") + 1)),
            Branch(Guard(V("exits_seen") == V("other_grants")), Break()),
        ),
    ])
    if starts_with_turn:
        cycle = Seq([grant_phase, wait_phase])
    else:
        cycle = Seq([wait_phase, grant_phase])
    return Component(
        name,
        ports={
            "enter_req": RECEIVE,
            "exit_note": RECEIVE,
            "turn_out": SEND,
            "turn_in": RECEIVE,
        },
        body=Seq([EndLabel(), Do(Branch(cycle))]),
        local_vars={
            "grants": 0,
            "exits_seen": 0,
            "other_grants": 0,
            "req": 0,
            "note": 0,
        },
    )


def build_at_most_n_bridge(config: BridgeConfig = BridgeConfig()) -> Architecture:
    """The Figure 14 architecture ("at-most-N-cars-per-turn").

    Synchronous blocking sends for enter requests and turn transfers,
    nonblocking receives everywhere on the controllers (they poll), and
    two new single-slot connectors ``BlueToRed`` / ``RedToBlue`` between
    the controllers.
    """
    arch = Architecture("single_lane_bridge_at_most_n")
    arch.add_global(BLUE_ON, 0)
    arch.add_global(RED_ON, 0)

    blue_ctrl = arch.add_component(
        _at_most_n_controller("BlueController", config.n_per_turn, True)
    )
    red_ctrl = arch.add_component(
        _at_most_n_controller("RedController", config.n_per_turn, False)
    )
    blue_cars = [
        arch.add_component(_car_component(f"BlueCar{i}", BLUE_ON, config.trips))
        for i in range(1, config.cars_per_side + 1)
    ]
    red_cars = [
        arch.add_component(_car_component(f"RedCar{i}", RED_ON, config.trips))
        for i in range(1, config.cars_per_side + 1)
    ]

    blue_enter = arch.add_connector("BlueEnter", FifoQueue(size=config.enter_queue_size))
    for car in blue_cars:
        blue_enter.attach_sender(car, "enter", SynBlockingSend())
    blue_enter.attach_receiver(blue_ctrl, "enter_req", NonblockingReceive())

    red_enter = arch.add_connector("RedEnter", FifoQueue(size=config.enter_queue_size))
    for car in red_cars:
        red_enter.attach_sender(car, "enter", SynBlockingSend())
    red_enter.attach_receiver(red_ctrl, "enter_req", NonblockingReceive())

    blue_exit = arch.add_connector("BlueExit", SingleSlotBuffer())
    for car in blue_cars:
        blue_exit.attach_sender(car, "exits", AsynBlockingSend())
    blue_exit.attach_receiver(red_ctrl, "exit_note", BlockingReceive())

    red_exit = arch.add_connector("RedExit", SingleSlotBuffer())
    for car in red_cars:
        red_exit.attach_sender(car, "exits", AsynBlockingSend())
    red_exit.attach_receiver(blue_ctrl, "exit_note", BlockingReceive())

    # The two new controller-to-controller turn connectors (Fig. 14).
    blue_to_red = arch.add_connector("BlueToRed", SingleSlotBuffer())
    blue_to_red.attach_sender(blue_ctrl, "turn_out", SynBlockingSend())
    blue_to_red.attach_receiver(red_ctrl, "turn_in", BlockingReceive())

    red_to_blue = arch.add_connector("RedToBlue", SingleSlotBuffer())
    red_to_blue.attach_sender(red_ctrl, "turn_out", SynBlockingSend())
    red_to_blue.attach_receiver(blue_ctrl, "turn_in", BlockingReceive())

    return arch

"""The alternating-bit protocol over lossy PnP channels.

A classic verification workload exercising the lossy-channel block: the
:class:`~repro.core.channels.DroppingBuffer` silently discards messages
when full, so a sender that wants reliable delivery must implement
retransmission on top — exactly the alternating-bit protocol (ABP).

* The ABP sender transmits ``(payload, bit)`` pairs through an
  asynchronous *nonblocking* send port (fire-and-forget — the lossy
  medium) over a dropping buffer, then polls for an acknowledgement
  with a nonblocking receive; on a missing or stale ack it retransmits.
* The ABP receiver receives frames; a frame with the expected bit is
  *delivered* (counted) and acknowledged; a duplicate is re-acknowledged
  but not re-delivered.

The payload encodes the sequence number, and the receiver asserts
in-order, no-duplicate delivery — the protocol's correctness property.
Retransmission bounds (``max_sends``) keep the experiment finite; runs
that exhaust the bound simply stop (the safety property is what is
checked; message loss means delivery is not guaranteed).
"""

from __future__ import annotations

from functools import partial
from typing import List

from ..core import (
    Architecture,
    AsynNonblockingSend,
    ChannelFault,
    Component,
    CorruptingChannel,
    DroppingBuffer,
    DuplicatingChannel,
    FaultScenario,
    LossyChannel,
    NonblockingReceive,
    RECEIVE,
    ReorderingChannel,
    SEND,
    receive_message,
    send_message,
)
from ..mc.props import Prop, global_prop
from ..psl.expr import V
from ..psl.stmt import (
    Assert,
    Assign,
    Branch,
    Break,
    Do,
    Else,
    EndLabel,
    Guard,
    If,
    Seq,
)

#: Frame encoding: payload = 10 * seq + bit, so both survive one field.


def build_abp(
    messages: int = 2,
    max_sends: int = 4,
    receiver_polls: int = 0,
    name: str = "abp",
) -> Architecture:
    """An ABP sender/receiver pair over dropping buffers.

    ``messages`` is how many distinct payloads must arrive in order;
    ``max_sends`` bounds (re)transmissions per message so the state
    space stays finite under arbitrary loss.  ``receiver_polls`` > 0
    additionally bounds how many receive attempts the receiver makes
    (the unbounded-poll receiver is realistic but multiplies the state
    space; a bound of ``2 * messages * max_sends`` is enough to observe
    every protocol behaviour).
    """
    arch = Architecture(name)
    delivered = arch.add_global("delivered", 0)
    arch.add_global("acked_messages", 0)

    sender_body = Seq([
        Do(
            Branch(
                Guard(V("seq") < messages),
                # (re)transmit the current frame until acked or exhausted
                Assign("tries", 0),
                Do(
                    Branch(
                        Guard((V("got_ack") == 0) & (V("tries") < max_sends)),
                        Assign("tries", V("tries") + 1),
                        send_message("net_out", V("seq") * 10 + V("bit")),
                        receive_message("ack_in", into="ack"),
                        If(
                            Branch(Guard((V("recv_status") == "RECV_SUCC")
                                         & (V("ack") == V("bit"))),
                                   Assign("got_ack", 1)),
                            Branch(Else()),  # lost or stale ack: retry
                        ),
                    ),
                    Branch(Guard((V("got_ack") == 1)
                                 | (V("tries") == max_sends)),
                           Break()),
                ),
                If(
                    Branch(Guard(V("got_ack") == 1),
                           Assign("acked_messages", V("acked_messages") + 1),
                           Assign("seq", V("seq") + 1),
                           Assign("bit", 1 - V("bit")),
                           Assign("got_ack", 0)),
                    Branch(Else(), Break()),  # gave up on a frame
                ),
            ),
            Branch(Guard(V("seq") == messages), Break()),
        ),
        EndLabel(),
    ])
    sender = Component(
        "AbpSender",
        ports={"net_out": SEND, "ack_in": RECEIVE},
        body=sender_body,
        local_vars={"seq": 0, "bit": 0, "tries": 0, "got_ack": 0, "ack": 0},
    )

    if receiver_polls > 0:
        poll_guard = [Guard(V("polls") < receiver_polls),
                      Assign("polls", V("polls") + 1)]
        stop_branch = [Branch(Guard(V("polls") == receiver_polls), Break())]
    else:
        poll_guard = []
        stop_branch = []
    receiver_body = Seq([
        EndLabel(),
        Do(Branch(
            *poll_guard,
            receive_message("net_in", into="frame"),
            If(
                Branch(
                    Guard((V("recv_status") == "RECV_SUCC")
                          & ((V("frame") % 10) == V("expected_bit"))),
                    # a new frame: deliver in order, exactly once
                    Assert((V("frame") // 10) == V("delivered"),
                           comment="frames must arrive in sequence order"),
                    Assign("delivered", V("delivered") + 1),
                    send_message("ack_out", V("expected_bit")),
                    Assign("expected_bit", 1 - V("expected_bit")),
                ),
                Branch(
                    Guard((V("recv_status") == "RECV_SUCC")
                          & ((V("frame") % 10) != V("expected_bit"))),
                    # duplicate of the previous frame: re-ack only
                    send_message("ack_out", V("frame") % 10),
                ),
                Branch(Else()),  # no frame available
            ),
        ), *stop_branch),
    ])
    receiver = Component(
        "AbpReceiver",
        ports={"net_in": RECEIVE, "ack_out": SEND},
        body=receiver_body,
        local_vars={"frame": 0, "expected_bit": 0, "polls": 0},
    )

    arch.add_component(sender)
    arch.add_component(receiver)

    data_link = arch.add_connector("DataLink", DroppingBuffer(size=1))
    data_link.attach_sender(sender, "net_out", AsynNonblockingSend())
    data_link.attach_receiver(receiver, "net_in", NonblockingReceive())

    ack_link = arch.add_connector("AckLink", DroppingBuffer(size=1))
    ack_link.attach_sender(receiver, "ack_out", AsynNonblockingSend())
    ack_link.attach_receiver(sender, "ack_in", NonblockingReceive())

    return arch


def _delivered_equals(messages: int, v) -> bool:
    return v.global_("delivered") == messages


def abp_delivery_prop(messages: int = 1) -> Prop:
    """The goal state for resilience sweeps: every payload delivered.

    Built from a module-level predicate via ``functools.partial`` so the
    prop pickles — required for ``verify_resilience(jobs=N)``.
    """
    return global_prop(
        "all delivered",
        partial(_delivered_equals, messages),
        "delivered",
    )


def abp_fault_scenarios(corrupt_value: int = 55) -> List[FaultScenario]:
    """One scenario per fault-channel kind, each attacking the data link.

    The garbage payload defaults to 55 — ``seq=5, bit=5`` decodes to a
    bit that matches neither 0 nor 1, a frame the protocol must reject.
    Swapping only ``DataLink`` keeps each scenario's state space small
    enough for routine checking while still exercising every fault.
    """
    return [
        FaultScenario("lossy data link",
                      [ChannelFault("DataLink", LossyChannel())]),
        FaultScenario("duplicating data link",
                      [ChannelFault("DataLink", DuplicatingChannel())]),
        FaultScenario("reordering data link",
                      [ChannelFault("DataLink", ReorderingChannel())]),
        FaultScenario("corrupting data link",
                      [ChannelFault("DataLink",
                                    CorruptingChannel(corrupt_value=corrupt_value))]),
    ]

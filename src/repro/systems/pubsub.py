"""Publish/subscribe built on the PnP standard interfaces (paper §2.2/§6).

The paper claims its standard component interfaces "can be used for
other kinds of interactions such as RPC and publish/subscribe", and its
Section 3 notes that a PnP channel "may represent an event pool where
delivery of events is based on subscription".  This module delivers on
that claim with a new *channel* building block, :class:`EventPool`:

* every published event is copied into a per-subscriber FIFO store;
* subscribers pull events through ordinary receive ports using the
  unchanged standard interface (selective requests filter by topic
  tag);
* a subscriber whose store is full simply misses the event (classic
  best-effort pub/sub) — the publisher is not blocked or notified.

Publisher-side semantics: the pool confirms storage (``IN_OK``) and
delivery (``RECV_OK``) as soon as the event is filed into the
subscriber stores, so synchronous and asynchronous publish ports
coincide — the standard decoupling property of publish/subscribe, which
the F-pubsub experiment demonstrates.

The pool identifies subscribers dynamically: the first receive request
from an unknown receive port claims the next subscriber slot.  The spec
is parameterized by the number of subscriber slots and per-subscriber
queue depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

from ..core import (
    Architecture,
    AsynBlockingSend,
    BlockingReceive,
    Component,
    RECEIVE,
    SEND,
    SendPortSpec,
    receive_message,
    send_message,
)
from ..core.channels import ChannelSpec
from ..core.signals import IN_OK, OUT_FAIL, OUT_OK, RECV_OK
from ..psl.expr import C, V
from ..psl.stmt import (
    AnyField,
    Assign,
    Bind,
    Branch,
    Break,
    Do,
    Else,
    EndLabel,
    Guard,
    If,
    MatchEq,
    Recv,
    Send,
    Seq,
    Stmt,
)
from ..psl.system import ProcessDef


def _event_pool_body(slots: int, depth: int) -> Stmt:
    """The event-pool channel process.

    Locals ``subpid{k}`` hold the receive-port pid bound to subscriber
    slot *k* (-1 while unclaimed); ``cnt{k}`` tracks the depth of the
    slot's store.
    """
    store = lambda k: f"store{k}"  # noqa: E731

    def fanout() -> Stmt:
        """Copy the incoming event into every claimed subscriber store."""
        copies: List[Stmt] = []
        for k in range(slots):
            copies.append(If(
                Branch(
                    Guard((V(f"subpid{k}") != -1) & (V(f"cnt{k}") < depth)),
                    Send(store(k),
                         [V("m_data"), V("m_sender"), V("m_sel"), V("m_tag"),
                          V("m_remove"), C(0)],
                         comment=f"files a copy for subscriber slot {k}"),
                    Assign(f"cnt{k}", V(f"cnt{k}") + 1),
                ),
                Branch(Else()),  # unclaimed slot or full store: copy missed
            ))
        return Seq(copies)

    def claim_or_serve() -> Stmt:
        """Route a receive request to its slot, claiming one if new."""
        def serve(k: int) -> Stmt:
            deliver = Seq([
                Send("recv_sig", [C(OUT_OK), V("r_sender")],
                     comment="grants the receive request"),
                Send("recv_data",
                     [V("b_data"), V("r_sender"), V("b_sel"), V("b_tag"),
                      V("b_remove"), C(0)],
                     comment="delivers the event copy"),
            ])
            bind_all = [Bind("b_data"), Bind("b_sender"), Bind("b_sel"),
                        Bind("b_tag"), Bind("b_remove"), AnyField()]
            bind_tagged = [Bind("b_data"), Bind("b_sender"), Bind("b_sel"),
                           MatchEq(V("r_tag")), Bind("b_remove"), AnyField()]
            return If(
                Branch(
                    Guard(V("r_sel") == 0),
                    If(
                        Branch(Recv(store(k), bind_all,
                                    comment="takes the oldest event"),
                               Assign(f"cnt{k}", V(f"cnt{k}") - 1),
                               deliver),
                        Branch(Else(),
                               Send("recv_sig", [C(OUT_FAIL), V("r_sender")],
                                    comment="no event pending")),
                    ),
                ),
                Branch(
                    Else(),  # topic-filtered subscription
                    If(
                        Branch(Recv(store(k), bind_tagged, matching=True,
                                    comment="takes the oldest matching event"),
                               Assign(f"cnt{k}", V(f"cnt{k}") - 1),
                               Assign("b_tag", V("r_tag")),
                               deliver),
                        Branch(Else(),
                               Send("recv_sig", [C(OUT_FAIL), V("r_sender")])),
                    ),
                ),
            )

        branches = []
        for k in range(slots):
            branches.append(Branch(
                Guard(V(f"subpid{k}") == V("r_sender")), serve(k)
            ))
        for k in range(slots):
            # A new port claims the *first* free slot: every earlier slot
            # must already be claimed, and by someone else.
            cond = V(f"subpid{k}") == -1
            for j in range(k):
                cond = cond & (V(f"subpid{j}") != -1)
                cond = cond & (V(f"subpid{j}") != V("r_sender"))
            branches.append(Branch(
                Guard(cond),
                Assign(f"subpid{k}", V("r_sender"),
                       comment=f"claims subscriber slot {k}"),
                serve(k),
            ))
        branches.append(Branch(
            Else(),
            Send("recv_sig", [C(OUT_FAIL), V("r_sender")],
                 comment="no subscriber slot available"),
        ))
        return If(*branches)

    return Seq([
        EndLabel(),
        Do(
            Branch(
                Recv("sender_data",
                     [Bind("m_data"), Bind("m_sender"), Bind("m_sel"),
                      Bind("m_tag"), Bind("m_remove"), AnyField()],
                     comment="receives a published event"),
                Send("sender_sig", [C(IN_OK), V("m_sender")],
                     comment="confirms acceptance into the pool"),
                fanout(),
                Send("sender_sig", [C(RECV_OK), V("m_sender")],
                     comment="publish/subscribe decoupling: delivery is "
                             "confirmed at fan-out time"),
            ),
            Branch(
                Recv("recv_data",
                     [AnyField(), Bind("r_sender"), Bind("r_sel"),
                      Bind("r_tag"), Bind("r_remove"), AnyField()],
                     comment="receives a subscription pull request"),
                claim_or_serve(),
            ),
        ),
    ])


@dataclass(frozen=True)
class EventPool(ChannelSpec):
    """An event-pool channel: per-subscriber copies, pull delivery."""

    kind = "event_pool"
    description = (
        "An event service: every published event is copied into a FIFO "
        "store per subscriber; subscribers pull (optionally filtered by "
        "topic tag); full stores miss events; publishers are never blocked."
    )
    subscribers: int = 2
    depth: int = 1

    def __post_init__(self) -> None:
        if self.subscribers < 1:
            raise ValueError("EventPool needs at least 1 subscriber slot")
        if self.depth < 1:
            raise ValueError("EventPool depth must be >= 1")

    @property
    def capacity(self) -> int:
        return self.depth

    def internal_stores(self) -> Dict[str, int]:
        return {f"store{k}": self.depth for k in range(self.subscribers)}

    def key(self) -> Hashable:
        return (self.kind, self.subscribers, self.depth, self.faithful)

    def display_name(self) -> str:
        return f"event_pool({self.subscribers} subs, depth {self.depth})"

    def build_def(self) -> ProcessDef:
        local_vars: Dict[str, int] = {
            "m_data": 0, "m_sender": 0, "m_sel": 0, "m_tag": 0, "m_remove": 0,
            "r_sender": 0, "r_sel": 0, "r_tag": 0, "r_remove": 0,
            "b_data": 0, "b_sender": 0, "b_sel": 0, "b_tag": 0, "b_remove": 0,
        }
        for k in range(self.subscribers):
            local_vars[f"subpid{k}"] = -1
            local_vars[f"cnt{k}"] = 0
        return ProcessDef(
            f"event_pool_{self.subscribers}_{self.depth}",
            _event_pool_body(self.subscribers, self.depth),
            chan_params=self.chan_params,
            local_vars=local_vars,
        )


def build_pubsub(
    publishers: int = 1,
    subscribers: int = 2,
    events_each: int = 1,
    depth: int = 2,
    topics: Optional[Sequence[int]] = None,
    publish_port: Optional[SendPortSpec] = None,
    name: str = "pubsub",
) -> Architecture:
    """A publish/subscribe system on one :class:`EventPool` connector.

    Publisher *i* publishes ``events_each`` events on topic
    ``topics[i % len(topics)]`` (default: topic = publisher index).
    Every subscriber pulls until it has received ``publishers *
    events_each`` events (or its topic's share when filtering).
    """
    publish_port = publish_port if publish_port is not None else AsynBlockingSend()
    topics = list(topics) if topics is not None else list(range(publishers))
    arch = Architecture(name)
    pool = arch.add_connector("events", EventPool(subscribers=subscribers,
                                                  depth=depth))

    for i in range(publishers):
        published = arch.add_global(f"published_{i}", 0)
        topic = topics[i % len(topics)]
        body = Seq([
            Do(
                Branch(
                    Guard(V(published) < events_each),
                    send_message("out", V(published) + 100 * (i + 1) + 1,
                                 tag=topic),
                    Assign(published, V(published) + 1),
                ),
                Branch(Guard(V(published) == events_each), Break()),
            ),
        ])
        comp = Component(f"Publisher{i}", ports={"out": SEND}, body=body)
        arch.add_component(comp)
        pool.attach_sender(comp, "out", publish_port)

    total = publishers * events_each
    for j in range(subscribers):
        got = arch.add_global(f"received_{j}", 0)
        body = Seq([
            Do(
                Branch(
                    Guard(V(got) < total),
                    receive_message("inp", into="event"),
                    If(
                        Branch(Guard(V("recv_status") == "RECV_SUCC"),
                               Assign(got, V(got) + 1)),
                        Branch(Else()),
                    ),
                ),
                Branch(Guard(V(got) == total), Break()),
            ),
        ])
        comp = Component(f"Subscriber{j}", ports={"inp": RECEIVE}, body=body,
                         local_vars={"event": 0})
        arch.add_component(comp)
        pool.attach_receiver(comp, "inp", BlockingReceive())

    return arch

"""Complete example systems built on the PnP layer.

* :mod:`repro.systems.bridge` — the paper's single-lane bridge case
  study (Section 4, Figures 12-14);
* :mod:`repro.systems.producer_consumer` — parameterized
  producer/consumer workloads for the block-semantics experiments;
* :mod:`repro.systems.pubsub` — publish/subscribe via an event-pool
  channel block (paper Section 6 extension);
* :mod:`repro.systems.rpc` — remote procedure call assembled from the
  message-passing blocks (paper Section 6 extension);
* :mod:`repro.systems.abp` — the alternating-bit protocol over lossy
  dropping-buffer channels;
* :mod:`repro.systems.dining` — dining philosophers: a component-level
  deadlock found and fixed under unchanged connectors;
* :mod:`repro.systems.gas_station` — the authors' classic benchmark:
  a crossed-delivery race fixed by selective receive.
"""

from .abp import build_abp
from .dining import build_dining, meals_prop
from .gas_station import all_fueled_prop, build_gas_station
from .bridge import (
    BLUE_ON,
    BridgeConfig,
    RED_ON,
    bridge_safety_prop,
    build_at_most_n_bridge,
    build_exactly_n_bridge,
    crash_prop,
    fix_exactly_n_bridge,
)
from .producer_consumer import (
    ConsumerSpec,
    ProducerSpec,
    build_producer_consumer,
    simple_pair,
)
from .pubsub import EventPool, build_pubsub
from .rpc import build_rpc

__all__ = [
    "BLUE_ON",
    "BridgeConfig",
    "ConsumerSpec",
    "EventPool",
    "ProducerSpec",
    "RED_ON",
    "bridge_safety_prop",
    "build_abp",
    "build_at_most_n_bridge",
    "all_fueled_prop",
    "build_dining",
    "build_gas_station",
    "build_exactly_n_bridge",
    "build_producer_consumer",
    "build_pubsub",
    "build_rpc",
    "crash_prop",
    "fix_exactly_n_bridge",
    "meals_prop",
    "simple_pair",
]

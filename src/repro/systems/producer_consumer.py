"""A parameterized producer/consumer system.

The workhorse system for the block-semantics experiments (F1, F2, F4,
T-opt): one or more producers send K messages each through a connector
to one or more consumers.  Global counters expose the observables the
experiments need:

* ``produced_<i>`` / ``acked_<i>`` — messages sent / send-confirmations
  received by producer *i*;
* ``consumed_<j>`` — messages successfully received by consumer *j*;
* ``last_<j>`` — the last payload consumer *j* received (for ordering
  checks: FIFO vs priority).

Producers send payloads ``base + 1, base + 2, ...`` with a configurable
tag, so priority-queue and selective-receive behaviour is observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core import (
    Architecture,
    BlockingReceive,
    ChannelSpec,
    Component,
    RECEIVE,
    ReceivePortSpec,
    SEND,
    SendPortSpec,
    SingleSlotBuffer,
    SynBlockingSend,
    receive_message,
    send_message,
)
from ..psl.expr import V
from ..psl.stmt import Assign, Branch, Break, Do, DStep, Else, Guard, If, Seq


@dataclass
class ProducerSpec:
    """One producer: how many messages, with what payloads and tags."""

    messages: int = 1
    payload_base: int = 10
    tag: int = 0
    port: SendPortSpec = field(default_factory=SynBlockingSend)


@dataclass
class ConsumerSpec:
    """One consumer: how many successful receives it needs."""

    receives: int = 1
    port: ReceivePortSpec = field(default_factory=BlockingReceive)
    selective_tag: Optional[int] = None
    #: stop issuing requests after this many attempts (0 = unlimited);
    #: useful with nonblocking ports, which may fail and must not spin
    #: forever in a finite experiment.
    max_attempts: int = 0
    #: wait until every producer has had all sends confirmed before the
    #: first receive — lets ordering experiments pin down what was queued.
    start_after_acks: bool = False


def build_producer_consumer(
    producers: Sequence[ProducerSpec],
    channel: ChannelSpec = SingleSlotBuffer(),
    consumers: Sequence[ConsumerSpec] = (ConsumerSpec(),),
    name: str = "producer_consumer",
) -> Architecture:
    """Assemble the producer/consumer architecture."""
    arch = Architecture(name)
    conn = arch.add_connector("link", channel)

    for i, spec in enumerate(producers):
        acked = arch.add_global(f"acked_{i}", 0)
        produced = arch.add_global(f"produced_{i}", 0)
        body = Seq([
            Do(
                Branch(
                    Guard(V(produced) < spec.messages),
                    Assign(produced, V(produced) + 1),
                    send_message("out", V(produced) + (spec.payload_base - 1),
                                 tag=spec.tag),
                    If(
                        Branch(Guard(V("send_status") == "SEND_SUCC"),
                               Assign(acked, V(acked) + 1)),
                        Branch(Else()),  # checking ports may report SEND_FAIL
                    ),
                ),
                Branch(Guard(V(produced) == spec.messages), Break()),
            ),
        ])
        comp = Component(f"Producer{i}", ports={"out": SEND}, body=body)
        arch.add_component(comp)
        conn.attach_sender(comp, "out", spec.port)

    for j, spec in enumerate(consumers):
        consumed = arch.add_global(f"consumed_{j}", 0)
        last = arch.add_global(f"last_{j}", 0)
        attempts = arch.add_global(f"attempts_{j}", 0)
        want_more = V(consumed) < spec.receives
        if spec.max_attempts:
            want_more = want_more & (V(attempts) < spec.max_attempts)
        done = V(consumed) == spec.receives
        if spec.max_attempts:
            done = done | (V(attempts) == spec.max_attempts)
        prologue = []
        if spec.start_after_acks:
            all_acked = None
            for i, pspec in enumerate(producers):
                clause = V(f"acked_{i}") == pspec.messages
                all_acked = clause if all_acked is None else (all_acked & clause)
            prologue.append(Guard(all_acked,
                                  comment="waits for all sends to be confirmed"))
        # `last` is written before `consumed` is bumped, so any state with
        # consumed == n shows the n-th payload in `last`.
        # Only track attempts when a bound is requested; an unbounded
        # counter would make the state space infinite for polling ports.
        count_attempt = (
            [Assign(attempts, V(attempts) + 1)] if spec.max_attempts else []
        )
        body = Seq(prologue + [
            Do(
                Branch(
                    Guard(want_more),
                    *count_attempt,
                    receive_message("inp", into="msg",
                                    selective_tag=spec.selective_tag),
                    If(
                        Branch(Guard(V("recv_status") == "RECV_SUCC"),
                               # one atomic step, so `last` and `consumed`
                               # are always mutually consistent
                               DStep([Assign(last, V("msg")),
                                      Assign(consumed, V(consumed) + 1)])),
                        Branch(Else()),
                    ),
                ),
                Branch(Guard(done), Break()),
            ),
        ])
        comp = Component(
            f"Consumer{j}", ports={"inp": RECEIVE}, body=body,
            local_vars={"msg": 0},
        )
        arch.add_component(comp)
        conn.attach_receiver(comp, "inp", spec.port)

    return arch


def simple_pair(
    send_port: SendPortSpec,
    channel: ChannelSpec,
    recv_port: ReceivePortSpec = None,
    messages: int = 1,
    receives: Optional[int] = None,
    max_attempts: int = 0,
) -> Architecture:
    """One producer, one consumer — the Figure 2 shape."""
    recv_port = recv_port if recv_port is not None else BlockingReceive()
    return build_producer_consumer(
        producers=[ProducerSpec(messages=messages, port=send_port)],
        channel=channel,
        consumers=[ConsumerSpec(
            receives=receives if receives is not None else messages,
            port=recv_port,
            max_attempts=max_attempts,
        )],
    )

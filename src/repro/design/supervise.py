"""Supervised worker pools: timeouts, retries, and crash classification.

``concurrent.futures.ProcessPoolExecutor`` treats one dead worker as a
pool-wide catastrophe: every pending future is poisoned with
``BrokenProcessPool`` and nothing tells you *which* job killed the
worker.  For a verification platform meant to run for hours over
thousands of jobs that is the wrong failure model, so this module
manages one :mod:`multiprocessing` process **per job** instead:

* a dead worker is attributed to exactly the job it was running and
  classified (:data:`CAUSE_WORKER_DIED`, :data:`CAUSE_TIMEOUT`,
  :data:`CAUSE_EXCEPTION`, :data:`CAUSE_UNPICKLABLE`);
* the failed job is retried with exponential backoff and deterministic
  jitter (seeded per job, so two runs back off identically) up to a
  bounded attempt count, while other jobs keep flowing through the
  remaining slots;
* a job that exhausts its retries yields a :class:`JobFailure` outcome
  — the *caller* decides what a failed job means (``explore`` degrades
  it to an ``INCOMPLETE`` verdict) instead of the run aborting;
* a per-job wall-clock ``timeout`` terminates stuck workers;
* a ``stop`` event (set by a signal handler) drains the pool
  gracefully: running workers are terminated, finalized outcomes are
  returned, unfinished jobs are simply absent from the result.

Outcomes are returned in submission order, which is what lets the
exploration scheduler keep its determinism contract (identical event
streams and tables for fault-free serial and parallel runs).

The worker side ignores ``SIGINT`` so a terminal Ctrl-C (delivered to
the whole foreground process group) reaches only the supervisor, which
then shuts workers down deliberately.
"""

from __future__ import annotations

import multiprocessing
import random
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_connections
from typing import (
    Any,
    Callable,
    FrozenSet,
    List,
    Optional,
    Sequence,
)

__all__ = [
    "CAUSE_EXCEPTION",
    "CAUSE_TIMEOUT",
    "CAUSE_UNPICKLABLE",
    "CAUSE_WORKER_DIED",
    "JobFailure",
    "JobOutcome",
    "RetryPolicy",
    "SupervisedPool",
]

#: Crash classification: why a job did not produce a result.
CAUSE_WORKER_DIED = "worker-died"
CAUSE_TIMEOUT = "timeout"
CAUSE_EXCEPTION = "checker-exception"
CAUSE_UNPICKLABLE = "unpicklable"

#: How often the supervisor wakes to check timeouts/backoffs/stop (s).
_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``backoff(attempt, seed)`` for attempt 1, 2, ... grows as
    ``base * 2**(attempt-1)`` capped at ``backoff_max``, times a jitter
    factor in ``[1-jitter, 1+jitter]`` drawn from a per-job seeded RNG —
    retries spread out, yet two runs of the same job back off
    identically.  Timeouts are not retried by default: a job that blew
    its wall-clock budget once will almost surely blow it again.

    The policy is cause-agnostic: besides the worker-supervision causes
    here, :mod:`repro.design.sqlcache` reuses it (with its own
    ``CAUSE_DB_LOCKED``) to pace retries on SQLite writer contention,
    so every retry loop in the runtime backs off with one discipline.
    """

    max_retries: int = 1
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    jitter: float = 0.25
    retry_on: FrozenSet[str] = frozenset({CAUSE_WORKER_DIED,
                                          CAUSE_EXCEPTION})

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def should_retry(self, cause: str, attempts: int) -> bool:
        return cause in self.retry_on and attempts < self.max_attempts

    def backoff(self, attempt: int, seed: str = "") -> float:
        delay = min(self.backoff_base * (2 ** max(0, attempt - 1)),
                    self.backoff_max)
        if self.jitter <= 0:
            return delay
        rng = random.Random(f"{seed}:{attempt}")
        return delay * (1.0 - self.jitter + 2.0 * self.jitter * rng.random())


@dataclass(frozen=True)
class JobFailure:
    """Why a job is finally failed, after supervision gave up."""

    cause: str
    detail: str
    attempts: int

    def describe(self) -> str:
        tries = f"{self.attempts} attempt" + ("s" if self.attempts != 1
                                              else "")
        return f"{self.cause} after {tries}: {self.detail}"


@dataclass
class JobOutcome:
    """Final supervision outcome for one job: a result or a failure."""

    key: Any
    result: Any = None
    failure: Optional[JobFailure] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.failure is None


def _worker_main(task: Callable[[Any], Any], payload: Any, conn) -> None:
    """Run ``task`` in the child; ship the result (or traceback) back."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    try:
        result = task(payload)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        finally:
            conn.close()
        return
    try:
        conn.send(("ok", result))
    finally:
        conn.close()


@dataclass
class _Slot:
    """One supervised job's mutable bookkeeping."""

    order: int
    key: Any
    payload: Any
    attempts: int = 0
    proc: Any = None
    conn: Any = None
    started_at: float = 0.0
    not_before: float = 0.0
    outcome: Optional[JobOutcome] = None


class SupervisedPool:
    """Run jobs in supervised one-process-per-job workers.

    Parameters
    ----------
    workers:
        Maximum concurrently live worker processes.
    timeout:
        Per-job wall-clock limit in seconds (None = unlimited); a job
        past it is terminated and classified :data:`CAUSE_TIMEOUT`.
    retry:
        The :class:`RetryPolicy` for failed jobs.
    context:
        A :mod:`multiprocessing` context or start-method name (default:
        the platform default, ``fork`` on Linux).
    """

    def __init__(self, workers: int, *, timeout: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 context: Any = None) -> None:
        self.workers = max(1, int(workers))
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        if isinstance(context, str):
            context = multiprocessing.get_context(context)
        self._ctx = context or multiprocessing.get_context()

    # -- lifecycle of one slot -------------------------------------------

    def _launch(self, task: Callable[[Any], Any], slot: _Slot) -> None:
        recv, send = self._ctx.Pipe(duplex=False)
        slot.proc = self._ctx.Process(
            target=_worker_main, args=(task, slot.payload, send),
            daemon=True)
        slot.proc.start()
        send.close()  # the child's end; parent keeps the receiving half
        slot.conn = recv
        slot.attempts += 1
        slot.started_at = time.monotonic()

    def _reap(self, slot: _Slot) -> None:
        """Close the pipe and join the (already finished) process."""
        if slot.conn is not None:
            slot.conn.close()
            slot.conn = None
        if slot.proc is not None:
            slot.proc.join(timeout=5.0)
            slot.proc = None

    def _terminate(self, slot: _Slot) -> None:
        if slot.proc is not None and slot.proc.is_alive():
            slot.proc.terminate()
            slot.proc.join(timeout=1.0)
            if slot.proc.is_alive():  # pragma: no cover - stubborn child
                slot.proc.kill()
                slot.proc.join(timeout=1.0)
        self._reap(slot)

    # -- the supervision loop --------------------------------------------

    def run(
        self,
        task: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        keys: Optional[Sequence[Any]] = None,
        stop: Optional[Any] = None,
        stop_after: Optional[Callable[[JobOutcome], bool]] = None,
        on_retry: Optional[Callable[[Any, str, int, float], None]] = None,
    ) -> List[JobOutcome]:
        """Supervise ``task(payload)`` for every payload.

        Returns :class:`JobOutcome` values **in submission order**.
        ``keys`` (default: the payload index) label outcomes and seed
        the retry jitter.  ``stop`` is an optional event-like object
        (``is_set()``); once set, running workers are terminated and
        only already-finalized outcomes are returned.  ``stop_after``
        is evaluated on finalized outcomes *in submission order*; the
        first True cancels everything behind it and truncates the
        result to that prefix (the scheduler's first-pass policy).
        ``on_retry(key, cause, attempt, delay)`` observes each retry.
        """
        keys = list(keys) if keys is not None else list(range(len(payloads)))
        slots = [_Slot(order=i, key=key, payload=payload)
                 for i, (key, payload) in enumerate(zip(keys, payloads))]
        pending: deque[_Slot] = deque(slots)
        running: List[_Slot] = []
        emitted = 0  # submission-order prefix already checked by stop_after
        truncate_at: Optional[int] = None

        def fail_or_retry(slot: _Slot, cause: str, detail: str) -> None:
            if self.retry.should_retry(cause, slot.attempts):
                delay = self.retry.backoff(slot.attempts, seed=str(slot.key))
                slot.not_before = time.monotonic() + delay
                if on_retry is not None:
                    on_retry(slot.key, cause, slot.attempts, delay)
                pending.append(slot)
            else:
                slot.outcome = JobOutcome(
                    key=slot.key,
                    failure=JobFailure(cause=cause, detail=detail,
                                       attempts=slot.attempts),
                    attempts=slot.attempts)

        try:
            while pending or running:
                if stop is not None and stop.is_set():
                    break
                now = time.monotonic()

                # Fill free slots with jobs whose backoff has elapsed.
                if pending and len(running) < self.workers:
                    waiting = len(pending)
                    while waiting and len(running) < self.workers:
                        slot = pending.popleft()
                        waiting -= 1
                        if slot.not_before > now:
                            pending.append(slot)  # still backing off
                            continue
                        self._launch(task, slot)
                        running.append(slot)

                if not running:
                    # Everything left is backing off; sleep to the first.
                    wake = min(s.not_before for s in pending)
                    time.sleep(max(0.0, min(wake - now, _POLL_SECONDS)))
                    continue

                ready = _wait_connections([s.conn for s in running],
                                          timeout=_POLL_SECONDS)
                now = time.monotonic()
                for slot in list(running):
                    finalized_here = False
                    if slot.conn in ready or slot.conn.poll():
                        try:
                            status, value = slot.conn.recv()
                        except (EOFError, OSError):
                            # Pipe EOF can arrive before the exit status
                            # is reapable; join first so the code is real.
                            slot.proc.join(timeout=5.0)
                            exitcode = slot.proc.exitcode
                            self._reap(slot)
                            fail_or_retry(
                                slot, CAUSE_WORKER_DIED,
                                "worker closed its pipe without a result "
                                f"(exit code {exitcode})")
                        else:
                            self._reap(slot)
                            if status == "ok":
                                slot.outcome = JobOutcome(
                                    key=slot.key, result=value,
                                    attempts=slot.attempts)
                            else:
                                fail_or_retry(slot, CAUSE_EXCEPTION,
                                              str(value))
                        finalized_here = True
                    elif slot.proc.exitcode is not None:
                        exitcode = slot.proc.exitcode
                        self._reap(slot)
                        fail_or_retry(
                            slot, CAUSE_WORKER_DIED,
                            f"worker exited with code {exitcode} before "
                            "reporting a result")
                        finalized_here = True
                    elif (self.timeout is not None
                          and now - slot.started_at > self.timeout):
                        self._terminate(slot)
                        fail_or_retry(
                            slot, CAUSE_TIMEOUT,
                            f"job exceeded its {self.timeout:g}s wall-clock "
                            "timeout and was terminated")
                        finalized_here = True
                    if finalized_here:
                        running.remove(slot)

                # Evaluate the first-pass predicate on the finalized
                # submission-order prefix.
                if stop_after is not None:
                    while (emitted < len(slots)
                           and slots[emitted].outcome is not None):
                        if stop_after(slots[emitted].outcome):
                            truncate_at = emitted + 1
                            break
                        emitted += 1
                    if truncate_at is not None:
                        break
        finally:
            for slot in running:
                self._terminate(slot)

        if truncate_at is not None:
            # First-pass: everything up to the trigger is finalized by
            # construction; jobs behind it are dropped, matching the
            # serial loop's break-after-PASS semantics.
            return [s.outcome for s in slots[:truncate_at]]
        return [s.outcome for s in slots if s.outcome is not None]

"""repro.design — design-space exploration with a persistent result cache.

The paper makes "experimenting with alternative design choices of
interaction semantics" cheap by reusing block and component models
across design iterations.  This package makes the experiment itself a
first-class, resumable object:

* :mod:`~repro.design.space` — declare a :class:`DesignSpace`: base
  architecture(s) plus per-connector variation axes and constraints;
* :mod:`~repro.design.fingerprint` — content-hash each variant's
  verification job so identical jobs run once;
* :mod:`~repro.design.cache` — persist verdicts on disk, keyed by
  fingerprint, so re-runs only verify what changed (the single-writer
  JSONL journal);
* :mod:`~repro.design.sqlcache` — the concurrent-safe SQLite/WAL
  verdict store: many reader/writer processes, LRU eviction,
  quarantine-on-corruption;
* :mod:`~repro.design.backend` — the :class:`CacheBackend` protocol
  and :func:`open_cache`, which picks the right backend for a
  directory;
* :mod:`~repro.design.scheduler` — :func:`explore`: parallel,
  cheapest-first, cache-aware execution with early-exit policies;
* :mod:`~repro.design.supervise` — the fault-tolerant worker pool:
  per-job timeouts, bounded retries, crash classification;
* :mod:`~repro.design.journal` — the checksummed per-run journal
  behind checkpoint/resume (``explore(resume=RUN_ID)``);
* :mod:`~repro.design.rank` — Pareto-rank the surviving variants by
  (verdict, states explored, resilience).

Typical use::

    from repro.design import (ChannelAxis, DesignSpace, ResultCache,
                              SendPortAxis, explore)

    space = DesignSpace("pc", simple_pair(...), axes=[
        ChannelAxis("link", [SingleSlotBuffer(), FifoQueue(size=2)]),
        SendPortAxis("link", [AsynBlockingSend(), SynBlockingSend()]),
    ])
    report = explore(space, invariants=[safe], jobs=4,
                     cache=open_cache(".repro-cache"))
    print(report.table())
"""

from .backend import BACKENDS, CacheBackend, detect_backend, open_cache
from .cache import CACHE_SCHEMA, CacheLockedError, ResultCache, classify_line
from .fingerprint import (
    FINGERPRINT_SCHEMA,
    fingerprint_job,
    fingerprint_prop,
    fingerprint_system,
)
from .journal import (
    JOURNAL_SCHEMA,
    FileLockedError,
    JournalState,
    RunJournal,
    list_runs,
)
from .rank import ExplorationReport, rank_records, resilience_rank, verdict_rank
from .scheduler import (
    EXHAUSTIVE,
    FAIL,
    FIRST_PASS,
    INCOMPLETE,
    PASS,
    SKIPPED,
    UNKNOWN,
    explore,
)
from .supervise import (
    CAUSE_EXCEPTION,
    CAUSE_TIMEOUT,
    CAUSE_UNPICKLABLE,
    CAUSE_WORKER_DIED,
    JobFailure,
    JobOutcome,
    RetryPolicy,
    SupervisedPool,
)
from .sqlcache import (
    CAUSE_DB_LOCKED,
    SQLITE_CONTAINER_SCHEMA,
    CacheCorruptionWarning,
    SqliteResultCache,
    migrate_jsonl_to_sqlite,
)
from .space import (
    COMPOSED,
    FUSED,
    Axis,
    ChannelAxis,
    DesignSpace,
    DesignSpaceError,
    EncodingAxis,
    FaultAxis,
    ReceivePortAxis,
    SendPortAxis,
    Variant,
)

__all__ = [
    "BACKENDS",
    "CACHE_SCHEMA",
    "FINGERPRINT_SCHEMA",
    "JOURNAL_SCHEMA",
    "SQLITE_CONTAINER_SCHEMA",
    "CAUSE_DB_LOCKED",
    "CAUSE_EXCEPTION",
    "CAUSE_TIMEOUT",
    "CAUSE_UNPICKLABLE",
    "CAUSE_WORKER_DIED",
    "CacheBackend",
    "CacheCorruptionWarning",
    "CacheLockedError",
    "FileLockedError",
    "JobFailure",
    "JobOutcome",
    "JournalState",
    "ResultCache",
    "RetryPolicy",
    "RunJournal",
    "SqliteResultCache",
    "SupervisedPool",
    "classify_line",
    "detect_backend",
    "list_runs",
    "migrate_jsonl_to_sqlite",
    "open_cache",
    "fingerprint_job",
    "fingerprint_prop",
    "fingerprint_system",
    "ExplorationReport",
    "rank_records",
    "resilience_rank",
    "verdict_rank",
    "EXHAUSTIVE",
    "FIRST_PASS",
    "PASS",
    "FAIL",
    "UNKNOWN",
    "INCOMPLETE",
    "SKIPPED",
    "explore",
    "COMPOSED",
    "FUSED",
    "Axis",
    "ChannelAxis",
    "DesignSpace",
    "DesignSpaceError",
    "EncodingAxis",
    "FaultAxis",
    "ReceivePortAxis",
    "SendPortAxis",
    "Variant",
]

"""repro.design — design-space exploration with a persistent result cache.

The paper makes "experimenting with alternative design choices of
interaction semantics" cheap by reusing block and component models
across design iterations.  This package makes the experiment itself a
first-class, resumable object:

* :mod:`~repro.design.space` — declare a :class:`DesignSpace`: base
  architecture(s) plus per-connector variation axes and constraints;
* :mod:`~repro.design.fingerprint` — content-hash each variant's
  verification job so identical jobs run once;
* :mod:`~repro.design.cache` — persist verdicts on disk, keyed by
  fingerprint, so re-runs only verify what changed;
* :mod:`~repro.design.scheduler` — :func:`explore`: parallel,
  cheapest-first, cache-aware execution with early-exit policies;
* :mod:`~repro.design.supervise` — the fault-tolerant worker pool:
  per-job timeouts, bounded retries, crash classification;
* :mod:`~repro.design.journal` — the checksummed per-run journal
  behind checkpoint/resume (``explore(resume=RUN_ID)``);
* :mod:`~repro.design.rank` — Pareto-rank the surviving variants by
  (verdict, states explored, resilience).

Typical use::

    from repro.design import (ChannelAxis, DesignSpace, ResultCache,
                              SendPortAxis, explore)

    space = DesignSpace("pc", simple_pair(...), axes=[
        ChannelAxis("link", [SingleSlotBuffer(), FifoQueue(size=2)]),
        SendPortAxis("link", [AsynBlockingSend(), SynBlockingSend()]),
    ])
    report = explore(space, invariants=[safe], jobs=4,
                     cache=ResultCache(".repro-cache"))
    print(report.table())
"""

from .cache import CACHE_SCHEMA, ResultCache
from .fingerprint import (
    FINGERPRINT_SCHEMA,
    fingerprint_job,
    fingerprint_prop,
    fingerprint_system,
)
from .journal import JOURNAL_SCHEMA, JournalState, RunJournal, list_runs
from .rank import ExplorationReport, rank_records, resilience_rank, verdict_rank
from .scheduler import (
    EXHAUSTIVE,
    FAIL,
    FIRST_PASS,
    INCOMPLETE,
    PASS,
    SKIPPED,
    UNKNOWN,
    explore,
)
from .supervise import (
    CAUSE_EXCEPTION,
    CAUSE_TIMEOUT,
    CAUSE_UNPICKLABLE,
    CAUSE_WORKER_DIED,
    JobFailure,
    JobOutcome,
    RetryPolicy,
    SupervisedPool,
)
from .space import (
    COMPOSED,
    FUSED,
    Axis,
    ChannelAxis,
    DesignSpace,
    DesignSpaceError,
    EncodingAxis,
    FaultAxis,
    ReceivePortAxis,
    SendPortAxis,
    Variant,
)

__all__ = [
    "CACHE_SCHEMA",
    "FINGERPRINT_SCHEMA",
    "JOURNAL_SCHEMA",
    "CAUSE_EXCEPTION",
    "CAUSE_TIMEOUT",
    "CAUSE_UNPICKLABLE",
    "CAUSE_WORKER_DIED",
    "JobFailure",
    "JobOutcome",
    "JournalState",
    "ResultCache",
    "RetryPolicy",
    "RunJournal",
    "SupervisedPool",
    "list_runs",
    "fingerprint_job",
    "fingerprint_prop",
    "fingerprint_system",
    "ExplorationReport",
    "rank_records",
    "resilience_rank",
    "verdict_rank",
    "EXHAUSTIVE",
    "FIRST_PASS",
    "PASS",
    "FAIL",
    "UNKNOWN",
    "INCOMPLETE",
    "SKIPPED",
    "explore",
    "COMPOSED",
    "FUSED",
    "Axis",
    "ChannelAxis",
    "DesignSpace",
    "DesignSpaceError",
    "EncodingAxis",
    "FaultAxis",
    "ReceivePortAxis",
    "SendPortAxis",
    "Variant",
]

"""The cache backend protocol and the ``open_cache`` factory.

Two interchangeable verdict stores implement :class:`CacheBackend`:

===========  ====================  ========================================
backend      module                concurrency contract
===========  ====================  ========================================
``jsonl``    :mod:`.cache`         single writer (advisory ``flock``;
                                   a second writer fails loudly), any
                                   number of read-only openers
``sqlite``   :mod:`.sqlcache`      many concurrent reader/writer
                                   processes (WAL mode, retried busy
                                   errors, LRU eviction, quarantine)
===========  ====================  ========================================

Both journal verdict records under the same record schema
(``repro.design-cache/1``) with the same per-record CRC-32, so
:func:`~repro.design.sqlcache.migrate_jsonl_to_sqlite` converts a
directory verdict-equivalently and checksum-identically.

:func:`open_cache` picks a backend by what is already on disk
(:func:`detect_backend`), so callers — ``explore()``, the CLI, tests —
never hard-code one: an existing corpus keeps its format, and a fresh
directory gets the concurrent-safe SQLite store.
"""

from __future__ import annotations

import os
from typing import (Any, Dict, Iterator, Optional, Protocol, Tuple,
                    runtime_checkable)

from .cache import ResultCache
from .sqlcache import SqliteResultCache

__all__ = [
    "BACKENDS",
    "CacheBackend",
    "detect_backend",
    "open_cache",
]

BACKENDS = ("jsonl", "sqlite")

_SQLITE_DB = "cache.sqlite"
_JSONL_RESULTS = "results.jsonl"


@runtime_checkable
class CacheBackend(Protocol):
    """What ``explore()`` and the CLI require of a verdict store.

    Structural, not nominal: :class:`~repro.design.cache.ResultCache`
    and :class:`~repro.design.sqlcache.SqliteResultCache` both satisfy
    it without inheriting anything.
    """

    directory: str
    hits: int
    misses: int

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]: ...

    def put(self, fingerprint: str,
            record: Dict[str, Any]) -> Dict[str, Any]: ...

    def items(self) -> Iterator[Tuple[str, Dict[str, Any]]]: ...

    def flush(self) -> None: ...

    def close(self) -> None: ...

    def verify(self) -> Dict[str, Any]: ...

    def compact(self) -> Dict[str, Any]: ...

    def fsck(self) -> Dict[str, Any]: ...

    def stats(self) -> Dict[str, Any]: ...

    def __len__(self) -> int: ...

    def __contains__(self, fingerprint: str) -> bool: ...

    def __enter__(self) -> "CacheBackend": ...

    def __exit__(self, *exc: Any) -> None: ...


def detect_backend(directory: str) -> str:
    """Which backend a cache directory holds (or should get).

    An existing ``cache.sqlite`` wins; otherwise an existing
    ``results.jsonl`` keeps the directory on JSONL; a fresh (or empty)
    directory defaults to SQLite — the backend that stays safe when a
    second process shows up.
    """
    directory = str(directory)
    if os.path.exists(os.path.join(directory, _SQLITE_DB)):
        return "sqlite"
    if os.path.exists(os.path.join(directory, _JSONL_RESULTS)):
        return "jsonl"
    return "sqlite"


def open_cache(directory: str, *, backend: str = "auto",
               durable: bool = True,
               max_bytes: Optional[int] = None) -> CacheBackend:
    """Open the verdict store in ``directory``.

    ``backend`` is ``"auto"`` (detect from disk), ``"jsonl"``, or
    ``"sqlite"``.  ``max_bytes`` caps the SQLite store (LRU eviction);
    the JSONL journal has no cap and rejects the option loudly rather
    than silently ignoring it.
    """
    if backend == "auto":
        backend = detect_backend(directory)
    if backend == "sqlite":
        return SqliteResultCache(directory, durable=durable,
                                 max_bytes=max_bytes)
    if backend == "jsonl":
        if max_bytes is not None:
            raise ValueError(
                "max_bytes (--cache-max-mb) requires the sqlite backend; "
                "the JSONL journal does not evict")
        return ResultCache(directory, durable=durable)
    raise ValueError(f"unknown cache backend {backend!r} "
                     f"(expected one of {('auto',) + BACKENDS})")

"""Checksummed append-only journals and the per-run exploration journal.

Two consumers share the line format defined here:

* :class:`~repro.design.cache.ResultCache` — the persistent verdict
  store journals every record it accepts;
* :class:`RunJournal` — ``explore()`` journals per-job lifecycle
  records so an interrupted exploration can be resumed.

**Line format.**  One JSON object per line, ``sort_keys`` canonical,
carrying a ``crc`` field: the CRC-32 of the canonical JSON encoding of
the object *without* that field.  A reader that replays a journal
verifies each line's checksum and skips lines that fail to parse or to
verify — so a crash mid-append (torn final line), a filesystem that
zero-fills a tail on power loss, or a stray editor save costs at most
the damaged records, never the journal.

**Durability.**  Writers append, flush, and (by default) ``fsync`` each
record, so a record returned to a caller is on disk.  Appends are the
*only* mutation; rewrites (cache compaction) go through a temp file and
an atomic ``os.replace``.

**The run journal** (schema ``repro.design-run/1``) lives under
``<journal dir>/<run id>/journal.jsonl`` and records one exploration's
job lifecycle, keyed by the job fingerprints of
:mod:`repro.design.fingerprint`:

``run_started``
    Space name, variant total, policy — appended once per attempt
    (a resumed run appends another).
``scheduled``
    One per job submitted for execution this attempt.
``done``
    The job's full verdict record; resume serves these without
    re-verifying (and without touching the result cache).
``failed``
    The job died (worker killed / timeout / checker exception) with a
    recorded cause; resume re-runs these.
``interrupted`` / ``run_finished``
    How the attempt ended.

:func:`RunJournal.load` folds a journal into a :class:`JournalState`:
``done`` beats ``failed`` for the same fingerprint (a later attempt
succeeded), and anything scheduled but neither done nor failed is
*pending* — exactly the set ``explore(resume=...)`` re-runs.
"""

from __future__ import annotations

import json
import os
import time
import uuid
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

try:  # POSIX advisory locks; degrade to no-op where absent
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - non-POSIX host
    _fcntl = None

__all__ = [
    "JOURNAL_SCHEMA",
    "FileLockedError",
    "JournalState",
    "RunJournal",
    "append_entry",
    "entry_crc",
    "list_runs",
    "read_entries",
    "try_lock",
    "unlock",
    "verify_entry",
]

JOURNAL_SCHEMA = "repro.design-run/1"

_JOURNAL_NAME = "journal.jsonl"


# -- advisory file locking -------------------------------------------------

class FileLockedError(RuntimeError):
    """Another process already holds an exclusive advisory lock.

    Raised *instead of* corrupting a single-writer file: the JSONL
    cache journal and the per-run journal both take an ``flock`` before
    their first append, so a second concurrent writer fails loudly and
    immediately rather than tearing records or losing acknowledged
    writes through a compaction window.
    """

    def __init__(self, path: str, what: str) -> None:
        super().__init__(
            f"{what} is locked by another writer: {path!r} (retry after "
            "the holder closes, or use the sqlite cache backend for "
            "concurrent multi-process access)")
        self.path = path


def try_lock(fd: int) -> bool:
    """Try the exclusive, non-blocking advisory lock on ``fd``.

    Returns True when the lock was taken (always, on platforms without
    :mod:`fcntl` — locking degrades to a no-op there).  The lock is
    released by :func:`unlock` or automatically when every descriptor
    of the open file description closes (including on process death,
    which is what makes a crashed writer's lock disappear).
    """
    if _fcntl is None:  # pragma: no cover - non-POSIX host
        return True
    try:
        _fcntl.flock(fd, _fcntl.LOCK_EX | _fcntl.LOCK_NB)
    except OSError:
        return False
    return True


def unlock(fd: int) -> None:
    """Release an advisory lock taken by :func:`try_lock`."""
    if _fcntl is None:  # pragma: no cover - non-POSIX host
        return
    try:
        _fcntl.flock(fd, _fcntl.LOCK_UN)
    except OSError:  # pragma: no cover - already closed
        pass


# -- checksummed line format ----------------------------------------------

def _canonical(entry: Dict[str, Any]) -> str:
    return json.dumps(entry, sort_keys=True, separators=(",", ":"))


def entry_crc(entry: Dict[str, Any]) -> int:
    """CRC-32 of the entry's canonical JSON, ``crc`` field excluded."""
    body = {k: v for k, v in entry.items() if k != "crc"}
    return zlib.crc32(_canonical(body).encode("utf-8"))


def verify_entry(entry: Any) -> bool:
    """True when ``entry`` is a dict whose ``crc`` matches its content."""
    if not isinstance(entry, dict) or not isinstance(entry.get("crc"), int):
        return False
    return entry["crc"] == entry_crc(entry)


def append_entry(fh, entry: Dict[str, Any], *, durable: bool = True) -> None:
    """Stamp ``crc``, append one line, flush, and optionally fsync."""
    entry["crc"] = entry_crc(entry)
    fh.write(_canonical(entry) + "\n")
    fh.flush()
    if durable:
        os.fsync(fh.fileno())


def read_entries(path: str) -> Iterator[Tuple[Optional[Dict[str, Any]], str]]:
    """Yield ``(entry, raw_line)`` per line; ``entry`` is None when the
    line fails to parse or its checksum does not verify."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            raw = line.strip()
            if not raw:
                continue
            try:
                entry = json.loads(raw)
            except ValueError:
                yield None, raw
                continue
            yield (entry if verify_entry(entry) else None), raw


# -- the per-run exploration journal --------------------------------------

def _new_run_id() -> str:
    return time.strftime("%Y%m%d-%H%M%S") + "-" + uuid.uuid4().hex[:6]


@dataclass
class JournalState:
    """A run journal folded into resumable state."""

    run_id: str
    meta: Dict[str, Any] = field(default_factory=dict)
    scheduled: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    completed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    failed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    attempts: int = 0
    interrupted: bool = False
    finished: bool = False
    corrupt_lines: int = 0

    @property
    def pending(self) -> List[str]:
        """Fingerprints scheduled but neither done nor failed."""
        return [fp for fp in self.scheduled
                if fp not in self.completed and fp not in self.failed]


class RunJournal:
    """Append-only lifecycle journal for one exploration run.

    Opening an existing run directory appends (that is how resume
    continues a journal); a fresh ``run_id`` is minted when none is
    given.  The journal file is advisory-locked for the writer's
    lifetime, so two explorations resuming the same run id concurrently
    fail loudly (:class:`FileLockedError`) instead of interleaving
    lifecycle records.
    """

    def __init__(self, directory: str, run_id: Optional[str] = None, *,
                 durable: bool = True) -> None:
        self.run_id = run_id or _new_run_id()
        self.directory = os.path.join(str(directory), self.run_id)
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, _JOURNAL_NAME)
        self.durable = durable
        self._fh = open(self.path, "a", encoding="utf-8")
        if not try_lock(self._fh.fileno()):
            self._fh.close()
            raise FileLockedError(self.path, f"run journal {self.run_id!r}")

    def record(self, event: str, **fields: Any) -> None:
        """Append one checksummed lifecycle record."""
        entry: Dict[str, Any] = {"schema": JOURNAL_SCHEMA, "event": event}
        entry.update(fields)
        append_entry(self._fh, entry, durable=self.durable)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()  # closing the fd releases the flock

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # backstop; close() is the contract
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    @classmethod
    def load(cls, directory: str, run_id: str) -> JournalState:
        """Fold the journal of ``run_id`` under ``directory``.

        Raises :class:`FileNotFoundError` (listing the runs that do
        exist) when the run has no journal.
        """
        path = os.path.join(str(directory), run_id, _JOURNAL_NAME)
        if not os.path.exists(path):
            known = ", ".join(list_runs(directory)) or "none"
            raise FileNotFoundError(
                f"no journal for run {run_id!r} under {directory!r} "
                f"(known runs: {known})")
        state = JournalState(run_id=run_id)
        for entry, _raw in read_entries(path):
            if entry is None:
                state.corrupt_lines += 1
                continue
            if entry.get("schema") != JOURNAL_SCHEMA:
                state.corrupt_lines += 1
                continue
            event = entry.get("event")
            if event == "run_started":
                state.attempts += 1
                state.meta = entry
                state.finished = False
                state.interrupted = False
            elif event == "scheduled":
                fp = entry.get("fingerprint")
                if isinstance(fp, str):
                    state.scheduled[fp] = entry
            elif event == "done":
                fp = entry.get("fingerprint")
                record = entry.get("record")
                if isinstance(fp, str) and isinstance(record, dict):
                    state.completed[fp] = record
                    state.failed.pop(fp, None)
            elif event == "failed":
                fp = entry.get("fingerprint")
                if isinstance(fp, str) and fp not in state.completed:
                    state.failed[fp] = entry
            elif event == "interrupted":
                state.interrupted = True
            elif event == "run_finished":
                state.finished = True
        return state


def list_runs(directory: str) -> List[str]:
    """Run ids with a journal under ``directory``, oldest first."""
    if not os.path.isdir(str(directory)):
        return []
    runs = [name for name in os.listdir(str(directory))
            if os.path.isfile(os.path.join(str(directory), name,
                                           _JOURNAL_NAME))]
    return sorted(runs)

"""Pareto ranking of explored design variants.

An exploration produces one record per variant; this module orders
them.  Three objectives, all minimized:

1. **verdict rank** — PASS < UNKNOWN < INCOMPLETE < FAIL < SKIPPED.
   A design that verifies beats one that might, which beats one whose
   job the platform lost (worker died / timed out), which beats one
   that doesn't verify.  INCOMPLETE sits between UNKNOWN and FAIL: the
   run learned nothing against the design, but unlike UNKNOWN it
   cannot even bound the explored state space.
2. **states explored** — the size of the variant's reachable state
   space, the paper's own cost proxy for a design's interaction
   complexity (and for how expensive it is to re-verify).
3. **resilience rank** — the worst fault-scenario verdict of a passing
   variant (robust < unknown < degraded < broken); variants that were
   never swept (no faults requested, or they failed outright) rank as
   robust so the objective never punishes a missing measurement.

Variants are grouped into Pareto *fronts*: front 1 is the set of
non-dominated records, front 2 is non-dominated once front 1 is
removed, and so on.  Within a front — where, by construction, no
variant is strictly better — the presentation order is lexicographic
(verdict, resilience, states, name), which is what puts a robust
design with a larger state space ahead of a fragile smaller one.
Ranking is a pure function of the records, so serial, parallel, and
cache-served explorations rank identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.report import RunReport

__all__ = ["ExplorationReport", "rank_records", "verdict_rank",
           "resilience_rank"]

_VERDICT_RANK = {"PASS": 0, "UNKNOWN": 1, "INCOMPLETE": 2, "FAIL": 3,
                 "SKIPPED": 4}
_RESILIENCE_RANK = {"robust": 0, "unknown": 1, "degraded": 2, "broken": 3}


def verdict_rank(record: Dict[str, Any]) -> int:
    """Position of the record's verdict on the PASS-first ladder."""
    return _VERDICT_RANK.get(record.get("verdict", "SKIPPED"), 4)


def resilience_rank(record: Dict[str, Any]) -> int:
    """Position of the record's worst fault verdict (0 when not swept)."""
    resilience = record.get("resilience")
    if not resilience:
        return 0
    return _RESILIENCE_RANK.get(resilience.get("worst", "robust"), 3)


def _objectives(record: Dict[str, Any]) -> Tuple[int, int, int]:
    return (verdict_rank(record), int(record.get("states") or 0),
            resilience_rank(record))


def _dominates(a: Tuple[int, int, int], b: Tuple[int, int, int]) -> bool:
    return all(x <= y for x, y in zip(a, b)) and a != b


def rank_records(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Records annotated with their Pareto ``front``, best first.

    Returns *copies* of the input records (the originals keep their
    enumeration order untouched), sorted by front and, within a front,
    by (verdict rank, resilience rank, states, name).
    """
    remaining = [(record, _objectives(record)) for record in records]
    ranked: List[Dict[str, Any]] = []
    front = 0
    while remaining:
        front += 1
        nondominated = [
            (record, obj) for record, obj in remaining
            if not any(_dominates(other, obj) for _, other in remaining
                       if other != obj)
        ]
        if not nondominated:  # pragma: no cover - defensive: ties only
            nondominated = remaining
        members = []
        for record, obj in nondominated:
            annotated = dict(record)
            annotated["front"] = front
            members.append((annotated, obj))
        members.sort(key=lambda pair: (
            pair[1][0], pair[1][2], pair[1][1],
            pair[0].get("variant", "")))
        ranked.extend(record for record, _ in members)
        dropped = {id(record) for record, _ in nondominated}
        remaining = [(r, o) for r, o in remaining if id(r) not in dropped]
    return ranked


@dataclass
class ExplorationReport:
    """Outcome of one design-space exploration.

    ``results`` holds every variant's record in enumeration order (the
    stable order tables are printed in); ``ranked`` holds the same
    records annotated with Pareto fronts, best first.
    """

    space: str
    results: List[Dict[str, Any]] = field(default_factory=list)
    ranked: List[Dict[str, Any]] = field(default_factory=list)
    policy: str = "exhaustive"
    jobs: int = 1
    stopped_early: bool = False
    cache_stats: Optional[Dict[str, int]] = None
    library_snapshot: Tuple[int, int, int] = (0, 0, 0)
    run_id: Optional[str] = None
    interrupted: bool = False
    warnings: List[str] = field(default_factory=list)

    @property
    def best(self) -> Optional[Dict[str, Any]]:
        """The top-ranked record, or None for an empty space."""
        return self.ranked[0] if self.ranked else None

    @property
    def passed(self) -> List[Dict[str, Any]]:
        return [r for r in self.results if r["verdict"] == "PASS"]

    @property
    def any_pass(self) -> bool:
        return bool(self.passed)

    @property
    def any_budget_hit(self) -> bool:
        """True when any variant's verdict was limited by a budget."""
        return any(r.get("budget_hit") or r["verdict"] == "UNKNOWN"
                   for r in self.results)

    @property
    def failures(self) -> List[Dict[str, Any]]:
        """Records whose job the platform lost (verdict INCOMPLETE)."""
        return [r for r in self.results if r["verdict"] == "INCOMPLETE"]

    @property
    def complete(self) -> bool:
        return (not self.any_budget_hit and not self.stopped_early
                and not self.interrupted and not self.failures)

    @property
    def cached_count(self) -> int:
        return sum(1 for r in self.results if r.get("cached"))

    def result_for(self, variant_name: str) -> Dict[str, Any]:
        for record in self.results:
            if record["variant"] == variant_name:
                return record
        raise KeyError(f"no variant named {variant_name!r}")

    def table(self) -> str:
        """The ranked variant matrix (deterministic: no wall-clock).

        Serial and parallel explorations of the same space print this
        byte-identically; times live in the records, not the table.
        """
        rows = [("#", "variant", "verdict", "states", "resilience", "cache")]
        for record in self.ranked:
            resilience = record.get("resilience")
            rows.append((
                str(record["front"]),
                record["variant"],
                record["verdict"],
                str(record.get("states") or 0),
                (resilience or {}).get("worst", "-") if resilience else "-",
                "hit" if record.get("cached") else
                ("dedup" if record.get("deduplicated") else "run"),
            ))
        widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
        lines = []
        for j, row in enumerate(rows):
            lines.append("  ".join(
                c.ljust(w) for c, w in zip(row, widths)).rstrip())
            if j == 0:
                lines.append("  ".join("-" * w for w in widths))
        lines.append("")
        best = self.best
        if best is not None:
            lines.append(f"best: {best['variant']} ({best['verdict']})")
        if self.stopped_early:
            lines.append("exploration stopped at the first PASS "
                         "(first_pass policy)")
        if self.interrupted:
            hint = (f" (resume with --resume {self.run_id})"
                    if self.run_id else "")
            lines.append(f"exploration interrupted; partial results{hint}")
        if self.failures:
            names = ", ".join(r["variant"] for r in self.failures)
            lines.append(f"incomplete (job failed after retries): {names}")
        for message in self.warnings:
            lines.append(f"warning: {message}")
        if self.cache_stats is not None:
            lines.append(
                f"cache: {self.cache_stats['hits']} hits, "
                f"{self.cache_stats['misses']} misses, "
                f"{self.cache_stats['stored']} stored")
        return "\n".join(lines)

    def to_run_report(self, *, title: Optional[str] = None,
                      command: Optional[str] = None,
                      events: Optional[List[Any]] = None) -> "RunReport":
        """This exploration as a renderable, saveable RunReport."""
        from ..obs.report import RunReport
        return RunReport.from_exploration(
            self, title=title, command=command, events=events)

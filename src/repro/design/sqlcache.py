"""SQLite/WAL backend for the verdict store: many processes, one corpus.

The JSONL journal (:mod:`repro.design.cache`) is strictly
single-writer; this backend is the multi-process counterpart the
verification-as-a-service roadmap needs — parametric system families
enumerate thousands of variants, and many workers and many runs must
share one verdict corpus safely.  One ``cache.sqlite`` file in the
cache directory, in **WAL mode**, holds one row per fingerprint:

* **Concurrency** — WAL gives single-writer/many-reader semantics with
  readers never blocked; writer contention surfaces as SQLite
  ``database is locked``/``busy`` errors, which are retried with the
  same bounded-exponential-backoff-plus-deterministic-jitter
  discipline as job supervision (a
  :class:`~repro.design.supervise.RetryPolicy` with
  ``retry_on={CAUSE_DB_LOCKED}``).
* **Durability** — ``durable=True`` runs ``PRAGMA synchronous=FULL``:
  a committed ``put`` survives process kills and power loss, matching
  the JSONL backend's per-append fsync.  A writer killed
  mid-transaction (the ``cache.put`` failpoint sits between the INSERT
  and the COMMIT) rolls back on the next open — an unacknowledged
  record simply never existed.
* **Integrity** — every row carries the CRC-32 of its record's
  canonical JSON (:func:`~repro.design.journal.entry_crc`, the same
  checksum the JSONL journal stamps, so migration preserves CRCs).  A
  row whose payload no longer matches its checksum is a miss, never a
  wrong verdict.
* **Corruption recovery** — a database that fails ``PRAGMA
  quick_check`` on open (or starts raising ``DatabaseError`` mid-read)
  is **quarantined**: renamed to ``cache.sqlite.quarantined-<ts>``
  (WAL/SHM sidecars alongside) and replaced with a fresh empty store,
  with a warning recorded — the cache degrades to misses.
* **Eviction** — ``max_bytes`` caps the store; after a put that grows
  past the cap, the coldest records (LRU by ``last_hit``) are deleted
  until the file is back under ~80% of the cap.  The CLI exposes this
  as ``--cache-max-mb``.

Maintenance: :meth:`SqliteResultCache.verify` (full
``integrity_check`` + per-row CRC audit), :meth:`~SqliteResultCache.fsck`
(delete CRC-mismatched rows, or quarantine an unreadable database),
:meth:`~SqliteResultCache.compact` (checkpoint + VACUUM), and
:func:`migrate_jsonl_to_sqlite` (convert a JSONL cache directory in
place, verdict-equivalently, retiring the old journal as
``*.migrated``).  All are exposed under ``repro cache``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import warnings as _warnings
from typing import Any, Dict, Iterator, Optional, Tuple

from . import failpoints
from .cache import CACHE_SCHEMA, ResultCache
from .journal import entry_crc
from .supervise import RetryPolicy

__all__ = [
    "CAUSE_DB_LOCKED",
    "SQLITE_CONTAINER_SCHEMA",
    "CacheCorruptionWarning",
    "SqliteResultCache",
    "migrate_jsonl_to_sqlite",
]

#: Container schema marker (the *records* keep ``CACHE_SCHEMA``, so the
#: two backends store verdict-identical payloads).
SQLITE_CONTAINER_SCHEMA = "repro.design-cache-sqlite/1"

_DB_NAME = "cache.sqlite"

#: Retry classification for SQLite writer contention, alongside the
#: worker-supervision causes in :mod:`repro.design.supervise`.
CAUSE_DB_LOCKED = "db-locked"

#: Busy/locked retries: bounded exponential backoff with deterministic
#: per-key jitter — the same discipline supervision applies to crashed
#: workers, tuned for lock-hold times measured in milliseconds.
DEFAULT_DB_RETRY = RetryPolicy(
    max_retries=10, backoff_base=0.005, backoff_max=0.25,
    retry_on=frozenset({CAUSE_DB_LOCKED}))


class CacheCorruptionWarning(UserWarning):
    """A damaged store was quarantined or a corrupt record dropped."""


def _is_locked_error(exc: BaseException) -> bool:
    message = str(exc).lower()
    return "locked" in message or "busy" in message


def _canonical(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class SqliteResultCache:
    """A concurrent-safe verdict store on one SQLite/WAL database.

    API-compatible with :class:`~repro.design.cache.ResultCache` (the
    :class:`~repro.design.backend.CacheBackend` protocol): ``get`` /
    ``put`` / ``stats`` / ``verify`` / ``compact`` / ``fsck`` /
    ``close``, context-manager support, and hit/miss/store counters.
    Safe to open from many processes at once.
    """

    def __init__(self, directory: str, *, durable: bool = True,
                 max_bytes: Optional[int] = None,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.directory = str(directory)
        self.durable = durable
        self.max_bytes = max_bytes
        self.retry = retry if retry is not None else DEFAULT_DB_RETRY
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.evicted = 0
        self.corrupt_records = 0
        self.quarantined: Optional[str] = None
        self.warnings: list = []
        self._conn: Optional[sqlite3.Connection] = None
        os.makedirs(self.directory, exist_ok=True)
        self._open()

    @property
    def db_path(self) -> str:
        return os.path.join(self.directory, _DB_NAME)

    # -- connection lifecycle ----------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        """Open, pragma, and sanity-check the database; may raise."""
        conn = sqlite3.connect(self.db_path)
        try:
            conn.isolation_level = None  # explicit BEGIN/COMMIT
            # Our own retry loop handles contention; keep SQLite's
            # internal wait short so backoff timing stays ours.
            conn.execute("PRAGMA busy_timeout = 100")
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = %s"
                         % ("FULL" if self.durable else "OFF"))
            check = conn.execute("PRAGMA quick_check").fetchone()
            if check is None or check[0] != "ok":
                raise sqlite3.DatabaseError(
                    f"quick_check failed: {check and check[0]!r}")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " key TEXT PRIMARY KEY, value TEXT NOT NULL)")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS records ("
                " fingerprint TEXT PRIMARY KEY,"
                " record TEXT NOT NULL,"
                " crc INTEGER NOT NULL,"
                " created_at REAL NOT NULL,"
                " last_hit REAL NOT NULL,"
                " hits INTEGER NOT NULL DEFAULT 0)")
            conn.execute("CREATE INDEX IF NOT EXISTS records_last_hit"
                         " ON records (last_hit)")
            conn.execute("INSERT OR IGNORE INTO meta VALUES ('schema', ?)",
                         (SQLITE_CONTAINER_SCHEMA,))
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema'").fetchone()
            if row is None or row[0] != SQLITE_CONTAINER_SCHEMA:
                raise sqlite3.DatabaseError(
                    f"foreign container schema {row and row[0]!r} "
                    f"(expected {SQLITE_CONTAINER_SCHEMA!r})")
        except BaseException:
            conn.close()
            raise
        return conn

    def _open(self) -> None:
        try:
            self._conn = self._retrying(self._connect, seed="open")
        except sqlite3.DatabaseError as exc:
            self._quarantine(f"unreadable on open: {exc}")
            self._conn = self._connect()  # a fresh file; must succeed

    def _ensure(self) -> sqlite3.Connection:
        """The live connection, transparently reopening after close().

        Mirrors the JSONL backend's contract: ``close()`` releases
        resources, and the next use re-establishes them — so callers
        (``explore()``, the CLI) can close eagerly without wondering
        whether the instance will be touched again.
        """
        if self._conn is None:
            self._open()
        return self._conn

    def _quarantine(self, reason: str) -> None:
        """Move the damaged database aside and record a loud warning.

        The quarantined files keep their bytes for post-mortems; the
        store continues on a fresh database — every prior verdict
        degrades to a miss, which is always safe to re-verify.
        """
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - already broken
                pass
            self._conn = None
        stamp = time.strftime("%Y%m%d-%H%M%S")
        target = f"{self.db_path}.quarantined-{stamp}"
        n = 0
        while os.path.exists(target):  # same-second re-quarantine
            n += 1
            target = f"{self.db_path}.quarantined-{stamp}.{n}"
        for suffix in ("", "-wal", "-shm"):
            source = self.db_path + suffix
            if os.path.exists(source):
                os.replace(source, target + suffix)
        self.quarantined = target
        message = (f"quarantined corrupt cache database to {target!r} "
                   f"({reason}); continuing with an empty store — "
                   "cached verdicts degrade to misses")
        self.warnings.append(message)
        _warnings.warn(message, CacheCorruptionWarning, stacklevel=3)

    def _retrying(self, fn, *, seed: str):
        """Run ``fn`` with bounded, jittered retries on locked/busy."""
        attempts = 0
        while True:
            attempts += 1
            try:
                return fn()
            except sqlite3.OperationalError as exc:
                if (not _is_locked_error(exc)
                        or not self.retry.should_retry(CAUSE_DB_LOCKED,
                                                       attempts)):
                    raise
                time.sleep(self.retry.backoff(attempts, seed=seed))

    # -- the store ----------------------------------------------------------

    def __len__(self) -> int:
        self._ensure()
        try:
            row = self._retrying(
                lambda: self._conn.execute(
                    "SELECT COUNT(*) FROM records").fetchone(),
                seed="len")
        except sqlite3.DatabaseError:
            return 0
        return int(row[0])

    def __contains__(self, fingerprint: str) -> bool:
        self._ensure()
        try:
            row = self._retrying(
                lambda: self._conn.execute(
                    "SELECT 1 FROM records WHERE fingerprint = ?",
                    (fingerprint,)).fetchone(),
                seed=fingerprint)
        except sqlite3.DatabaseError:
            return False
        return row is not None

    def items(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Live ``(fingerprint, record)`` pairs, sorted (uncounted).

        Rows that fail their CRC are silently omitted — same contract
        as ``get``: damage is a miss, never a wrong verdict.
        """
        self._ensure()
        rows = self._retrying(
            lambda: self._conn.execute(
                "SELECT fingerprint, record, crc FROM records"
                " ORDER BY fingerprint").fetchall(),
            seed="items")
        for fingerprint, payload, crc in rows:
            record = self._decode(fingerprint, payload, crc)
            if record is not None:
                yield fingerprint, record

    @staticmethod
    def _decode(fingerprint: str, payload: str,
                crc: int) -> Optional[Dict[str, Any]]:
        """Parse and checksum one row; None when it cannot be trusted."""
        try:
            record = json.loads(payload)
        except ValueError:
            return None
        if (not isinstance(record, dict)
                or record.get("fingerprint") != fingerprint
                or entry_crc(record) != crc):
            return None
        return record

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The cached record for ``fingerprint``, or None (counted)."""
        self._ensure()
        row = None
        try:
            row = self._retrying(
                lambda: self._conn.execute(
                    "SELECT record, crc FROM records"
                    " WHERE fingerprint = ?",
                    (fingerprint,)).fetchone(),
                seed=fingerprint)
        except sqlite3.DatabaseError as exc:
            # Latent corruption surfaced mid-read: quarantine and
            # degrade every lookup to a miss.
            self._quarantine(f"read failed: {exc}")
            self._conn = self._connect()
        if row is None:
            self.misses += 1
            return None
        record = self._decode(fingerprint, row[0], row[1])
        if record is None:
            self.corrupt_records += 1
            self.misses += 1
            message = (f"cache record {fingerprint[:12]}… failed its "
                       "checksum; dropped (served as a miss)")
            self.warnings.append(message)
            _warnings.warn(message, CacheCorruptionWarning, stacklevel=2)
            self._execute_quietly(
                "DELETE FROM records WHERE fingerprint = ?", (fingerprint,))
            return None
        self.hits += 1
        # LRU bookkeeping is best-effort: a reader racing a writer may
        # skip the touch rather than stall the lookup.
        self._execute_quietly(
            "UPDATE records SET last_hit = ?, hits = hits + 1"
            " WHERE fingerprint = ?", (time.time(), fingerprint))
        return record

    def _execute_quietly(self, sql: str, params: Tuple = ()) -> None:
        try:
            self._conn.execute(sql, params)
        except sqlite3.Error:
            pass

    def put(self, fingerprint: str, record: Dict[str, Any]) -> Dict[str, Any]:
        """Store ``record`` under ``fingerprint``, durably.

        The schema and fingerprint are stamped on and the row carries
        the CRC-32 of the stamped record's canonical JSON.  The write
        is one ``BEGIN IMMEDIATE`` transaction, retried with jittered
        backoff while another process holds the write lock; when this
        returns, the record is committed (and, with ``durable=True``,
        synced).  A crash mid-transaction (the ``cache.put`` failpoint)
        rolls back — never a torn row.
        """
        stamped = dict(record)
        stamped.pop("crc", None)  # the checksum lives in its own column
        stamped["schema"] = CACHE_SCHEMA
        stamped["fingerprint"] = fingerprint
        payload = _canonical(stamped)
        crc = entry_crc(stamped)
        now = time.time()
        self._ensure()

        def _txn() -> None:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT INTO records"
                    " (fingerprint, record, crc, created_at, last_hit, hits)"
                    " VALUES (?, ?, ?, ?, ?, 0)"
                    " ON CONFLICT(fingerprint) DO UPDATE SET"
                    " record = excluded.record, crc = excluded.crc,"
                    " created_at = excluded.created_at",
                    (fingerprint, payload, crc, now, now))
                failpoints.hit("cache.put", token=fingerprint)
                self._conn.execute("COMMIT")
            except BaseException:
                self._execute_quietly("ROLLBACK")
                raise

        self._retrying(_txn, seed=fingerprint)
        self.stored += 1
        if self.max_bytes is not None:
            self._evict()
        return stamped

    # -- eviction ------------------------------------------------------------

    def _size_bytes(self) -> int:
        total = 0
        for suffix in ("", "-wal"):
            try:
                total += os.path.getsize(self.db_path + suffix)
            except OSError:
                pass
        return total

    def _evict(self) -> None:
        """Drop cold records until the store is back under its cap.

        LRU by ``last_hit`` (a served verdict is hot; one nobody asked
        for since it was stored goes first).  Deletes in small batches,
        then checkpoints and VACUUMs so the bytes actually return to
        the filesystem.
        """
        if self._size_bytes() <= self.max_bytes:
            return
        target = int(self.max_bytes * 0.8)

        def _drop_batch() -> int:
            rows = self._conn.execute(
                "SELECT fingerprint FROM records"
                " ORDER BY last_hit ASC, fingerprint LIMIT 32").fetchall()
            if not rows:
                return 0
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.executemany(
                    "DELETE FROM records WHERE fingerprint = ?", rows)
                self._conn.execute("COMMIT")
            except BaseException:
                self._execute_quietly("ROLLBACK")
                raise
            return len(rows)

        while self._size_bytes() > target:
            dropped = self._retrying(_drop_batch, seed="evict")
            if not dropped:
                break
            self.evicted += dropped
            # VACUUM first, then checkpoint: in WAL mode the vacuum
            # itself writes through the WAL, so the truncate must come
            # after it for the bytes to actually leave the filesystem.
            self._retrying(lambda: self._conn.execute("VACUUM"),
                           seed="evict")
            self._retrying(
                lambda: self._conn.execute(
                    "PRAGMA wal_checkpoint(TRUNCATE)").fetchone(),
                seed="evict")

    # -- maintenance ----------------------------------------------------------

    def flush(self) -> None:
        """Checkpoint the WAL (best-effort; commits are already durable)."""
        if self._conn is None:
            return
        self._execute_quietly("PRAGMA wal_checkpoint(PASSIVE)")

    def close(self) -> None:
        if self._conn is not None:
            self._execute_quietly("PRAGMA wal_checkpoint(TRUNCATE)")
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - already broken
                pass
            self._conn = None

    def __enter__(self) -> "SqliteResultCache":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # backstop; close() is the contract
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    def verify(self) -> Dict[str, Any]:
        """Audit the database; never raises on damage.

        Runs the full ``PRAGMA integrity_check`` plus a per-row CRC
        scan.  ``ok`` means the database is structurally sound and
        every record matches its checksum; a quarantine performed at
        open (or since) is surfaced explicitly in ``quarantined``.
        """
        report: Dict[str, Any] = {
            "backend": "sqlite",
            "records": 0,
            "corrupt_records": 0,
            "integrity": "ok",
            "quarantined": self.quarantined,
            "ok": True,
        }
        self._ensure()
        try:
            rows = self._retrying(
                lambda: self._conn.execute(
                    "PRAGMA integrity_check").fetchall(),
                seed="verify")
            if not (len(rows) == 1 and rows[0][0] == "ok"):
                report["integrity"] = "; ".join(str(r[0]) for r in rows)[:500]
                report["ok"] = False
            for fingerprint, payload, crc in self._retrying(
                    lambda: self._conn.execute(
                        "SELECT fingerprint, record, crc"
                        " FROM records").fetchall(),
                    seed="verify"):
                report["records"] += 1
                if self._decode(fingerprint, payload, crc) is None:
                    report["corrupt_records"] += 1
        except sqlite3.DatabaseError as exc:
            report["integrity"] = f"unreadable: {exc}"
            report["ok"] = False
            return report
        if report["corrupt_records"]:
            report["ok"] = False
        return report

    def compact(self) -> Dict[str, int]:
        """Checkpoint the WAL and VACUUM; returns row/byte counts.

        Rows are already one-per-fingerprint (the primary key), so
        unlike the JSONL journal there are no superseded lines to drop
        — compaction reclaims WAL and free-page space.
        """
        self._ensure()
        before_rows = len(self)
        before_bytes = self._size_bytes()
        # VACUUM writes through the WAL; checkpoint after it so the
        # reclaimed space actually leaves the filesystem.
        self._retrying(lambda: self._conn.execute("VACUUM"),
                       seed="compact")
        self._retrying(
            lambda: self._conn.execute(
                "PRAGMA wal_checkpoint(TRUNCATE)").fetchone(),
            seed="compact")
        return {
            "before_lines": before_rows,
            "after_lines": len(self),
            "before_bytes": before_bytes,
            "after_bytes": self._size_bytes(),
        }

    def fsck(self) -> Dict[str, Any]:
        """Repair the store: drop bad rows, or quarantine wholesale.

        A database that fails ``integrity_check`` (or cannot be read at
        all) is quarantined and replaced with a fresh empty store;
        otherwise rows failing their CRC are deleted and the file
        VACUUMed.  Either way the store ends consistent, and no damaged
        record can ever be served.
        """
        audit = self.verify()
        repaired = 0
        if audit["integrity"] != "ok":
            self._quarantine(f"fsck: integrity check failed "
                             f"({audit['integrity']})")
            self._conn = self._connect()
        elif audit["corrupt_records"]:
            bad = []
            for fingerprint, payload, crc in self._retrying(
                    lambda: self._conn.execute(
                        "SELECT fingerprint, record, crc"
                        " FROM records").fetchall(),
                    seed="fsck"):
                if self._decode(fingerprint, payload, crc) is None:
                    bad.append((fingerprint,))
            if bad:
                def _drop() -> None:
                    self._conn.execute("BEGIN IMMEDIATE")
                    try:
                        self._conn.executemany(
                            "DELETE FROM records WHERE fingerprint = ?", bad)
                        self._conn.execute("COMMIT")
                    except BaseException:
                        self._execute_quietly("ROLLBACK")
                        raise
                self._retrying(_drop, seed="fsck")
                repaired = len(bad)
                self._retrying(lambda: self._conn.execute("VACUUM"),
                               seed="fsck")
        return {
            "backend": "sqlite",
            "before_records": audit["records"],
            "after_records": len(self),
            "dropped_corrupt": audit["corrupt_records"],
            "repaired": repaired,
            "quarantined": self.quarantined,
            "ok": True,
        }

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/store accounting since this store was opened."""
        return {
            "backend": "sqlite",
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
            "records": len(self),
            "results_bytes": self._size_bytes(),
            "evicted": self.evicted,
            "corrupt_records": self.corrupt_records,
            "skipped_lines": 0,
            "legacy_lines": 0,
        }

    def __repr__(self) -> str:
        return (f"SqliteResultCache({self.directory!r}, {len(self)} "
                f"records, {self.hits} hits / {self.misses} misses)")


def migrate_jsonl_to_sqlite(directory: str, *,
                            durable: bool = True) -> Dict[str, Any]:
    """Convert a JSONL cache directory to the SQLite backend, in place.

    Loads every live record from ``results.jsonl`` (corrupt and foreign
    lines are skipped, exactly as a lookup would skip them), writes
    each into a new ``cache.sqlite`` in the same directory, then
    **verifies** the conversion record-by-record before retiring the
    old journal and index as ``*.migrated`` (kept as a backup, and so
    backend auto-detection picks SQLite from now on).  Records are
    byte-identical minus the JSONL ``crc`` field, which moves to the
    row's checksum column with the same CRC-32 value — verdicts,
    fingerprints, and evidence all carry over unchanged.

    Returns a summary dict; raises ``RuntimeError`` (leaving the JSONL
    journal untouched) if any migrated record reads back differently.
    """
    source = ResultCache(directory, durable=False)
    try:
        records = {fp: dict(record) for fp, record in source.items()}
        skipped = source.stats()["skipped_lines"]
        corrupt = source.stats()["corrupt_lines"]
    finally:
        source.close()

    with SqliteResultCache(directory, durable=durable) as target:
        for fingerprint, record in sorted(records.items()):
            body = {k: v for k, v in record.items() if k != "crc"}
            target.put(fingerprint, body)
        mismatches = []
        for fingerprint, record in records.items():
            want = {k: v for k, v in record.items() if k != "crc"}
            if target.get(fingerprint) != want:
                mismatches.append(fingerprint)
        if mismatches:
            raise RuntimeError(
                f"migration verification failed for {len(mismatches)} of "
                f"{len(records)} records (JSONL journal left in place): "
                + ", ".join(fp[:12] for fp in mismatches[:5]))

    retired = []
    for name in (_JSONL_RESULTS, _JSONL_INDEX):
        path = os.path.join(str(directory), name)
        if os.path.exists(path):
            os.replace(path, path + ".migrated")
            retired.append(name + ".migrated")
    return {
        "backend": "sqlite",
        "migrated": len(records),
        "verified": len(records),
        "skipped_lines": skipped,
        "corrupt_lines": corrupt,
        "retired": retired,
    }


_JSONL_RESULTS = "results.jsonl"
_JSONL_INDEX = "index.json"

"""Parallel, cached execution of design-space explorations.

``explore`` drives a :class:`~repro.design.space.DesignSpace` end to
end: enumerate variants, fingerprint each one's verification job
(:mod:`repro.design.fingerprint`), serve what it can from the
content-addressed cache (:mod:`repro.design.cache`), and fan the
remaining jobs out over the same process-pool/pickle-probe machinery
the resilience sweeps use — with cheapest-first submission ordering and
an optional stop-on-first-pass policy.

Determinism contract (pinned by the design tests):

* results are reported in **enumeration order** regardless of
  ``jobs``, caching, or submission order, so serial and parallel
  explorations produce identical ranked output;
* engine events are streamed per variant in a fixed order — cache hits
  first (enumeration order, bracketed with ``cached=True``), then each
  executed variant's buffered stream in submission order between its
  ``variant_started`` / ``variant_finished`` brackets;
* two variants whose jobs share a fingerprint are verified once; the
  duplicate is served the same record, marked as deduplicated.

Each variant's verdict is one of ``PASS`` (safety, optional LTL, and
optional goal reachability all hold; fault scenarios are then swept and
their worst resilience verdict recorded), ``FAIL`` (a property is
violated or the goal is unreachable), ``UNKNOWN`` (a budget ran out
first), or ``SKIPPED`` (the first-pass policy stopped the exploration
before this variant ran).
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.resilience import (
    Fault,
    FaultScenario,
    _as_scenario,
    verify_resilience,
)
from ..core.spec import ModelLibrary
from ..mc.budget import BudgetExceeded
from ..mc.engine import StateGraph
from ..mc.explore import check_safety, find_state
from ..mc.ndfs import check_ltl
from ..mc.props import Prop
from ..obs.events import EngineEvent, variant_finished, variant_started
from ..obs.events import exploration_finished, exploration_started
from ..obs.report import _stats_payload
from ..obs.reporters import CollectingReporter, Reporter, ScenarioScope
from .cache import ResultCache
from .fingerprint import fingerprint_job
from .rank import ExplorationReport, rank_records
from .space import DesignSpace, Variant

__all__ = [
    "EXHAUSTIVE",
    "FIRST_PASS",
    "PASS",
    "FAIL",
    "UNKNOWN",
    "SKIPPED",
    "explore",
]

#: Early-exit policies.
EXHAUSTIVE = "exhaustive"
FIRST_PASS = "first_pass"

#: Variant verdicts.
PASS = "PASS"
FAIL = "FAIL"
UNKNOWN = "UNKNOWN"
SKIPPED = "SKIPPED"


def _result_payload(result) -> Dict[str, Any]:
    """The JSON-able slice of a VerificationResult a record keeps."""
    return {
        "ok": result.ok,
        "kind": result.kind,
        "message": result.message,
        "incomplete": result.incomplete,
        "budget_exhausted": result.budget_exhausted,
        "statistics": _stats_payload(result.stats),
    }


def _verify_variant(
    variant: Variant,
    invariants: Sequence[Prop],
    check_deadlock: bool,
    goal: Optional[Prop],
    ltl: Optional[str],
    ltl_props: Optional[Mapping[str, Prop]],
    scenarios: Sequence[FaultScenario],
    library: ModelLibrary,
    max_states: Optional[int],
    max_seconds: Optional[float],
    reporter: Optional[Reporter] = None,
) -> Dict[str, Any]:
    """Verify one variant; the unit of work for serial and pooled runs.

    Safety, the optional LTL check, and the optional goal search all
    run on one shared :class:`~repro.mc.engine.StateGraph`, so they pay
    successor generation once between them.  Fault scenarios are swept
    (serially, with the same library) only for variants that PASS —
    resilience is a tie-breaker between survivors, not a verdict input.
    Returns a plain JSON-able record, ready for the result cache.
    """
    scoped: Optional[Reporter] = None
    if reporter is not None:
        scoped = ScenarioScope(reporter, variant.name)
    hits0, misses0 = library.stats.hits, library.stats.misses
    t0 = time.perf_counter()
    arch = variant.build()
    system = arch.to_system(library, fused=variant.fused)
    graph = StateGraph(system)
    safety = check_safety(
        graph, invariants=invariants, check_deadlock=check_deadlock,
        max_states=max_states, max_seconds=max_seconds, reporter=scoped,
    )

    verdict = PASS
    detail = "all properties hold"
    budget_hit = bool(safety.incomplete)
    if not safety.ok:
        verdict, detail = FAIL, f"safety violated: {safety.message}"
    elif safety.incomplete:
        verdict = UNKNOWN
        detail = (f"{safety.budget_exhausted or 'budget'} exhausted "
                  "before a safety verdict")

    ltl_payload: Optional[Dict[str, Any]] = None
    if ltl is not None:
        # Always checked (on the same shared graph): a variant's record
        # carries both verdicts even when safety already failed, so
        # tables can show the two columns independently.
        ltl_result = check_ltl(
            graph, ltl, ltl_props or {}, max_states=max_states,
            max_seconds=max_seconds, reporter=scoped,
        )
        ltl_payload = _result_payload(ltl_result)
        ltl_payload["formula"] = ltl
        budget_hit = budget_hit or ltl_result.incomplete
        if verdict is PASS:
            if not ltl_result.ok:
                verdict, detail = FAIL, f"LTL violated: {ltl_result.message}"
            elif ltl_result.incomplete:
                verdict = UNKNOWN
                detail = (f"{ltl_result.budget_exhausted or 'budget'} "
                          "exhausted before an LTL verdict")

    goal_payload: Optional[Dict[str, Any]] = None
    if goal is not None and verdict is PASS:
        try:
            witness = find_state(graph, goal, max_states=max_states,
                                 max_seconds=max_seconds, reporter=scoped)
        except BudgetExceeded as exc:
            budget_hit = True
            verdict = UNKNOWN
            detail = f"goal search stopped early: {exc}"
            goal_payload = {"name": goal.name, "reachable": None}
        else:
            reachable = witness is not None
            goal_payload = {"name": goal.name, "reachable": reachable}
            if not reachable:
                verdict = FAIL
                detail = f"goal {goal.name!r} is unreachable"

    resilience_payload: Optional[Dict[str, Any]] = None
    if scenarios and verdict is PASS:
        sweep = verify_resilience(
            arch, list(scenarios), invariants=invariants, goal=goal,
            check_deadlock=check_deadlock, library=library,
            max_states=max_states, max_seconds=max_seconds,
            fused=variant.fused, include_baseline=False, jobs=1,
        )
        budget_hit = budget_hit or not sweep.complete
        resilience_payload = {
            "worst": sweep.worst,
            "complete": sweep.complete,
            "scenarios": [
                {"name": s.name, "verdict": s.verdict, "detail": s.detail}
                for s in sweep.scenarios
            ],
        }
        detail = f"{detail}; worst fault verdict {sweep.worst}"

    return {
        "space": variant.space,
        "variant": variant.name,
        "index": variant.index,
        "base": variant.base_label,
        "labels": variant.labels,
        "fused": variant.fused,
        "verdict": verdict,
        "detail": detail,
        "states": safety.stats.states_stored,
        "seconds": round(time.perf_counter() - t0, 6),
        "budget_hit": budget_hit,
        "safety": _result_payload(safety),
        "ltl": ltl_payload,
        "goal": goal_payload,
        "resilience": resilience_payload,
        "models_reused": library.stats.hits - hits0,
        "models_built": library.stats.misses - misses0,
    }


def _run_variant_task(payload: bytes) -> Tuple[Dict[str, Any],
                                               List[EngineEvent]]:
    """Process-pool entry point: unpickle one variant's job and run it.

    Mirrors the resilience pool protocol: each worker holds a private
    :class:`ModelLibrary` (reuse accounting becomes per-variant), and
    when the parent has a reporter its progress interval travels in the
    payload so the worker buffers events in a
    :class:`~repro.obs.reporters.CollectingReporter` for deterministic
    replay after the join.
    """
    (variant, invariants, check_deadlock, goal, ltl, ltl_props, scenarios,
     max_states, max_seconds, interval) = pickle.loads(payload)
    collector = None if interval is None else CollectingReporter(interval)
    record = _verify_variant(
        variant, invariants, check_deadlock, goal, ltl, ltl_props,
        scenarios, ModelLibrary(), max_states, max_seconds,
        reporter=collector,
    )
    return record, ([] if collector is None else collector.events)


def _skipped_record(variant: Variant, reason: str) -> Dict[str, Any]:
    return {
        "space": variant.space,
        "variant": variant.name,
        "index": variant.index,
        "base": variant.base_label,
        "labels": variant.labels,
        "fused": variant.fused,
        "verdict": SKIPPED,
        "detail": reason,
        "states": 0,
        "seconds": 0.0,
        "budget_hit": False,
        "safety": None,
        "ltl": None,
        "goal": None,
        "resilience": None,
        "models_reused": 0,
        "models_built": 0,
    }


def explore(
    space: DesignSpace,
    *,
    invariants: Sequence[Prop] = (),
    check_deadlock: bool = True,
    goal: Optional[Prop] = None,
    ltl: Optional[str] = None,
    ltl_props: Optional[Mapping[str, Prop]] = None,
    faults: Sequence[Union[Fault, FaultScenario]] = (),
    library: Optional[ModelLibrary] = None,
    cache: Optional[ResultCache] = None,
    jobs: int = 1,
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
    policy: str = EXHAUSTIVE,
    reporter: Optional[Reporter] = None,
) -> ExplorationReport:
    """Explore a design space and rank the surviving variants.

    Every variant is elaborated once in the parent (through the shared
    ``library``, so block/component models are reused across the whole
    space) to compute its job fingerprint.  Fingerprints then decide the
    work: cached jobs are served from ``cache``, duplicated jobs are
    verified once, and the rest are submitted cheapest-first — serially,
    or over a process pool when ``jobs > 1`` (falling back to serial
    when the work does not pickle, exactly like the resilience sweeps).

    ``policy=FIRST_PASS`` stops after the first PASS in submission
    order; variants that never ran are reported as ``SKIPPED``.  Fresh
    verdicts are written back to ``cache``, and the cache index is
    flushed before returning.
    """
    if policy not in (EXHAUSTIVE, FIRST_PASS):
        raise ValueError(f"unknown exploration policy {policy!r}")
    library = library if library is not None else ModelLibrary()
    scenarios = tuple(_as_scenario(f) for f in faults)
    fault_names = [f"{s.name}={s.describe()}" for s in scenarios]
    variants = space.variants()
    total = len(variants)

    # Fingerprint every variant's job up front (cheap: elaboration reuses
    # the shared library; verification is where the time goes).
    fingerprints: List[str] = []
    for variant in variants:
        system = variant.build().to_system(library, fused=variant.fused)
        fingerprints.append(fingerprint_job(
            system, invariants=invariants, check_deadlock=check_deadlock,
            goal=goal, ltl=ltl, ltl_props=ltl_props, faults=fault_names,
            max_states=max_states, max_seconds=max_seconds,
        ))

    records: List[Optional[Dict[str, Any]]] = [None] * total
    served_from_cache = [False] * total

    # Cache hits resolve in the parent; the rest dedupe by fingerprint.
    first_for: Dict[str, int] = {}
    to_run: List[int] = []
    for i, fp in enumerate(fingerprints):
        cached = cache.get(fp) if cache is not None else None
        if cached is not None:
            records[i] = _rebind(cached, variants[i])
            served_from_cache[i] = True
            continue
        if fp in first_for:
            continue  # verified once; filled in from the twin's record
        first_for[fp] = i
        to_run.append(i)

    # Cheapest-first submission order (stable on enumeration index).
    to_run.sort(key=lambda i: (variants[i].cost_hint(), i))

    if reporter is not None:
        reporter.emit(exploration_started(
            space.name, variants=total, jobs=jobs,
            cached=sum(served_from_cache), to_run=len(to_run)))
        for i in range(total):
            if served_from_cache[i]:
                _emit_brackets(reporter, variants[i], records[i], i, total,
                               cached=True)

    stopped_early = False
    if to_run:
        ran: Optional[List[Tuple[int, Dict[str, Any],
                                 List[EngineEvent]]]] = None
        if jobs > 1 and len(to_run) > 1:
            ran = _explore_parallel(
                variants, to_run, invariants, check_deadlock, goal, ltl,
                ltl_props, scenarios, max_states, max_seconds, jobs, policy,
                reporter,
            )
        if ran is None:
            ran = _explore_serial(
                variants, to_run, invariants, check_deadlock, goal, ltl,
                ltl_props, scenarios, library, max_states, max_seconds,
                policy, reporter, total,
            )
        completed = {i for i, _, _ in ran}
        stopped_early = len(completed) < len(to_run)
        for i, record, _events in ran:
            records[i] = record
            if cache is not None:
                cache.put(fingerprints[i], record)

    # Twin variants (same fingerprint) share the executed record.
    for i, fp in enumerate(fingerprints):
        if records[i] is not None:
            continue
        twin = first_for.get(fp)
        if twin is not None and records[twin] is not None:
            records[i] = _rebind(records[twin], variants[i],
                                 deduplicated=True)
        else:
            records[i] = _skipped_record(
                variants[i], "skipped: first-pass policy stopped the "
                "exploration before this variant ran")

    final: List[Dict[str, Any]] = []
    for i, record in enumerate(records):
        assert record is not None
        record = dict(record)
        record["cached"] = served_from_cache[i]
        final.append(record)

    ranked = rank_records(final)
    report = ExplorationReport(
        space=space.name,
        results=final,
        ranked=ranked,
        policy=policy,
        jobs=jobs,
        stopped_early=stopped_early,
        cache_stats=(cache.stats() if cache is not None else None),
        library_snapshot=library.snapshot(),
    )
    if cache is not None:
        cache.flush()
    if reporter is not None:
        reporter.emit(exploration_finished(
            space.name, best=(report.best["variant"] if report.best else None),
            complete=report.complete,
            cache_hits=(cache.hits if cache is not None else 0),
            cache_misses=(cache.misses if cache is not None else 0)))
    return report


def _rebind(record: Mapping[str, Any], variant: Variant,
            deduplicated: bool = False) -> Dict[str, Any]:
    """A cached/twin record re-labelled with *this* variant's identity.

    The verdict and evidence are content-addressed (same fingerprint =
    same job), but the variant name/index/labels belong to the current
    enumeration, not to whoever first produced the record.
    """
    out = dict(record)
    out.pop("schema", None)
    out.pop("fingerprint", None)
    out["space"] = variant.space
    out["variant"] = variant.name
    out["index"] = variant.index
    out["base"] = variant.base_label
    out["labels"] = variant.labels
    out["fused"] = variant.fused
    if deduplicated:
        out["deduplicated"] = True
    return out


def _emit_brackets(reporter: Reporter, variant: Variant,
                   record: Mapping[str, Any], index: int, total: int, *,
                   cached: bool,
                   events: Sequence[EngineEvent] = ()) -> None:
    reporter.emit(variant_started(
        variant.name, index=index, total=total, cached=cached))
    for event in events:
        reporter.emit(event)
    reporter.emit(variant_finished(
        variant.name, verdict=record["verdict"],
        states_stored=record["states"], seconds=record["seconds"],
        cached=cached))


def _explore_serial(
    variants: Sequence[Variant],
    to_run: Sequence[int],
    invariants: Sequence[Prop],
    check_deadlock: bool,
    goal: Optional[Prop],
    ltl: Optional[str],
    ltl_props: Optional[Mapping[str, Prop]],
    scenarios: Sequence[FaultScenario],
    library: ModelLibrary,
    max_states: Optional[int],
    max_seconds: Optional[float],
    policy: str,
    reporter: Optional[Reporter],
    total: int,
) -> List[Tuple[int, Dict[str, Any], List[EngineEvent]]]:
    out: List[Tuple[int, Dict[str, Any], List[EngineEvent]]] = []
    for i in to_run:
        variant = variants[i]
        if reporter is not None:
            reporter.emit(variant_started(
                variant.name, index=i, total=total, cached=False))
        record = _verify_variant(
            variant, invariants, check_deadlock, goal, ltl, ltl_props,
            scenarios, library, max_states, max_seconds, reporter=reporter,
        )
        out.append((i, record, []))
        if reporter is not None:
            reporter.emit(variant_finished(
                variant.name, verdict=record["verdict"],
                states_stored=record["states"], seconds=record["seconds"],
                cached=False))
        if policy == FIRST_PASS and record["verdict"] == PASS:
            break
    return out


def _explore_parallel(
    variants: Sequence[Variant],
    to_run: Sequence[int],
    invariants: Sequence[Prop],
    check_deadlock: bool,
    goal: Optional[Prop],
    ltl: Optional[str],
    ltl_props: Optional[Mapping[str, Prop]],
    scenarios: Sequence[FaultScenario],
    max_states: Optional[int],
    max_seconds: Optional[float],
    jobs: int,
    policy: str,
    reporter: Optional[Reporter],
) -> Optional[List[Tuple[int, Dict[str, Any], List[EngineEvent]]]]:
    """Fan variant jobs over a process pool; None = fall back serial.

    ``pool.map`` preserves submission order, so the lazily consumed
    result stream lets the first-pass policy stop without waiting for
    (or starting) the jobs queued behind the first PASS.  Workers buffer
    their event streams; the parent replays each between its variant
    brackets, in submission order, matching the serial sweep's sequence.
    """
    interval = None
    if reporter is not None:
        interval = int(getattr(reporter, "interval", 1000))
    try:
        payloads = [
            pickle.dumps((
                variants[i], tuple(invariants), check_deadlock, goal, ltl,
                dict(ltl_props) if ltl_props else None, tuple(scenarios),
                max_states, max_seconds, interval,
            ))
            for i in to_run
        ]
    except Exception:
        return None
    workers = min(jobs, len(to_run))
    out: List[Tuple[int, Dict[str, Any], List[EngineEvent]]] = []
    total = len(variants)
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            stream = pool.map(_run_variant_task, payloads)
            for i, (record, events) in zip(to_run, stream):
                out.append((i, record, events))
                if reporter is not None:
                    _emit_brackets(reporter, variants[i], record, i, total,
                                   cached=False, events=events)
                if policy == FIRST_PASS and record["verdict"] == PASS:
                    pool.shutdown(wait=False, cancel_futures=True)
                    break
    except Exception:
        return None
    return out

"""Parallel, cached, fault-tolerant execution of design-space explorations.

``explore`` drives a :class:`~repro.design.space.DesignSpace` end to
end: enumerate variants, fingerprint each one's verification job
(:mod:`repro.design.fingerprint`), serve what it can from the
content-addressed cache (:mod:`repro.design.cache`), and fan the
remaining jobs out — cheapest-first — over supervised worker processes
(:mod:`repro.design.supervise`) with an optional stop-on-first-pass
policy.

The execution layer tolerates its own failures:

* **Worker supervision** — every pooled job runs in its own supervised
  process with a per-job wall-clock ``job_timeout`` and bounded,
  jittered retries (``retry``).  A worker that dies mid-job is
  classified (worker killed / timeout / checker exception) and, once
  retries are exhausted, degrades *that one variant* to an
  ``INCOMPLETE`` verdict with the cause on the record — the rest of
  the run proceeds on fresh workers instead of aborting.
* **Checkpoint / resume** — when a cache (or explicit ``journal_dir``)
  is present, per-job lifecycle records are appended to a checksummed
  run journal (:mod:`repro.design.journal`).  ``resume=RUN_ID`` serves
  every journaled ``done`` record without re-verifying (and without
  touching the cache) and re-runs only pending or failed fingerprints.
* **Graceful interrupt** — SIGINT/SIGTERM set a stop flag that drains
  the worker pool, stops a serial check at its next stored state (via
  the budget's interrupt marker), journals everything finalized, and
  returns a partial :class:`~repro.design.rank.ExplorationReport` with
  ``interrupted=True`` (the CLI maps it to exit code 2).
* **No silent degradation** — falling back from the process pool to a
  serial run (unpicklable work) emits a ``warning`` engine event and
  lands in ``report.warnings``; retries and failures are narrated by
  ``job_retry`` / ``job_failed`` events and journal appends by
  ``checkpoint`` events.

Determinism contract (pinned by the design tests):

* results are reported in **enumeration order** regardless of
  ``jobs``, caching, or submission order, so serial and parallel
  explorations produce identical ranked output;
* engine events are streamed per variant in a fixed order — cache hits
  and resumed records first (enumeration order, bracketed with
  ``cached=True``), then each executed variant's buffered stream in
  submission order between its ``variant_started`` /
  ``variant_finished`` brackets;
* two variants whose jobs share a fingerprint are verified once; the
  duplicate is served the same record, marked as deduplicated.

Each variant's verdict is one of ``PASS`` (safety, optional LTL, and
optional goal reachability all hold; fault scenarios are then swept and
their worst resilience verdict recorded), ``FAIL`` (a property is
violated or the goal is unreachable), ``UNKNOWN`` (a budget ran out
first), ``INCOMPLETE`` (the platform failed — the worker died, timed
out, or the checker raised — with the cause recorded), or ``SKIPPED``
(the first-pass policy or an interrupt stopped the exploration before
this variant ran).
"""

from __future__ import annotations

import os
import pickle
import signal
import threading
import time
import traceback
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.resilience import (
    Fault,
    FaultScenario,
    _as_scenario,
    verify_resilience,
)
from ..core.spec import ModelLibrary
from ..mc.budget import BUDGET_INTERRUPT, BudgetExceeded
from ..mc.engine import StateGraph
from ..mc.explore import check_safety, find_state
from ..mc.ndfs import check_ltl
from ..mc.props import Prop
from ..obs.events import (
    EngineEvent,
    checkpoint,
    exploration_finished,
    exploration_started,
    job_failed,
    job_retry,
    variant_finished,
    variant_started,
    warning,
)
from ..obs.report import _stats_payload
from ..obs.reporters import CollectingReporter, Reporter, ScenarioScope
from . import failpoints
from .backend import CacheBackend
from .fingerprint import fingerprint_job
from .journal import RunJournal
from .rank import ExplorationReport, rank_records
from .space import DesignSpace, Variant
from .supervise import (
    CAUSE_EXCEPTION,
    JobFailure,
    RetryPolicy,
    SupervisedPool,
)

__all__ = [
    "EXHAUSTIVE",
    "FIRST_PASS",
    "PASS",
    "FAIL",
    "UNKNOWN",
    "INCOMPLETE",
    "SKIPPED",
    "explore",
]

#: Early-exit policies.
EXHAUSTIVE = "exhaustive"
FIRST_PASS = "first_pass"

#: Variant verdicts.
PASS = "PASS"
FAIL = "FAIL"
UNKNOWN = "UNKNOWN"
INCOMPLETE = "INCOMPLETE"
SKIPPED = "SKIPPED"


def _result_payload(result) -> Dict[str, Any]:
    """The JSON-able slice of a VerificationResult a record keeps."""
    return {
        "ok": result.ok,
        "kind": result.kind,
        "message": result.message,
        "incomplete": result.incomplete,
        "budget_exhausted": result.budget_exhausted,
        "statistics": _stats_payload(result.stats),
    }


def _verify_variant(
    variant: Variant,
    invariants: Sequence[Prop],
    check_deadlock: bool,
    goal: Optional[Prop],
    ltl: Optional[str],
    ltl_props: Optional[Mapping[str, Prop]],
    scenarios: Sequence[FaultScenario],
    library: ModelLibrary,
    max_states: Optional[int],
    max_seconds: Optional[float],
    reporter: Optional[Reporter] = None,
    stop: Optional[Any] = None,
) -> Dict[str, Any]:
    """Verify one variant; the unit of work for serial and pooled runs.

    Safety, the optional LTL check, and the optional goal search all
    run on one shared :class:`~repro.mc.engine.StateGraph`, so they pay
    successor generation once between them.  Fault scenarios are swept
    (serially, with the same library) only for variants that PASS —
    resilience is a tie-breaker between survivors, not a verdict input.
    ``stop`` is a zero-argument callable polled by the safety budget so
    an interrupt ends the check gracefully mid-BFS.
    Returns a plain JSON-able record, ready for the result cache.
    """
    scoped: Optional[Reporter] = None
    if reporter is not None:
        scoped = ScenarioScope(reporter, variant.name)
    hits0, misses0 = library.stats.hits, library.stats.misses
    t0 = time.perf_counter()
    arch = variant.build()
    system = arch.to_system(library, fused=variant.fused)
    graph = StateGraph(system)
    safety = check_safety(
        graph, invariants=invariants, check_deadlock=check_deadlock,
        max_states=max_states, max_seconds=max_seconds, reporter=scoped,
        stop=stop,
    )

    verdict = PASS
    detail = "all properties hold"
    budget_hit = bool(safety.incomplete)
    if not safety.ok:
        verdict, detail = FAIL, f"safety violated: {safety.message}"
    elif safety.incomplete:
        verdict = UNKNOWN
        detail = (f"{safety.budget_exhausted or 'budget'} exhausted "
                  "before a safety verdict")

    ltl_payload: Optional[Dict[str, Any]] = None
    if ltl is not None:
        # Always checked (on the same shared graph): a variant's record
        # carries both verdicts even when safety already failed, so
        # tables can show the two columns independently.
        ltl_result = check_ltl(
            graph, ltl, ltl_props or {}, max_states=max_states,
            max_seconds=max_seconds, reporter=scoped,
        )
        ltl_payload = _result_payload(ltl_result)
        ltl_payload["formula"] = ltl
        budget_hit = budget_hit or ltl_result.incomplete
        if verdict is PASS:
            if not ltl_result.ok:
                verdict, detail = FAIL, f"LTL violated: {ltl_result.message}"
            elif ltl_result.incomplete:
                verdict = UNKNOWN
                detail = (f"{ltl_result.budget_exhausted or 'budget'} "
                          "exhausted before an LTL verdict")

    goal_payload: Optional[Dict[str, Any]] = None
    if goal is not None and verdict is PASS:
        try:
            witness = find_state(graph, goal, max_states=max_states,
                                 max_seconds=max_seconds, reporter=scoped)
        except BudgetExceeded as exc:
            budget_hit = True
            verdict = UNKNOWN
            detail = f"goal search stopped early: {exc}"
            goal_payload = {"name": goal.name, "reachable": None}
        else:
            reachable = witness is not None
            goal_payload = {"name": goal.name, "reachable": reachable}
            if not reachable:
                verdict = FAIL
                detail = f"goal {goal.name!r} is unreachable"

    resilience_payload: Optional[Dict[str, Any]] = None
    if scenarios and verdict is PASS:
        sweep = verify_resilience(
            arch, list(scenarios), invariants=invariants, goal=goal,
            check_deadlock=check_deadlock, library=library,
            max_states=max_states, max_seconds=max_seconds,
            fused=variant.fused, include_baseline=False, jobs=1,
        )
        budget_hit = budget_hit or not sweep.complete
        resilience_payload = {
            "worst": sweep.worst,
            "complete": sweep.complete,
            "scenarios": [
                {"name": s.name, "verdict": s.verdict, "detail": s.detail}
                for s in sweep.scenarios
            ],
        }
        detail = f"{detail}; worst fault verdict {sweep.worst}"

    return {
        "space": variant.space,
        "variant": variant.name,
        "index": variant.index,
        "base": variant.base_label,
        "labels": variant.labels,
        "fused": variant.fused,
        "verdict": verdict,
        "detail": detail,
        "states": safety.stats.states_stored,
        "seconds": round(time.perf_counter() - t0, 6),
        "budget_hit": budget_hit,
        "safety": _result_payload(safety),
        "ltl": ltl_payload,
        "goal": goal_payload,
        "resilience": resilience_payload,
        "models_reused": library.stats.hits - hits0,
        "models_built": library.stats.misses - misses0,
    }


def _run_variant_task(payload: bytes) -> Tuple[Dict[str, Any],
                                               List[EngineEvent]]:
    """Supervised-worker entry point: unpickle one variant's job, run it.

    Each worker holds a private :class:`ModelLibrary` (reuse accounting
    becomes per-variant), and when the parent has a reporter its
    progress interval travels in the payload so the worker buffers
    events in a :class:`~repro.obs.reporters.CollectingReporter` for
    deterministic replay after the join.  The ``worker.run`` failpoint
    (keyed by variant index) lets the chaos suite kill or stall this
    worker mid-job.
    """
    (variant, invariants, check_deadlock, goal, ltl, ltl_props, scenarios,
     max_states, max_seconds, interval) = pickle.loads(payload)
    failpoints.hit("worker.run", token=variant.index)
    collector = None if interval is None else CollectingReporter(interval)
    record = _verify_variant(
        variant, invariants, check_deadlock, goal, ltl, ltl_props,
        scenarios, ModelLibrary(), max_states, max_seconds,
        reporter=collector,
    )
    return record, ([] if collector is None else collector.events)


def _base_record(variant: Variant, verdict: str, detail: str) -> Dict[str, Any]:
    return {
        "space": variant.space,
        "variant": variant.name,
        "index": variant.index,
        "base": variant.base_label,
        "labels": variant.labels,
        "fused": variant.fused,
        "verdict": verdict,
        "detail": detail,
        "states": 0,
        "seconds": 0.0,
        "budget_hit": False,
        "safety": None,
        "ltl": None,
        "goal": None,
        "resilience": None,
        "models_reused": 0,
        "models_built": 0,
    }


def _skipped_record(variant: Variant, reason: str) -> Dict[str, Any]:
    return _base_record(variant, SKIPPED, reason)


def _failed_record(variant: Variant, failure: JobFailure) -> Dict[str, Any]:
    """An INCOMPLETE verdict for a variant whose job the platform lost."""
    record = _base_record(variant, INCOMPLETE,
                          f"incomplete: {failure.describe()}")
    record["failure"] = {
        "cause": failure.cause,
        "detail": failure.detail,
        "attempts": failure.attempts,
    }
    return record


def _install_interrupt(flag: threading.Event):
    """Route SIGINT/SIGTERM into ``flag``; return handlers to restore.

    Only possible from the main thread; elsewhere the exploration still
    works, it just keeps the default signal behaviour.
    """
    if threading.current_thread() is not threading.main_thread():
        return None
    previous = {}

    def _handler(signum, frame):
        flag.set()

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, _handler)
        except (ValueError, OSError):  # pragma: no cover - exotic host
            pass
    return previous


def _restore_interrupt(previous) -> None:
    if not previous:
        return
    for sig, handler in previous.items():
        try:
            signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic host
            pass


def explore(
    space: DesignSpace,
    *,
    invariants: Sequence[Prop] = (),
    check_deadlock: bool = True,
    goal: Optional[Prop] = None,
    ltl: Optional[str] = None,
    ltl_props: Optional[Mapping[str, Prop]] = None,
    faults: Sequence[Union[Fault, FaultScenario]] = (),
    library: Optional[ModelLibrary] = None,
    cache: Optional[CacheBackend] = None,
    jobs: int = 1,
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
    policy: str = EXHAUSTIVE,
    reporter: Optional[Reporter] = None,
    run_id: Optional[str] = None,
    resume: Optional[str] = None,
    journal_dir: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
    job_timeout: Optional[float] = None,
) -> ExplorationReport:
    """Explore a design space and rank the surviving variants.

    Every variant is elaborated once in the parent (through the shared
    ``library``, so block/component models are reused across the whole
    space) to compute its job fingerprint.  Fingerprints then decide the
    work: resumed jobs are served from the run journal, cached jobs from
    ``cache``, duplicated jobs are verified once, and the rest are
    submitted cheapest-first — serially, or over a supervised worker
    pool when ``jobs > 1`` (falling back to serial, with a warning
    event, when the work does not pickle).

    ``policy=FIRST_PASS`` stops after the first PASS in submission
    order; variants that never ran are reported as ``SKIPPED``.  Fresh
    verdicts are written back to ``cache`` (any
    :class:`~repro.design.backend.CacheBackend` — the JSONL journal or
    the concurrent SQLite store from
    :func:`~repro.design.backend.open_cache`) and journaled as they
    finalize; the cache is flushed and closed before returning (both
    backends transparently reopen if used again).

    Fault tolerance knobs: ``retry`` (a
    :class:`~repro.design.supervise.RetryPolicy`; default one retry
    with jittered backoff), ``job_timeout`` (per-job wall clock for
    pooled workers), ``run_id`` / ``resume`` / ``journal_dir`` (the
    checkpoint/resume journal; defaults to ``<cache dir>/runs``).
    SIGINT/SIGTERM interrupt the exploration gracefully: the report
    comes back partial with ``interrupted=True``.
    """
    if policy not in (EXHAUSTIVE, FIRST_PASS):
        raise ValueError(f"unknown exploration policy {policy!r}")
    retry_policy = retry if retry is not None else RetryPolicy()
    library = library if library is not None else ModelLibrary()
    scenarios = tuple(_as_scenario(f) for f in faults)
    fault_names = [f"{s.name}={s.describe()}" for s in scenarios]
    variants = space.variants()
    total = len(variants)

    # Fingerprint every variant's job up front (cheap: elaboration reuses
    # the shared library; verification is where the time goes).
    fingerprints: List[str] = []
    for variant in variants:
        system = variant.build().to_system(library, fused=variant.fused)
        fingerprints.append(fingerprint_job(
            system, invariants=invariants, check_deadlock=check_deadlock,
            goal=goal, ltl=ltl, ltl_props=ltl_props, faults=fault_names,
            max_states=max_states, max_seconds=max_seconds,
        ))

    # Checkpoint/resume journal: default location rides with the cache.
    jdir = journal_dir
    if jdir is None and cache is not None:
        jdir = os.path.join(cache.directory, "runs")
    prior = None
    if resume is not None:
        if jdir is None:
            raise ValueError(
                "resume requires a cache or an explicit journal_dir "
                "(the journal lives under the cache directory)")
        prior = RunJournal.load(jdir, resume)
        run_id = resume
    journal = RunJournal(jdir, run_id=run_id) if jdir is not None else None
    if journal is not None:
        run_id = journal.run_id

    records: List[Optional[Dict[str, Any]]] = [None] * total
    served_from_cache = [False] * total
    resumed = [False] * total

    # Resumed jobs resolve first (no cache traffic), then cache hits;
    # the rest dedupe by fingerprint.
    first_for: Dict[str, int] = {}
    to_run: List[int] = []
    for i, fp in enumerate(fingerprints):
        if prior is not None and fp in prior.completed:
            records[i] = _rebind(prior.completed[fp], variants[i])
            resumed[i] = True
            continue
        cached = cache.get(fp) if cache is not None else None
        if cached is not None:
            records[i] = _rebind(cached, variants[i])
            served_from_cache[i] = True
            continue
        if fp in first_for:
            continue  # verified once; filled in from the twin's record
        first_for[fp] = i
        to_run.append(i)

    # Cheapest-first submission order (stable on enumeration index).
    to_run.sort(key=lambda i: (variants[i].cost_hint(), i))

    interrupt = threading.Event()
    previous_handlers = _install_interrupt(interrupt)
    warnings: List[str] = []
    try:
        if journal is not None:
            journal.record(
                "run_started", run_id=run_id, space=space.name, total=total,
                policy=policy, jobs=jobs, resumed=sum(resumed),
                cached=sum(served_from_cache), to_run=len(to_run))
            for i in to_run:
                journal.record("scheduled", fingerprint=fingerprints[i],
                               variant=variants[i].name, index=i)

        if reporter is not None:
            reporter.emit(exploration_started(
                space.name, variants=total, jobs=jobs,
                cached=sum(served_from_cache) + sum(resumed),
                to_run=len(to_run)))
            for i in range(total):
                if served_from_cache[i] or resumed[i]:
                    _emit_brackets(reporter, variants[i], records[i], i,
                                   total, cached=True)

        stopped_early = False
        if to_run and not interrupt.is_set():
            ran: Optional[List[Tuple[int, Dict[str, Any],
                                     List[EngineEvent],
                                     Optional[JobFailure]]]] = None
            if jobs > 1 and len(to_run) > 1:
                ran = _explore_supervised(
                    variants, to_run, invariants, check_deadlock, goal, ltl,
                    ltl_props, scenarios, max_states, max_seconds, jobs,
                    policy, reporter, retry_policy, job_timeout, interrupt,
                )
                if ran is None:
                    message = ("parallel exploration degraded to a serial "
                               "run: the verification jobs do not pickle "
                               "across the worker pool")
                    warnings.append(message)
                    if reporter is not None:
                        reporter.emit(warning("explore", message=message))
            if ran is None:
                ran = _explore_serial(
                    variants, to_run, invariants, check_deadlock, goal, ltl,
                    ltl_props, scenarios, library, max_states, max_seconds,
                    policy, reporter, total, retry_policy, interrupt,
                )
            done_count = sum(resumed)
            failed_count = 0
            for i, record, _events, failure in ran:
                records[i] = record
                if failure is None:
                    done_count += 1
                    if cache is not None:
                        cache.put(fingerprints[i], record)
                    if journal is not None:
                        journal.record("done", fingerprint=fingerprints[i],
                                       variant=variants[i].name,
                                       record=record)
                else:
                    failed_count += 1
                    if journal is not None:
                        journal.record(
                            "failed", fingerprint=fingerprints[i],
                            variant=variants[i].name, cause=failure.cause,
                            attempts=failure.attempts, detail=failure.detail)
                if journal is not None and reporter is not None:
                    reporter.emit(checkpoint(
                        run_id or "", completed=done_count,
                        failed=failed_count,
                        pending=len(to_run) - len(ran), path=journal.path))
            completed = {i for i, _, _, _ in ran}
            stopped_early = (len(completed) < len(to_run)
                             and not interrupt.is_set())
    finally:
        _restore_interrupt(previous_handlers)

    interrupted = interrupt.is_set()
    if journal is not None:
        if interrupted:
            journal.record("interrupted", run_id=run_id)
        else:
            journal.record("run_finished", run_id=run_id)
        journal.close()

    # Twin variants (same fingerprint) share the executed record.
    skip_reason = (
        "skipped: the exploration was interrupted before this variant ran"
        if interrupted else
        "skipped: first-pass policy stopped the exploration before this "
        "variant ran")
    for i, fp in enumerate(fingerprints):
        if records[i] is not None:
            continue
        twin = first_for.get(fp)
        if twin is not None and records[twin] is not None:
            records[i] = _rebind(records[twin], variants[i],
                                 deduplicated=True)
        else:
            records[i] = _skipped_record(variants[i], skip_reason)

    final: List[Dict[str, Any]] = []
    for i, record in enumerate(records):
        assert record is not None
        record = dict(record)
        record["cached"] = served_from_cache[i]
        if resumed[i]:
            record["resumed"] = True
        final.append(record)

    ranked = rank_records(final)
    report = ExplorationReport(
        space=space.name,
        results=final,
        ranked=ranked,
        policy=policy,
        jobs=jobs,
        stopped_early=stopped_early,
        cache_stats=(cache.stats() if cache is not None else None),
        library_snapshot=library.snapshot(),
        run_id=run_id,
        interrupted=interrupted,
        warnings=warnings,
    )
    if cache is not None:
        cache.flush()
        # Release the append handle / writer lock / connection eagerly;
        # both backends transparently reopen if the caller keeps using
        # the instance.  Long-lived processes stop leaking handles and
        # (JSONL) stop holding the directory's exclusive writer lock.
        cache.close()
    if reporter is not None:
        reporter.emit(exploration_finished(
            space.name, best=(report.best["variant"] if report.best else None),
            complete=report.complete,
            cache_hits=(cache.hits if cache is not None else 0),
            cache_misses=(cache.misses if cache is not None else 0)))
    return report


def _rebind(record: Mapping[str, Any], variant: Variant,
            deduplicated: bool = False) -> Dict[str, Any]:
    """A cached/twin record re-labelled with *this* variant's identity.

    The verdict and evidence are content-addressed (same fingerprint =
    same job), but the variant name/index/labels belong to the current
    enumeration, not to whoever first produced the record.
    """
    out = dict(record)
    out.pop("schema", None)
    out.pop("fingerprint", None)
    out.pop("crc", None)
    out["space"] = variant.space
    out["variant"] = variant.name
    out["index"] = variant.index
    out["base"] = variant.base_label
    out["labels"] = variant.labels
    out["fused"] = variant.fused
    if deduplicated:
        out["deduplicated"] = True
    return out


def _emit_brackets(reporter: Reporter, variant: Variant,
                   record: Mapping[str, Any], index: int, total: int, *,
                   cached: bool,
                   events: Sequence[EngineEvent] = (),
                   failure: Optional[JobFailure] = None) -> None:
    reporter.emit(variant_started(
        variant.name, index=index, total=total, cached=cached))
    for event in events:
        reporter.emit(event)
    if failure is not None:
        reporter.emit(job_failed(
            variant.name, cause=failure.cause, attempts=failure.attempts,
            detail=failure.detail))
    reporter.emit(variant_finished(
        variant.name, verdict=record["verdict"],
        states_stored=record["states"], seconds=record["seconds"],
        cached=cached))


def _explore_serial(
    variants: Sequence[Variant],
    to_run: Sequence[int],
    invariants: Sequence[Prop],
    check_deadlock: bool,
    goal: Optional[Prop],
    ltl: Optional[str],
    ltl_props: Optional[Mapping[str, Prop]],
    scenarios: Sequence[FaultScenario],
    library: ModelLibrary,
    max_states: Optional[int],
    max_seconds: Optional[float],
    policy: str,
    reporter: Optional[Reporter],
    total: int,
    retry_policy: RetryPolicy,
    interrupt: threading.Event,
) -> List[Tuple[int, Dict[str, Any], List[EngineEvent],
                Optional[JobFailure]]]:
    """The in-process execution path, with the same failure contract as
    the pool: checker exceptions are retried then degraded, an interrupt
    stops the current check at its next stored state and the partial
    record is discarded (resume re-runs that variant)."""
    out: List[Tuple[int, Dict[str, Any], List[EngineEvent],
                    Optional[JobFailure]]] = []
    stop = interrupt.is_set
    for i in to_run:
        if interrupt.is_set():
            break
        variant = variants[i]
        if reporter is not None:
            reporter.emit(variant_started(
                variant.name, index=i, total=total, cached=False))
        record: Optional[Dict[str, Any]] = None
        failure: Optional[JobFailure] = None
        attempts = 0
        while True:
            attempts += 1
            try:
                record = _verify_variant(
                    variant, invariants, check_deadlock, goal, ltl,
                    ltl_props, scenarios, library, max_states, max_seconds,
                    reporter=reporter, stop=stop,
                )
            except Exception:
                detail = traceback.format_exc(limit=8)
                if retry_policy.should_retry(CAUSE_EXCEPTION, attempts):
                    delay = retry_policy.backoff(attempts, seed=str(i))
                    if reporter is not None:
                        reporter.emit(job_retry(
                            variant.name, cause=CAUSE_EXCEPTION,
                            attempt=attempts,
                            max_attempts=retry_policy.max_attempts,
                            backoff=delay))
                    time.sleep(delay)
                    continue
                failure = JobFailure(cause=CAUSE_EXCEPTION, detail=detail,
                                     attempts=attempts)
            break
        if failure is None and interrupt.is_set():
            # The check was cut short by the interrupt marker (or the
            # signal landed between variants): drop the partial record
            # so resume re-runs this fingerprint from scratch.
            if reporter is not None:
                reporter.emit(variant_finished(
                    variant.name, verdict=SKIPPED, states_stored=0,
                    seconds=0.0, cached=False))
            break
        if failure is not None:
            record = _failed_record(variants[i], failure)
            if reporter is not None:
                reporter.emit(job_failed(
                    variant.name, cause=failure.cause,
                    attempts=failure.attempts, detail=failure.detail))
        assert record is not None
        out.append((i, record, [], failure))
        if reporter is not None:
            reporter.emit(variant_finished(
                variant.name, verdict=record["verdict"],
                states_stored=record["states"], seconds=record["seconds"],
                cached=False))
        if policy == FIRST_PASS and record["verdict"] == PASS:
            break
    return out


def _explore_supervised(
    variants: Sequence[Variant],
    to_run: Sequence[int],
    invariants: Sequence[Prop],
    check_deadlock: bool,
    goal: Optional[Prop],
    ltl: Optional[str],
    ltl_props: Optional[Mapping[str, Prop]],
    scenarios: Sequence[FaultScenario],
    max_states: Optional[int],
    max_seconds: Optional[float],
    jobs: int,
    policy: str,
    reporter: Optional[Reporter],
    retry_policy: RetryPolicy,
    job_timeout: Optional[float],
    interrupt: threading.Event,
) -> Optional[List[Tuple[int, Dict[str, Any], List[EngineEvent],
                         Optional[JobFailure]]]]:
    """Fan variant jobs over the supervised pool; None = fall back serial.

    Outcomes come back in submission order, so the lazily evaluated
    first-pass predicate stops without waiting for (or starting) the
    jobs queued behind the first PASS.  Workers buffer their event
    streams; the parent replays each between its variant brackets, in
    submission order, matching the serial sweep's sequence.  A worker
    the supervisor gave up on yields an INCOMPLETE record (plus a
    ``job_failed`` event) instead of poisoning the run.
    """
    interval = None
    if reporter is not None:
        interval = int(getattr(reporter, "interval", 1000))
    try:
        payloads = [
            pickle.dumps((
                variants[i], tuple(invariants), check_deadlock, goal, ltl,
                dict(ltl_props) if ltl_props else None, tuple(scenarios),
                max_states, max_seconds, interval,
            ))
            for i in to_run
        ]
    except Exception:
        return None

    def on_retry(key: int, cause: str, attempt: int, delay: float) -> None:
        if reporter is not None:
            reporter.emit(job_retry(
                variants[key].name, cause=cause, attempt=attempt,
                max_attempts=retry_policy.max_attempts, backoff=delay))

    stop_after = None
    if policy == FIRST_PASS:
        def stop_after(outcome):
            return (outcome.ok
                    and outcome.result[0]["verdict"] == PASS)

    pool = SupervisedPool(min(jobs, len(to_run)), timeout=job_timeout,
                          retry=retry_policy)
    try:
        outcomes = pool.run(
            _run_variant_task, payloads, keys=list(to_run), stop=interrupt,
            stop_after=stop_after, on_retry=on_retry)
    except Exception:
        return None

    out: List[Tuple[int, Dict[str, Any], List[EngineEvent],
                    Optional[JobFailure]]] = []
    total = len(variants)
    for outcome in outcomes:
        i = outcome.key
        if outcome.ok:
            record, events = outcome.result
            out.append((i, record, list(events), None))
        else:
            record = _failed_record(variants[i], outcome.failure)
            out.append((i, record, [], outcome.failure))
    if reporter is not None:
        for i, record, events, failure in out:
            _emit_brackets(reporter, variants[i], record, i, total,
                           cached=False, events=events, failure=failure)
    return out

"""Disk-backed, content-addressed store for verification results.

The paper's reuse claim — block and component models carry over
unchanged across design iterations — made incremental *across runs*:
a verification verdict is stored under the fingerprint of the job that
produced it (:mod:`repro.design.fingerprint`), so re-running an
exploration after editing one connector re-verifies only the variants
whose fingerprints changed.

Layout (schema ``repro.design-cache/1``), under one cache directory:

``results.jsonl``
    The **source of truth**: a crash-consistent append-only journal,
    one record per completed job::

        {"schema": "repro.design-cache/1", "fingerprint": "<sha256>",
         "crc": <crc32-of-the-rest>, "verdict": ..., ...}

    Each append is flushed and fsynced before ``put`` returns, so a
    record handed back to a caller is on disk; a crash loses at most
    the record being appended.  On open, records are replayed in file
    order and the *last* record per fingerprint wins, so
    re-verifications supersede stale entries without compaction.
    Lines that fail to parse, fail their CRC-32 checksum (torn tail,
    bit rot), carry a different schema, or lack a fingerprint are
    skipped — a damaged or foreign cache degrades to misses, never to
    wrong verdicts.  Pre-checksum records (no ``crc`` field) are still
    accepted and counted as *legacy*.

``index.json``
    A convenience snapshot — schema, record count, and the sorted
    fingerprint list — rebuilt from the journal whenever it is missing,
    stale, or corrupt, and rewritten atomically on
    :meth:`ResultCache.flush`.  It exists for humans and tooling
    (``jq``-able inventory); lookups never trust it, so a corrupt index
    can cost a rebuild but never a verdict.

Maintenance goes through :meth:`ResultCache.verify` (integrity audit:
re-scan the journal, classify every line, check the index snapshot)
and :meth:`ResultCache.compact` (rewrite the journal to one live
record per fingerprint via a temp file and an atomic ``os.replace``).
Both are exposed as ``repro cache verify`` / ``repro cache compact``.

Invalidation is purely content-driven: there is no TTL and no manual
purge protocol.  A fingerprint changes when (and only when) the job
content changes — edited process definitions, swapped blocks, different
properties or budgets, a bumped fingerprint/cache schema — and old
records simply stop being referenced.  ``compact`` (or deleting the
cache directory) reclaims the space they occupied.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from . import failpoints
from .journal import append_entry, verify_entry

__all__ = ["CACHE_SCHEMA", "ResultCache"]

CACHE_SCHEMA = "repro.design-cache/1"

_RESULTS_NAME = "results.jsonl"
_INDEX_NAME = "index.json"


class ResultCache:
    """A content-addressed verification-result store in one directory.

    Records are plain JSON dicts keyed by job fingerprint.  ``get`` and
    ``put`` count hits, misses, and stores so explorations can report
    exactly how much verification work the cache absorbed.

    ``durable=False`` skips the per-append ``fsync`` (tests, throwaway
    sweeps); everything else about the format is identical.
    """

    def __init__(self, directory: str, *, durable: bool = True) -> None:
        self.directory = str(directory)
        self.durable = durable
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self._records: Dict[str, Dict[str, Any]] = {}
        self._skipped_lines = 0
        self._legacy_lines = 0
        self._fh = None
        os.makedirs(self.directory, exist_ok=True)
        self._load()
        has_state = (os.path.exists(self.results_path)
                     or os.path.exists(self.index_path))
        if has_state and not self._index_fresh():
            # Missing, stale, or corrupt snapshot: rebuild it from the
            # journal we just replayed (never raises on damage).  A
            # brand-new cache has nothing to snapshot yet.
            self.flush()

    @property
    def results_path(self) -> str:
        return os.path.join(self.directory, _RESULTS_NAME)

    @property
    def index_path(self) -> str:
        return os.path.join(self.directory, _INDEX_NAME)

    def _accept(self, record: Any) -> Optional[str]:
        """Classify one journal line; return its fingerprint if live.

        Updates the skipped/legacy counters as a side effect.
        """
        if (not isinstance(record, dict)
                or record.get("schema") != CACHE_SCHEMA
                or not isinstance(record.get("fingerprint"), str)):
            self._skipped_lines += 1
            return None
        if "crc" in record:
            if not verify_entry(record):
                self._skipped_lines += 1
                return None
        else:
            self._legacy_lines += 1
        return record["fingerprint"]

    def _load(self) -> None:
        if not os.path.exists(self.results_path):
            return
        with open(self.results_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self._skipped_lines += 1
                    continue
                fingerprint = self._accept(record)
                if fingerprint is not None:
                    # Last record per fingerprint wins (append-only
                    # updates).
                    self._records[fingerprint] = record

    def _index_fresh(self) -> bool:
        """True when ``index.json`` parses and matches the journal."""
        try:
            with open(self.index_path, "r", encoding="utf-8") as fh:
                index = json.load(fh)
        except FileNotFoundError:
            return False
        except (ValueError, OSError):
            return False  # corrupt snapshot: caller rebuilds it
        if not isinstance(index, dict):
            return False
        return (index.get("schema") == CACHE_SCHEMA
                and index.get("records") == len(self._records)
                and index.get("fingerprints") == sorted(self._records))

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._records

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The cached record for ``fingerprint``, or None (counted)."""
        record = self._records.get(fingerprint)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, fingerprint: str, record: Dict[str, Any]) -> Dict[str, Any]:
        """Store ``record`` under ``fingerprint``, durably.

        The schema, fingerprint, and checksum fields are stamped on;
        the caller's payload must be JSON-able.  The appended line is
        flushed and fsynced before this returns.
        """
        failpoints.hit("cache.put", token=fingerprint)
        stamped = dict(record)
        stamped["schema"] = CACHE_SCHEMA
        stamped["fingerprint"] = fingerprint
        if self._fh is None or self._fh.closed:
            self._fh = open(self.results_path, "a", encoding="utf-8")
        append_entry(self._fh, stamped, durable=self.durable)
        self._records[fingerprint] = stamped
        self.stored += 1
        return stamped

    def flush(self) -> None:
        """Atomically rewrite the ``index.json`` snapshot."""
        failpoints.hit("cache.index")
        index = {
            "schema": CACHE_SCHEMA,
            "records": len(self._records),
            "results_bytes": (os.path.getsize(self.results_path)
                              if os.path.exists(self.results_path) else 0),
            "fingerprints": sorted(self._records),
        }
        tmp = self.index_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(index, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.index_path)

    def close(self) -> None:
        """Close the journal's append handle (reopened lazily by put)."""
        if self._fh is not None and not self._fh.closed:
            self._fh.close()

    def verify(self) -> Dict[str, Any]:
        """Audit the journal and index; never raises on damage.

        Re-scans ``results.jsonl`` line by line, classifying each as
        live, superseded (an older record for a fingerprint that
        appears again later), legacy (pre-checksum), or corrupt, and
        checks that the index snapshot matches.  ``ok`` means no
        corrupt lines and a fresh index.
        """
        lines = 0
        corrupt = 0
        legacy = 0
        last_for: Dict[str, int] = {}
        if os.path.exists(self.results_path):
            with open(self.results_path, "r", encoding="utf-8") as fh:
                for line in fh:
                    raw = line.strip()
                    if not raw:
                        continue
                    lines += 1
                    try:
                        record = json.loads(raw)
                    except ValueError:
                        corrupt += 1
                        continue
                    if (not isinstance(record, dict)
                            or record.get("schema") != CACHE_SCHEMA
                            or not isinstance(record.get("fingerprint"),
                                              str)):
                        corrupt += 1
                        continue
                    if "crc" in record:
                        if not verify_entry(record):
                            corrupt += 1
                            continue
                    else:
                        legacy += 1
                    last_for[record["fingerprint"]] = lines
        index_fresh = self._index_fresh()
        return {
            "records": len(last_for),
            "lines": lines,
            "superseded_lines": lines - corrupt - len(last_for),
            "corrupt_lines": corrupt,
            "legacy_lines": legacy,
            "index_fresh": index_fresh,
            "ok": corrupt == 0 and index_fresh,
        }

    def compact(self) -> Dict[str, int]:
        """Rewrite the journal to one live record per fingerprint.

        The replacement is built in a temp file, fsynced, and swapped
        in with an atomic ``os.replace`` — a crash at any point leaves
        either the old journal or the new one, never a mix.  Records
        are re-checksummed, so compaction also upgrades legacy lines.
        Returns the line counts before and after.
        """
        before = 0
        if os.path.exists(self.results_path):
            with open(self.results_path, "r", encoding="utf-8") as fh:
                before = sum(1 for line in fh if line.strip())
        self.close()
        tmp = self.results_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            for fingerprint in sorted(self._records):
                record = dict(self._records[fingerprint])
                append_entry(fh, record, durable=False)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.results_path)
        self._skipped_lines = 0
        self._legacy_lines = 0
        self.flush()
        return {"before_lines": before, "after_lines": len(self._records)}

    def stats(self) -> Dict[str, int]:
        """Hit/miss/store accounting since this cache was opened."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
            "records": len(self._records),
            "skipped_lines": self._skipped_lines,
            "legacy_lines": self._legacy_lines,
        }

    def __repr__(self) -> str:
        return (f"ResultCache({self.directory!r}, {len(self._records)} "
                f"records, {self.hits} hits / {self.misses} misses)")

"""Disk-backed, content-addressed store for verification results.

The paper's reuse claim — block and component models carry over
unchanged across design iterations — made incremental *across runs*:
a verification verdict is stored under the fingerprint of the job that
produced it (:mod:`repro.design.fingerprint`), so re-running an
exploration after editing one connector re-verifies only the variants
whose fingerprints changed.

Layout (schema ``repro.design-cache/1``), under one cache directory:

``results.jsonl``
    Append-only JSONL, one record per completed job::

        {"schema": "repro.design-cache/1", "fingerprint": "<sha256>",
         "verdict": ..., ...}

    Append-only means a crashed run loses at most its unflushed tail;
    on open, records are replayed in file order and the *last* record
    per fingerprint wins, so re-verifications supersede stale entries
    without compaction.  Lines that fail to parse, carry a different
    schema, or lack a fingerprint are skipped (a foreign or corrupt
    cache degrades to misses, never to wrong verdicts).

``index.json``
    A convenience snapshot — schema, record count, and the sorted
    fingerprint list — written on :meth:`ResultCache.flush`.  It exists
    for humans and tooling (``jq``-able inventory); the JSONL is the
    source of truth and the index is never read back for lookups.

Invalidation is purely content-driven: there is no TTL and no manual
purge protocol.  A fingerprint changes when (and only when) the job
content changes — edited process definitions, swapped blocks, different
properties or budgets, a bumped fingerprint/cache schema — and old
records simply stop being referenced.  Delete the cache directory to
reclaim space.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

__all__ = ["CACHE_SCHEMA", "ResultCache"]

CACHE_SCHEMA = "repro.design-cache/1"

_RESULTS_NAME = "results.jsonl"
_INDEX_NAME = "index.json"


class ResultCache:
    """A content-addressed verification-result store in one directory.

    Records are plain JSON dicts keyed by job fingerprint.  ``get`` and
    ``put`` count hits, misses, and stores so explorations can report
    exactly how much verification work the cache absorbed.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self._records: Dict[str, Dict[str, Any]] = {}
        self._skipped_lines = 0
        os.makedirs(directory, exist_ok=True)
        self._load()

    @property
    def results_path(self) -> str:
        return os.path.join(self.directory, _RESULTS_NAME)

    @property
    def index_path(self) -> str:
        return os.path.join(self.directory, _INDEX_NAME)

    def _load(self) -> None:
        if not os.path.exists(self.results_path):
            return
        with open(self.results_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self._skipped_lines += 1
                    continue
                if (not isinstance(record, dict)
                        or record.get("schema") != CACHE_SCHEMA
                        or not isinstance(record.get("fingerprint"), str)):
                    self._skipped_lines += 1
                    continue
                # Last record per fingerprint wins (append-only updates).
                self._records[record["fingerprint"]] = record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._records

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The cached record for ``fingerprint``, or None (counted)."""
        record = self._records.get(fingerprint)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, fingerprint: str, record: Dict[str, Any]) -> Dict[str, Any]:
        """Store ``record`` under ``fingerprint`` (appended immediately).

        The schema and fingerprint fields are stamped on; the caller's
        payload must be JSON-able.
        """
        stamped = dict(record)
        stamped["schema"] = CACHE_SCHEMA
        stamped["fingerprint"] = fingerprint
        line = json.dumps(stamped, sort_keys=True, separators=(",", ":"))
        with open(self.results_path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        self._records[fingerprint] = stamped
        self.stored += 1
        return stamped

    def flush(self) -> None:
        """Write the ``index.json`` snapshot for the current contents."""
        index = {
            "schema": CACHE_SCHEMA,
            "records": len(self._records),
            "results_bytes": (os.path.getsize(self.results_path)
                              if os.path.exists(self.results_path) else 0),
            "fingerprints": sorted(self._records),
        }
        tmp = self.index_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(index, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.index_path)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/store accounting since this cache was opened."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
            "records": len(self._records),
            "skipped_lines": self._skipped_lines,
        }

    def __repr__(self) -> str:
        return (f"ResultCache({self.directory!r}, {len(self._records)} "
                f"records, {self.hits} hits / {self.misses} misses)")

"""Disk-backed, content-addressed store for verification results.

The paper's reuse claim — block and component models carry over
unchanged across design iterations — made incremental *across runs*:
a verification verdict is stored under the fingerprint of the job that
produced it (:mod:`repro.design.fingerprint`), so re-running an
exploration after editing one connector re-verifies only the variants
whose fingerprints changed.

This module holds the original **JSONL journal backend**
(:class:`ResultCache`); the concurrent multi-process **SQLite/WAL
backend** lives in :mod:`repro.design.sqlcache`, and the
backend-agnostic protocol plus the :func:`~repro.design.backend.open_cache`
factory in :mod:`repro.design.backend`.  Both backends store the same
record schema, so :func:`~repro.design.sqlcache.migrate_jsonl_to_sqlite`
converts a cache verdict-equivalently.

Layout (schema ``repro.design-cache/1``), under one cache directory:

``results.jsonl``
    The **source of truth**: a crash-consistent append-only journal,
    one record per completed job::

        {"schema": "repro.design-cache/1", "fingerprint": "<sha256>",
         "crc": <crc32-of-the-rest>, "verdict": ..., ...}

    Each append is flushed and fsynced before ``put`` returns, so a
    record handed back to a caller is on disk; a crash loses at most
    the record being appended.  On open, records are replayed in file
    order and the *last* record per fingerprint wins, so
    re-verifications supersede stale entries without compaction.
    Lines are classified uniformly (see :func:`classify_line`):
    *corrupt* lines (unparseable, failed CRC-32 — torn tail, bit rot)
    and *skipped* lines (well-formed but foreign: another schema, no
    fingerprint) are never served — a damaged or foreign cache
    degrades to misses, never to wrong verdicts.  Pre-checksum records
    (no ``crc`` field) are still accepted and counted as *legacy*.

``index.json``
    A convenience snapshot — schema, record count, and the sorted
    fingerprint list — rebuilt from the journal whenever it is missing,
    stale, or corrupt, and rewritten atomically on
    :meth:`ResultCache.flush`.  It exists for humans and tooling
    (``jq``-able inventory); lookups never trust it, so a corrupt index
    can cost a rebuild but never a verdict.

``.cache.lock``
    The advisory writer lock.  The journal is strictly single-writer:
    the first mutation (``put``/``compact``/``fsck``) takes an
    exclusive ``flock`` held until :meth:`ResultCache.close`, and a
    second concurrent writer raises
    :class:`~repro.design.journal.FileLockedError` loudly instead of
    interleaving appends or racing the compaction ``os.replace``
    window.  Readers never lock; use the SQLite backend for
    multi-process writer workloads.

Maintenance goes through :meth:`ResultCache.verify` (integrity audit:
re-scan the journal, classify every line, check the index snapshot),
:meth:`ResultCache.compact` (rewrite the journal to one live record
per fingerprint via a temp file and an atomic ``os.replace``), and
:meth:`ResultCache.fsck` (compact + a report of every line the rewrite
dropped).  All three are exposed as ``repro cache
{verify,compact,fsck}``.

Invalidation is purely content-driven: there is no TTL and no manual
purge protocol.  A fingerprint changes when (and only when) the job
content changes — edited process definitions, swapped blocks, different
properties or budgets, a bumped fingerprint/cache schema — and old
records simply stop being referenced.  ``compact`` (or deleting the
cache directory) reclaims the space they occupied.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Iterator, Optional, Tuple

from . import failpoints
from .journal import (
    FileLockedError,
    append_entry,
    try_lock,
    unlock,
    verify_entry,
)

__all__ = ["CACHE_SCHEMA", "CacheLockedError", "ResultCache",
           "classify_line"]

CACHE_SCHEMA = "repro.design-cache/1"

_RESULTS_NAME = "results.jsonl"
_INDEX_NAME = "index.json"
_LOCK_NAME = ".cache.lock"

#: Line classes shared by ``_load``, ``verify`` and ``fsck``.
LIVE = "live"
LEGACY = "legacy"
SKIPPED = "skipped"
CORRUPT = "corrupt"


class CacheLockedError(FileLockedError):
    """Another process holds the JSONL cache's exclusive writer lock."""


def classify_line(record: Any) -> str:
    """Classify one *parsed* journal line, uniformly for every auditor.

    ``corrupt``
        damaged: the CRC-32 checksum does not match (unparseable lines
        are classified ``corrupt`` by the caller before parsing);
    ``skipped``
        well-formed but foreign: not a dict, another schema, or no
        fingerprint — never served, but not damage either;
    ``legacy``
        a live pre-checksum record (no ``crc`` field);
    ``live``
        a good checksummed record.

    ``stats()``, ``verify()``, and ``fsck()`` all count through this
    one function, so ``repro cache verify`` and a freshly opened
    cache's ``stats()`` always agree on what a given line is.
    """
    if (not isinstance(record, dict)
            or record.get("schema") != CACHE_SCHEMA
            or not isinstance(record.get("fingerprint"), str)):
        return SKIPPED
    if "crc" not in record:
        return LEGACY
    return LIVE if verify_entry(record) else CORRUPT


class ResultCache:
    """A content-addressed verification-result store in one directory.

    Records are plain JSON dicts keyed by job fingerprint.  ``get`` and
    ``put`` count hits, misses, and stores so explorations can report
    exactly how much verification work the cache absorbed.

    ``durable=False`` skips the per-append ``fsync`` (tests, throwaway
    sweeps); everything else about the format is identical.

    Instances are context managers; ``close()`` (or leaving the
    ``with`` block) drops the append handle and the writer lock, after
    which the instance still serves reads and transparently re-locks on
    the next mutation.
    """

    def __init__(self, directory: str, *, durable: bool = True) -> None:
        self.directory = str(directory)
        self.durable = durable
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self._records: Dict[str, Dict[str, Any]] = {}
        self._skipped_lines = 0
        self._corrupt_lines = 0
        self._legacy_lines = 0
        self._loaded_bytes = 0
        self._fh = None
        self._lock_fd: Optional[int] = None
        os.makedirs(self.directory, exist_ok=True)
        self._load()
        has_state = (os.path.exists(self.results_path)
                     or os.path.exists(self.index_path))
        if has_state and not self._index_fresh():
            # Missing, stale, or corrupt snapshot: rebuild it from the
            # journal we just replayed (never raises on damage).  A
            # brand-new cache has nothing to snapshot yet.
            self.flush()

    @property
    def results_path(self) -> str:
        return os.path.join(self.directory, _RESULTS_NAME)

    @property
    def index_path(self) -> str:
        return os.path.join(self.directory, _INDEX_NAME)

    def _load(self) -> None:
        if not os.path.exists(self.results_path):
            return
        self._loaded_bytes = os.path.getsize(self.results_path)
        # errors="replace": undecodable bytes become U+FFFD, the line
        # then fails to parse or to checksum and is counted corrupt —
        # binary garbage in the journal must not abort the open.
        with open(self.results_path, "r", encoding="utf-8",
                  errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self._corrupt_lines += 1
                    continue
                kind = classify_line(record)
                if kind is CORRUPT:
                    self._corrupt_lines += 1
                elif kind is SKIPPED:
                    self._skipped_lines += 1
                else:
                    if kind is LEGACY:
                        self._legacy_lines += 1
                    # Last record per fingerprint wins (append-only
                    # updates).
                    self._records[record["fingerprint"]] = record

    def _reload(self) -> None:
        """Re-sync the in-memory view from the journal on disk."""
        self._records.clear()
        self._skipped_lines = 0
        self._corrupt_lines = 0
        self._legacy_lines = 0
        self._loaded_bytes = 0
        self._load()

    # -- the writer lock ---------------------------------------------------

    def _acquire_writer(self) -> None:
        """Take (or keep) this directory's exclusive writer lock.

        The JSONL backend is strictly single-writer.  The lock is held
        until :meth:`close`; a second concurrent writer gets a
        :class:`CacheLockedError` instead of interleaved appends or a
        compaction that silently drops its acknowledged records.  On a
        fresh acquisition the in-memory view is re-synced from disk, so
        records another (now closed) writer appended while this
        instance was unlocked survive a later :meth:`compact`.
        """
        if self._lock_fd is not None:
            return
        fd = os.open(os.path.join(self.directory, _LOCK_NAME),
                     os.O_RDWR | os.O_CREAT, 0o644)
        if not try_lock(fd):
            os.close(fd)
            raise CacheLockedError(self.results_path, "result cache journal")
        self._lock_fd = fd
        on_disk = (os.path.getsize(self.results_path)
                   if os.path.exists(self.results_path) else 0)
        if on_disk != self._loaded_bytes:
            self._reload()

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._records

    def items(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Live ``(fingerprint, record)`` pairs, sorted (uncounted)."""
        yield from sorted(self._records.items())

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The cached record for ``fingerprint``, or None (counted)."""
        record = self._records.get(fingerprint)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, fingerprint: str, record: Dict[str, Any]) -> Dict[str, Any]:
        """Store ``record`` under ``fingerprint``, durably.

        The schema, fingerprint, and checksum fields are stamped on;
        the caller's payload must be JSON-able.  The appended line is
        flushed and fsynced before this returns.  The first ``put``
        takes the writer lock (see :meth:`_acquire_writer`).
        """
        failpoints.hit("cache.put", token=fingerprint)
        self._acquire_writer()
        stamped = dict(record)
        stamped["schema"] = CACHE_SCHEMA
        stamped["fingerprint"] = fingerprint
        if self._fh is None or self._fh.closed:
            self._fh = open(self.results_path, "a", encoding="utf-8")
        append_entry(self._fh, stamped, durable=self.durable)
        self._loaded_bytes = os.path.getsize(self.results_path)
        self._records[fingerprint] = stamped
        self.stored += 1
        return stamped

    def flush(self) -> None:
        """Atomically rewrite the ``index.json`` snapshot.

        The snapshot is built in a uniquely named temp file
        (:func:`tempfile.mkstemp` in the cache directory) before the
        atomic ``os.replace`` — two processes flushing concurrently
        each publish a complete snapshot and the last replace wins,
        instead of interleaving writes through one shared temp path.
        """
        failpoints.hit("cache.index")
        index = {
            "schema": CACHE_SCHEMA,
            "records": len(self._records),
            "results_bytes": (os.path.getsize(self.results_path)
                              if os.path.exists(self.results_path) else 0),
            "fingerprints": sorted(self._records),
        }
        fd, tmp = tempfile.mkstemp(prefix=_INDEX_NAME + ".",
                                   suffix=".tmp", dir=self.directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(index, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _index_fresh(self) -> bool:
        """True when ``index.json`` parses and matches the journal."""
        try:
            with open(self.index_path, "r", encoding="utf-8") as fh:
                index = json.load(fh)
        except FileNotFoundError:
            return False
        except (ValueError, OSError):
            return False  # corrupt snapshot: caller rebuilds it
        if not isinstance(index, dict):
            return False
        return (index.get("schema") == CACHE_SCHEMA
                and index.get("records") == len(self._records)
                and index.get("fingerprints") == sorted(self._records))

    def _close_fh(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()

    def close(self) -> None:
        """Close the append handle and release the writer lock.

        The instance stays usable: reads keep serving the loaded view
        and the next mutation re-locks (re-syncing from disk first).
        """
        self._close_fh()
        if self._lock_fd is not None:
            unlock(self._lock_fd)
            os.close(self._lock_fd)
            self._lock_fd = None

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # backstop; close() is the contract
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    def verify(self) -> Dict[str, Any]:
        """Audit the journal and index; never raises on damage.

        Re-scans ``results.jsonl`` line by line through
        :func:`classify_line` — the same classifier ``stats()`` counts
        with, so the two always agree — plus *superseded* (an older
        record for a fingerprint that appears again later) and an index
        freshness check.  ``ok`` means no corrupt lines and a fresh
        index; skipped (foreign) lines are surfaced but are not
        damage.
        """
        lines = 0
        corrupt = 0
        skipped = 0
        legacy = 0
        last_for: Dict[str, int] = {}
        if os.path.exists(self.results_path):
            with open(self.results_path, "r", encoding="utf-8",
                      errors="replace") as fh:
                for line in fh:
                    raw = line.strip()
                    if not raw:
                        continue
                    lines += 1
                    try:
                        record = json.loads(raw)
                    except ValueError:
                        corrupt += 1
                        continue
                    kind = classify_line(record)
                    if kind is CORRUPT:
                        corrupt += 1
                        continue
                    if kind is SKIPPED:
                        skipped += 1
                        continue
                    if kind is LEGACY:
                        legacy += 1
                    last_for[record["fingerprint"]] = lines
        index_fresh = self._index_fresh()
        return {
            "backend": "jsonl",
            "records": len(last_for),
            "lines": lines,
            "superseded_lines": lines - corrupt - skipped - len(last_for),
            "corrupt_lines": corrupt,
            "skipped_lines": skipped,
            "legacy_lines": legacy,
            "index_fresh": index_fresh,
            "ok": corrupt == 0 and index_fresh,
        }

    def compact(self) -> Dict[str, int]:
        """Rewrite the journal to one live record per fingerprint.

        Runs under the writer lock: the view is first re-synced from
        disk (so another writer's acknowledged appends are never
        dropped), then the replacement is built in a uniquely named
        temp file, fsynced, and swapped in with an atomic
        ``os.replace`` — a crash at any point leaves either the old
        journal or the new one, never a mix.  Records are
        re-checksummed, so compaction also upgrades legacy lines.
        Returns the line counts before and after.
        """
        self._acquire_writer()
        self._close_fh()
        self._reload()
        before = 0
        if os.path.exists(self.results_path):
            with open(self.results_path, "r", encoding="utf-8",
                      errors="replace") as fh:
                before = sum(1 for line in fh if line.strip())
        fd, tmp = tempfile.mkstemp(prefix=_RESULTS_NAME + ".",
                                   suffix=".tmp", dir=self.directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                for fingerprint in sorted(self._records):
                    record = dict(self._records[fingerprint])
                    append_entry(fh, record, durable=False)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.results_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._loaded_bytes = os.path.getsize(self.results_path)
        self._skipped_lines = 0
        self._corrupt_lines = 0
        self._legacy_lines = 0
        self.flush()
        return {"before_lines": before, "after_lines": len(self._records)}

    def fsck(self) -> Dict[str, Any]:
        """Repair the journal in place; never serves a wrong verdict.

        Audits first (:meth:`verify`), then compacts: corrupt lines
        and foreign (skipped) lines are dropped, superseded records
        collapse to the newest, legacy records gain checksums, and the
        index snapshot is rebuilt.  Returns the audit counts plus what
        the rewrite dropped.  Like every mutation this takes the writer
        lock and fails loudly when another writer holds it.
        """
        audit = self.verify()
        outcome = self.compact()
        return {
            "backend": "jsonl",
            "before_lines": outcome["before_lines"],
            "after_lines": outcome["after_lines"],
            "dropped_corrupt": audit["corrupt_lines"],
            "dropped_skipped": audit["skipped_lines"],
            "dropped_superseded": audit["superseded_lines"],
            "repaired": audit["corrupt_lines"] + audit["skipped_lines"],
            "quarantined": None,
            "ok": True,
        }

    def stats(self) -> Dict[str, int]:
        """Hit/miss/store accounting since this cache was opened."""
        return {
            "backend": "jsonl",
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
            "records": len(self._records),
            "results_bytes": (os.path.getsize(self.results_path)
                              if os.path.exists(self.results_path) else 0),
            "skipped_lines": self._skipped_lines,
            "corrupt_lines": self._corrupt_lines,
            "legacy_lines": self._legacy_lines,
        }

    def __repr__(self) -> str:
        return (f"ResultCache({self.directory!r}, {len(self._records)} "
                f"records, {self.hits} hits / {self.misses} misses)")

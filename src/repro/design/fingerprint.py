"""Content fingerprints for verification jobs.

A verification *job* is fully determined by four ingredients: the
elaborated system (process definitions, wiring, channels, globals), the
properties checked against it, the exploration budget, and the checker
configuration.  :func:`fingerprint_job` hashes exactly those — nothing
else — so that:

* two structurally identical variants inside one exploration share a
  fingerprint and are verified once (within-run dedup);
* re-running an exploration after editing one connector changes only
  the fingerprints of the variants that elaborate differently, so the
  disk cache (:mod:`repro.design.cache`) re-verifies only those
  (cross-run incrementality);
* fused and composed elaborations of the same design hash differently
  (their process definitions differ), so a cached composed verdict can
  never be served for a fused job or vice versa.

Everything feeds through :func:`repro.psl.canon.digest_payload` —
sorted-keys JSON into SHA-256 — so fingerprints are independent of
``PYTHONHASHSEED``, dict insertion order, and object identity.

Property fingerprints deserve a note: a :class:`~repro.mc.props.Prop`
carries a Python callable, which has no portable content hash.  The
fingerprint uses the function's qualified name plus the prop's declared
dependencies — editing a predicate in place without renaming it will
*not* change the fingerprint, which is the standard content-addressing
compromise (same as build systems keying on declared inputs).  The
cache docs call this out as an invalidation rule.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Union

from ..mc.props import Prop
from ..psl.canon import digest_payload
from ..psl.system import System

__all__ = [
    "FINGERPRINT_SCHEMA",
    "fingerprint_prop",
    "fingerprint_system",
    "fingerprint_job",
]

#: Folded into every job hash; bump when the fingerprint shape changes
#: (all previously cached results then miss, which is the safe failure).
FINGERPRINT_SCHEMA = "repro.design-fingerprint/1"


def fingerprint_prop(prop: Prop) -> Dict[str, Any]:
    """The hash-relevant content of one atomic proposition."""
    fn = prop.fn
    return {
        "name": prop.name,
        "fn": f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}",
        "globals_read": (sorted(prop.globals_read)
                         if prop.globals_read is not None else None),
        "locals_read": (sorted(prop.locals_read)
                        if prop.locals_read is not None else None),
    }


def _system_payload(system: System) -> Dict[str, Any]:
    """The hash-relevant content of an elaborated system.

    Process definitions are deduplicated through their canonical
    digests; instances reference them by digest, so the payload size is
    proportional to distinct models, not instances.
    """
    system.finalize()
    digests: Dict[int, str] = {}
    for definition in system.definitions():
        digests[id(definition)] = definition.canonical_digest()
    return {
        "globals": sorted(
            [name, system.global_vars[name]] for name in system.global_vars
        ),
        "channels": [
            [ch.name, list(ch.fields), ch.capacity] for ch in system.channels
        ],
        "instances": [
            {
                "name": inst.name,
                "definition": digests[id(inst.definition)],
                "chans": sorted(
                    [param, chan.name]
                    for param, chan in inst.chan_bindings.items()
                ),
                "args": sorted(
                    [param, value]
                    for param, value in inst.value_bindings.items()
                ),
            }
            for inst in system.instances
        ],
    }


def fingerprint_system(system: System) -> str:
    """SHA-256 fingerprint of an elaborated system's structure."""
    return digest_payload(_system_payload(system), schema=FINGERPRINT_SCHEMA)


def fingerprint_job(
    system: System,
    *,
    invariants: Sequence[Prop] = (),
    check_deadlock: bool = True,
    goal: Optional[Prop] = None,
    ltl: Optional[str] = None,
    ltl_props: Optional[Union[Mapping[str, Prop], Sequence[Prop]]] = None,
    faults: Sequence[str] = (),
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
) -> str:
    """SHA-256 fingerprint of one complete verification job.

    ``faults`` names the resilience scenarios a surviving variant will
    additionally be swept under (scenario names, applied to this same
    system); budgets are part of the job because an ``UNKNOWN`` verdict
    under a small budget must not be served for a larger one.
    """
    if ltl_props is None:
        prop_list = []
    elif isinstance(ltl_props, Mapping):
        prop_list = [ltl_props[name] for name in sorted(ltl_props)]
    else:
        prop_list = sorted(ltl_props, key=lambda p: p.name)
    payload = {
        "system": _system_payload(system),
        "invariants": [fingerprint_prop(p) for p in invariants],
        "check_deadlock": bool(check_deadlock),
        "goal": fingerprint_prop(goal) if goal is not None else None,
        "ltl": ltl,
        "ltl_props": [fingerprint_prop(p) for p in prop_list],
        "faults": sorted(faults),
        "max_states": max_states,
        "max_seconds": max_seconds,
    }
    return digest_payload(payload, schema=FINGERPRINT_SCHEMA)

"""Test-only fault-injection points for the exploration runtime.

The chaos suite (``tests/chaos/``) needs to make the *platform* fail on
demand — kill a worker mid-job, raise during a cache append, stall a
job past its timeout — without patching private internals that may not
survive a process boundary.  This module provides named failpoints that
production code calls at its failure-prone seams; they are inert unless
the ``REPRO_FAILPOINTS`` environment variable selects them, so they
work identically in-process, across ``fork``, and across ``spawn``
(children inherit the environment either way).

Specification grammar (entries separated by ``;``)::

    REPRO_FAILPOINTS="<name>=<action>[:<arg>][@tok1,tok2];..."

Actions:

``kill``
    ``os._exit(KILL_EXIT_CODE)`` — an abrupt worker death that skips
    ``finally`` blocks and atexit handlers, exactly like an OOM kill.
``raise``
    Raise :class:`FailpointError` on the *arg*-th hit of this failpoint
    in the current process (default: the first).
``sleep``
    Sleep *arg* seconds (default 60) — used to trip per-job wall-clock
    timeouts.

A ``@tok1,tok2`` suffix restricts the action to calls whose ``token``
matches (tokens are compared as strings); with no suffix every call
triggers.  Failpoints sit only at job/cache boundaries, never in hot
loops — one environment lookup per verification job is noise.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

__all__ = ["ENV_VAR", "KILL_EXIT_CODE", "FailpointError", "hit"]

ENV_VAR = "REPRO_FAILPOINTS"

#: Exit status used by the ``kill`` action, distinctive enough that a
#: chaos test can tell an injected death from a real crash.
KILL_EXIT_CODE = 86

#: Per-process hit counters for the ``raise`` action.
_counters: Dict[str, int] = {}


class FailpointError(RuntimeError):
    """The error injected by a ``raise`` failpoint."""

    def __init__(self, name: str) -> None:
        super().__init__(f"injected failure at failpoint {name!r}")
        self.failpoint = name


def reset() -> None:
    """Forget the per-process ``raise`` hit counters (test isolation)."""
    _counters.clear()


def hit(name: str, token: Optional[object] = None) -> None:
    """Trigger failpoint ``name`` if the environment selects it.

    No-op (one env lookup) when ``REPRO_FAILPOINTS`` is unset or names
    other failpoints.
    """
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return
    for entry in spec.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        point, _, action = entry.partition("=")
        if point != name:
            continue
        action, _, tokens = action.partition("@")
        if tokens and str(token) not in tokens.split(","):
            continue
        verb, _, arg = action.partition(":")
        if verb == "kill":
            os._exit(KILL_EXIT_CODE)
        elif verb == "raise":
            nth = int(arg) if arg else 1
            count = _counters[name] = _counters.get(name, 0) + 1
            if count == nth:
                raise FailpointError(name)
        elif verb == "sleep":
            time.sleep(float(arg) if arg else 60.0)
        else:
            raise ValueError(f"unknown failpoint action {verb!r} in "
                             f"{ENV_VAR}={spec!r}")

"""Declarative design spaces: a base architecture plus variation axes.

The paper's pitch is that plug-and-play connectors make "experimenting
with alternative design choices of interaction semantics" cheap.  A
:class:`DesignSpace` makes the experiment itself the first-class
object: it names one or more base :class:`~repro.core.architecture.Architecture`
designs and, per connector, the *axes* along which the design may vary —
send-port kind, receive-port kind, channel kind (and with it capacity),
fused-vs-composed elaboration, and fault-injection wrappers.

Enumeration is deterministic: variants are produced in the axis order
the space declares them (last axis fastest, like ``itertools.product``),
bases outermost, and constraint predicates filter combinations *before*
indices are assigned.  Two runs of the same spec therefore see the same
variants with the same indices and names — which is what lets the
scheduler promise serial/parallel result equality and the cache promise
stable identity.

Every axis and variant is picklable (specs and architectures already
are, for the resilience sweeps), so variants ship to worker processes
as-is.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.architecture import Architecture
from ..core.channels import ChannelSpec
from ..core.ports import ReceivePortSpec, SendPortSpec
from ..core.resilience import FaultScenario

__all__ = [
    "Axis",
    "SendPortAxis",
    "ReceivePortAxis",
    "ChannelAxis",
    "EncodingAxis",
    "FaultAxis",
    "Variant",
    "DesignSpace",
    "DesignSpaceError",
]

COMPOSED = "composed"
FUSED = "fused"


class DesignSpaceError(ValueError):
    """Raised for ill-formed design spaces (empty axes, bad encodings)."""


@dataclass(frozen=True)
class SendPortAxis:
    """Vary the send-port kind on one connector.

    ``component=None`` swaps *every* send port of the connector (the
    paper's Figure 13 fix replaces all enter-request sends at once);
    naming a component (and, for multi-attachment components, a port)
    swaps just that attachment.
    """

    connector: str
    choices: Tuple[SendPortSpec, ...]
    component: Optional[str] = None
    port: Optional[str] = None
    label: Optional[str] = None

    def __init__(self, connector: str, choices: Sequence[SendPortSpec],
                 component: Optional[str] = None, port: Optional[str] = None,
                 label: Optional[str] = None) -> None:
        object.__setattr__(self, "connector", connector)
        object.__setattr__(self, "choices", tuple(choices))
        object.__setattr__(self, "component", component)
        object.__setattr__(self, "port", port)
        object.__setattr__(self, "label", label)

    @property
    def name(self) -> str:
        if self.label is not None:
            return self.label
        target = self.connector if self.component is None else (
            f"{self.connector}.{self.component}")
        return f"send[{target}]"

    def choice_label(self, choice: SendPortSpec) -> str:
        return choice.display_name()

    def apply(self, arch: Architecture, choice: SendPortSpec) -> None:
        if self.component is None:
            arch.connector(self.connector).swap_all_send_ports(choice)
        else:
            arch.swap_send_port(self.connector, self.component, choice,
                                self.port)

    def choice_cost(self, choice: SendPortSpec) -> float:
        return 0.0


@dataclass(frozen=True)
class ReceivePortAxis:
    """Vary the receive-port kind on one connector (see SendPortAxis)."""

    connector: str
    choices: Tuple[ReceivePortSpec, ...]
    component: Optional[str] = None
    port: Optional[str] = None
    label: Optional[str] = None

    def __init__(self, connector: str, choices: Sequence[ReceivePortSpec],
                 component: Optional[str] = None, port: Optional[str] = None,
                 label: Optional[str] = None) -> None:
        object.__setattr__(self, "connector", connector)
        object.__setattr__(self, "choices", tuple(choices))
        object.__setattr__(self, "component", component)
        object.__setattr__(self, "port", port)
        object.__setattr__(self, "label", label)

    @property
    def name(self) -> str:
        if self.label is not None:
            return self.label
        target = self.connector if self.component is None else (
            f"{self.connector}.{self.component}")
        return f"recv[{target}]"

    def choice_label(self, choice: ReceivePortSpec) -> str:
        return choice.display_name()

    def apply(self, arch: Architecture, choice: ReceivePortSpec) -> None:
        if self.component is None:
            arch.connector(self.connector).swap_all_receive_ports(choice)
        else:
            arch.swap_receive_port(self.connector, self.component, choice,
                                   self.port)

    def choice_cost(self, choice: ReceivePortSpec) -> float:
        return 0.0


@dataclass(frozen=True)
class ChannelAxis:
    """Vary the channel block (kind and capacity) of one connector."""

    connector: str
    choices: Tuple[ChannelSpec, ...]
    label: Optional[str] = None

    def __init__(self, connector: str, choices: Sequence[ChannelSpec],
                 label: Optional[str] = None) -> None:
        object.__setattr__(self, "connector", connector)
        object.__setattr__(self, "choices", tuple(choices))
        object.__setattr__(self, "label", label)

    @property
    def name(self) -> str:
        return self.label if self.label is not None else f"chan[{self.connector}]"

    def choice_label(self, choice: ChannelSpec) -> str:
        return choice.display_name()

    def apply(self, arch: Architecture, choice: ChannelSpec) -> None:
        arch.swap_channel(self.connector, choice)

    def choice_cost(self, choice: ChannelSpec) -> float:
        # Bigger buffers mean bigger state spaces; a rough but monotone
        # signal for the scheduler's cheapest-first ordering.
        return float(choice.capacity)


@dataclass(frozen=True)
class EncodingAxis:
    """Vary the connector elaboration: composed blocks vs fused process."""

    choices: Tuple[str, ...] = (COMPOSED, FUSED)
    label: Optional[str] = None

    def __init__(self, choices: Sequence[str] = (COMPOSED, FUSED),
                 label: Optional[str] = None) -> None:
        bad = set(choices) - {COMPOSED, FUSED}
        if bad:
            raise DesignSpaceError(
                f"EncodingAxis choices must be {COMPOSED!r}/{FUSED!r}, "
                f"got {sorted(bad)}")
        object.__setattr__(self, "choices", tuple(choices))
        object.__setattr__(self, "label", label)

    @property
    def name(self) -> str:
        return self.label if self.label is not None else "encoding"

    def choice_label(self, choice: str) -> str:
        return choice

    def apply(self, arch: Architecture, choice: str) -> None:
        pass  # consumed by Variant.fused, not an architecture edit

    def choice_cost(self, choice: str) -> float:
        # Fused connectors collapse port/channel interleavings: cheaper.
        return -0.5 if choice == FUSED else 0.0


@dataclass(frozen=True)
class FaultAxis:
    """Vary fault injection: each choice is a FaultScenario or None."""

    choices: Tuple[Optional[FaultScenario], ...]
    label: Optional[str] = None

    def __init__(self, choices: Sequence[Optional[FaultScenario]],
                 label: Optional[str] = None) -> None:
        object.__setattr__(self, "choices", tuple(choices))
        object.__setattr__(self, "label", label)

    @property
    def name(self) -> str:
        return self.label if self.label is not None else "fault"

    def choice_label(self, choice: Optional[FaultScenario]) -> str:
        return "none" if choice is None else choice.name

    def apply(self, arch: Architecture, choice: Optional[FaultScenario]) -> None:
        pass  # consumed by Variant.scenario (applied after all swaps)

    def choice_cost(self, choice: Optional[FaultScenario]) -> float:
        return 0.0 if choice is None else 0.25


Axis = Union[SendPortAxis, ReceivePortAxis, ChannelAxis, EncodingAxis,
             FaultAxis]


@dataclass(eq=False)
class Variant:
    """One point of a design space: a base plus one choice per axis.

    ``build()`` materializes the concrete architecture: a fresh copy of
    the base with every axis choice applied (fault scenarios last, so
    faults wrap the *chosen* blocks, not the base's).  The elaboration
    encoding travels separately in :attr:`fused` because it is an
    argument of ``Architecture.to_system``, not an architecture edit.
    """

    space: str
    index: int
    base_label: str
    base: Architecture
    choices: Tuple[Tuple[Axis, object], ...]
    fused: bool = False
    scenario: Optional[FaultScenario] = None

    @property
    def labels(self) -> Dict[str, str]:
        """Axis name -> chosen label (plus the base under ``"base"``)."""
        out = {"base": self.base_label}
        for axis, choice in self.choices:
            out[axis.name] = axis.choice_label(choice)
        return out

    @property
    def name(self) -> str:
        parts = [self.base_label] if self.base_label else []
        parts.extend(
            f"{axis.name}={axis.choice_label(choice)}"
            for axis, choice in self.choices
        )
        return "/".join(parts) or "(base)"

    def choice(self, axis_name: str) -> str:
        """The chosen label on the named axis (KeyError if absent)."""
        return self.labels[axis_name]

    def cost_hint(self) -> float:
        """A rough relative verification cost, for cheapest-first order."""
        return sum(axis.choice_cost(choice) for axis, choice in self.choices)

    def build(self) -> Architecture:
        arch = self.base.copy()
        for axis, choice in self.choices:
            axis.apply(arch, choice)
        if self.scenario is not None:
            arch = self.scenario.apply_to(arch)
        return arch


class DesignSpace:
    """A named space of design variants to explore.

    Parameters
    ----------
    name:
        Space name, used in reports and cache records.
    bases:
        A single base architecture, or a list of ``(label, architecture)``
        pairs when the space spans structurally different designs (e.g.
        the bridge's exactly-N and at-most-N shapes).
    axes:
        Variation axes, applied in declaration order.  Axes that name a
        connector absent from some base raise at enumeration time —
        constrain the space instead of relying on silent skips.
    constraints:
        Predicates over a :class:`Variant`; a variant survives only if
        every constraint returns True.  Use :meth:`Variant.choice` /
        :attr:`Variant.labels` to express cross-axis rules.
    fused:
        Default elaboration encoding for every variant (overridden per
        variant by an :class:`EncodingAxis` when the space has one).
    """

    def __init__(
        self,
        name: str,
        bases: Union[Architecture, Sequence[Tuple[str, Architecture]]],
        axes: Sequence[Axis] = (),
        constraints: Sequence[Callable[[Variant], bool]] = (),
        fused: bool = False,
    ) -> None:
        self.name = name
        if isinstance(bases, Architecture):
            self.bases: List[Tuple[str, Architecture]] = [("", bases)]
        else:
            self.bases = list(bases)
            if not self.bases:
                raise DesignSpaceError(f"space {name!r} has no base designs")
            labels = [label for label, _ in self.bases]
            if len(set(labels)) != len(labels):
                raise DesignSpaceError(
                    f"space {name!r} has duplicate base labels")
        self.axes: List[Axis] = list(axes)
        for axis in self.axes:
            if not axis.choices:
                raise DesignSpaceError(
                    f"space {name!r}: axis {axis.name!r} has no choices")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise DesignSpaceError(f"space {name!r} has duplicate axis names")
        self.constraints: List[Callable[[Variant], bool]] = list(constraints)
        self.fused = fused

    def _check_axes(self, label: str, base: Architecture) -> None:
        for axis in self.axes:
            connector = getattr(axis, "connector", None)
            if connector is not None and connector not in base.connectors:
                raise DesignSpaceError(
                    f"space {self.name!r}: axis {axis.name!r} names connector "
                    f"{connector!r}, absent from base {label or base.name!r}")

    def variants(self) -> List[Variant]:
        """Enumerate surviving variants, deterministically ordered.

        Bases vary outermost; each axis varies faster than the one
        declared before it.  Constraints filter before index assignment,
        so indices are dense and stable for a given spec.
        """
        out: List[Variant] = []
        for label, base in self.bases:
            self._check_axes(label, base)
            choice_lists = [
                [(axis, choice) for choice in axis.choices]
                for axis in self.axes
            ]
            for combo in itertools.product(*choice_lists):
                fused = self.fused
                scenario: Optional[FaultScenario] = None
                for axis, choice in combo:
                    if isinstance(axis, EncodingAxis):
                        fused = choice == FUSED
                    elif isinstance(axis, FaultAxis):
                        scenario = choice
                variant = Variant(
                    space=self.name,
                    index=len(out),
                    base_label=label,
                    base=base,
                    choices=tuple(combo),
                    fused=fused,
                    scenario=scenario,
                )
                if all(ok(variant) for ok in self.constraints):
                    variant.index = len(out)
                    out.append(variant)
        return out

    def __len__(self) -> int:
        return len(self.variants())

    def __repr__(self) -> str:
        return (f"DesignSpace({self.name!r}, {len(self.bases)} bases, "
                f"{len(self.axes)} axes)")

"""Service job specifications: JSON in, verification work out.

A *job* is the unit the verification service accepts over HTTP: a plain
JSON object naming what to verify and under which options.  This module
owns the whole lifecycle of that object short of scheduling:

* :func:`canonical_spec` validates a submission and fills defaults, so
  two requests that mean the same job serialize identically;
* :func:`build_job` elaborates the spec into architectures/systems and
  computes the job's **content fingerprint** — the coalescing and cache
  key;
* :func:`run_job` executes a spec to completion and returns the plain
  JSON *record* (verdict, exit code, full
  :class:`~repro.obs.report.RunReport` payload) that the shared cache
  stores and every attached client receives.

Fingerprints wrap the ``repro.design-fingerprint/1`` job scheme: a
``verify`` job hashes exactly what :func:`repro.design.fingerprint_job`
hashes for the same system/properties/budgets, re-wrapped under
``repro.serve-job/1`` so a serve record and an ``explore`` variant
record can never collide by shape in a shared cache directory.  An
``explore`` job hashes the sorted variant fingerprints of its design
space plus the early-exit policy.

Both the CLI (``repro verify gas``, ``repro submit gas``) and the
daemon build jobs through this module, which is what makes a served
verdict render the same report as a local run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core import ModelLibrary, verify_safety
from ..design.fingerprint import fingerprint_job
from ..mc.props import Prop
from ..obs.reporters import Reporter
from ..psl.canon import digest_payload

__all__ = [
    "JOB_SCHEMA",
    "JOB_KINDS",
    "VERIFY_SYSTEMS",
    "EXPLORE_SPACES",
    "BuiltJob",
    "JobSpecError",
    "build_job",
    "canonical_spec",
    "run_job",
]

#: Folded into every serve-job fingerprint (bump on record-shape change:
#: previously cached serve records then miss, the safe failure).
JOB_SCHEMA = "repro.serve-job/1"

JOB_KINDS = ("verify", "explore")
VERIFY_SYSTEMS = ("gas", "bridge", "abp")
EXPLORE_SPACES = ("bridge", "pc")


class JobSpecError(ValueError):
    """A submission does not describe a runnable job (HTTP 400)."""


def _opt_int(options: Dict[str, Any], key: str, default: Optional[int],
             minimum: Optional[int] = None) -> Optional[int]:
    value = options.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise JobSpecError(f"option {key!r} must be an integer, "
                           f"got {value!r}")
    if minimum is not None and value < minimum:
        raise JobSpecError(f"option {key!r} must be >= {minimum}, "
                           f"got {value}")
    return value


def _opt_number(options: Dict[str, Any], key: str) -> Optional[float]:
    value = options.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise JobSpecError(f"option {key!r} must be a number, got {value!r}")
    return float(value)


def _opt_bool(options: Dict[str, Any], key: str, default: bool) -> bool:
    value = options.get(key, default)
    if not isinstance(value, bool):
        raise JobSpecError(f"option {key!r} must be a boolean, got {value!r}")
    return value


def _opt_choice(options: Dict[str, Any], key: str, default: str,
                choices: Sequence[str]) -> str:
    value = options.get(key, default)
    if value not in choices:
        raise JobSpecError(f"option {key!r} must be one of {list(choices)}, "
                           f"got {value!r}")
    return value


def canonical_spec(spec: Any) -> Dict[str, Any]:
    """Validate a raw submission and return its canonical form.

    The canonical spec is a plain JSON object with every option present
    (defaults filled), unknown options rejected, so equal jobs have
    equal canonical specs regardless of how sparse the submission was.
    Raises :class:`JobSpecError` on anything unrunnable.
    """
    if not isinstance(spec, dict):
        raise JobSpecError(f"a job spec must be a JSON object, "
                           f"got {type(spec).__name__}")
    kind = spec.get("kind", "verify")
    if kind not in JOB_KINDS:
        raise JobSpecError(f"unknown job kind {kind!r} "
                           f"(expected one of {list(JOB_KINDS)})")
    options = spec.get("options", {})
    if not isinstance(options, dict):
        raise JobSpecError("'options' must be a JSON object")

    if kind == "verify":
        system = spec.get("system")
        if system not in VERIFY_SYSTEMS:
            raise JobSpecError(f"unknown system {system!r} "
                               f"(expected one of {list(VERIFY_SYSTEMS)})")
        out_options: Dict[str, Any] = {
            "max_states": _opt_int(options, "max_states", None, minimum=1),
            "max_seconds": _opt_number(options, "max_seconds"),
        }
        known = {"max_states", "max_seconds"}
        if system == "gas":
            out_options["customers"] = _opt_int(options, "customers", 2,
                                                minimum=1)
            out_options["selective"] = _opt_bool(options, "selective", False)
            known |= {"customers", "selective"}
        elif system == "bridge":
            out_options["variant"] = _opt_choice(
                options, "variant", "fixed", ("initial", "fixed", "atmostn"))
            out_options["cars"] = _opt_int(options, "cars", 1, minimum=1)
            out_options["n"] = _opt_int(options, "n", 1, minimum=1)
            out_options["trips"] = _opt_int(options, "trips", 1, minimum=0)
            known |= {"variant", "cars", "n", "trips"}
        unknown = set(options) - known
        if unknown:
            raise JobSpecError(f"unknown options for verify/{system}: "
                               f"{sorted(unknown)}")
        return {"kind": "verify", "system": system, "options": out_options}

    space = spec.get("space")
    if space not in EXPLORE_SPACES:
        raise JobSpecError(f"unknown design space {space!r} "
                           f"(expected one of {list(EXPLORE_SPACES)})")
    out_options = {
        "max_states": _opt_int(options, "max_states", None, minimum=1),
        "max_seconds": _opt_number(options, "max_seconds"),
        "first_pass": _opt_bool(options, "first_pass", False),
    }
    known = {"max_states", "max_seconds", "first_pass"}
    if space == "bridge":
        out_options["cars"] = _opt_int(options, "cars", 1, minimum=1)
        out_options["n"] = _opt_int(options, "n", 1, minimum=1)
        out_options["trips"] = _opt_int(options, "trips", 1, minimum=0)
        known |= {"cars", "n", "trips"}
    else:
        out_options["messages"] = _opt_int(options, "messages", 2, minimum=1)
        known |= {"messages"}
    unknown = set(options) - known
    if unknown:
        raise JobSpecError(f"unknown options for explore/{space}: "
                           f"{sorted(unknown)}")
    return {"kind": "explore", "space": space, "options": out_options}


@dataclass
class BuiltJob:
    """A canonical spec elaborated far enough to fingerprint and run."""

    kind: str
    spec: Dict[str, Any]
    fingerprint: str
    #: The underlying ``repro.design-fingerprint/1`` job fingerprints
    #: (one for a verify job, one per variant for an explore job).
    job_fingerprints: List[str]
    #: The equivalent local CLI invocation, recorded in the report.
    command: str
    #: Executes the job; wired by the builder so :func:`run_job` never
    #: re-elaborates.  Signature: ``runner(reporter, cache_dir)``.
    runner: Callable[[Optional[Reporter], Optional[str]],
                     Dict[str, Any]] = field(repr=False, default=None)


def _verify_pieces(spec: Dict[str, Any]) -> Tuple[Any, List[Prop], bool,
                                                  bool, str]:
    """(architecture, invariants, check_deadlock, expect_ok, command)."""
    system = spec["system"]
    options = spec["options"]
    if system == "gas":
        from ..systems.gas_station import build_gas_station
        arch = build_gas_station(customers=options["customers"],
                                 selective_delivery=options["selective"])
        command = (f"repro verify gas --customers {options['customers']}"
                   + (" --selective" if options["selective"] else ""))
        return arch, [], True, options["selective"], command
    if system == "bridge":
        from ..systems.bridge import (
            BridgeConfig,
            bridge_safety_prop,
            build_at_most_n_bridge,
            build_exactly_n_bridge,
            fix_exactly_n_bridge,
        )
        config = BridgeConfig(cars_per_side=options["cars"],
                              n_per_turn=options["n"],
                              trips=options["trips"])
        variant = options["variant"]
        if variant == "initial":
            arch = build_exactly_n_bridge(config)
        elif variant == "fixed":
            arch = fix_exactly_n_bridge(build_exactly_n_bridge(config))
        else:
            arch = build_at_most_n_bridge(config)
        command = (f"repro verify bridge --variant {variant} "
                   f"--cars {options['cars']} --n {options['n']} "
                   f"--trips {options['trips']}")
        return (arch, [bridge_safety_prop()], variant != "initial",
                variant != "initial", command)
    from ..systems.abp import build_abp
    arch = build_abp(messages=1, max_sends=2, receiver_polls=2)
    # Bounded polls terminate by design: termination is not a deadlock.
    return arch, [], False, True, "repro verify abp"


def _explore_pieces(spec: Dict[str, Any]):
    """(design space, explore kwargs, command) for an explore job."""
    options = spec["options"]
    if spec["space"] == "bridge":
        from ..systems.bridge import (
            BridgeConfig,
            bridge_design_space,
            bridge_fault_scenarios,
            bridge_safety_prop,
        )
        space = bridge_design_space(BridgeConfig(
            cars_per_side=options["cars"], n_per_turn=options["n"],
            trips=options["trips"]))
        kwargs = {
            "invariants": [bridge_safety_prop()],
            "faults": bridge_fault_scenarios(),
        }
        command = (f"repro explore bridge --cars {options['cars']} "
                   f"--n {options['n']} --trips {options['trips']}")
    else:
        from ..cli import _pc_space
        space = _pc_space(options["messages"])
        kwargs = {}
        command = f"repro explore pc --messages {options['messages']}"
    if options["first_pass"]:
        command += " --first-pass"
    return space, kwargs, command


def _verify_record(spec: Dict[str, Any], built: "BuiltJob",
                   arch, invariants: Sequence[Prop], check_deadlock: bool,
                   expect_ok: bool,
                   reporter: Optional[Reporter]) -> Dict[str, Any]:
    from ..obs.report import RunReport

    options = spec["options"]
    t0 = time.perf_counter()
    report = verify_safety(
        arch,
        invariants=invariants,
        check_deadlock=check_deadlock,
        fused=True,
        max_states=options["max_states"],
        max_seconds=options["max_seconds"],
        reporter=reporter,
    )
    seconds = time.perf_counter() - t0
    result = report.result
    system = arch.to_system(fused=True)
    run = RunReport.from_verification(arch, system, result,
                                      command=built.command)
    if result.incomplete:
        verdict, exit_code = "INCOMPLETE", 2
    elif not result.ok:
        verdict, exit_code = "FAIL", 0 if not expect_ok else 1
    else:
        verdict, exit_code = "PASS", 0 if expect_ok else 1
    detail = result.message
    if verdict != "INCOMPLETE" and (result.ok != expect_ok):
        detail = f"unexpected outcome: {result.message}"
    return {
        "kind": "verify",
        "spec": spec,
        "verdict": verdict,
        "ok": result.ok,
        "expected": expect_ok,
        "exit_code": exit_code,
        "detail": detail,
        "states": result.stats.states_stored,
        "seconds": round(seconds, 6),
        "report": run.payload,
    }


def _explore_record(spec: Dict[str, Any], built: "BuiltJob", space, kwargs,
                    reporter: Optional[Reporter],
                    cache_dir: Optional[str]) -> Dict[str, Any]:
    from ..design import EXHAUSTIVE, FIRST_PASS, explore, open_cache
    from ..design.scheduler import PASS

    options = spec["options"]
    cache = None
    if cache_dir is not None:
        # The service's shared store: variant verdicts land in the same
        # sqlite/WAL cache the daemon answers warm submissions from.
        cache = open_cache(cache_dir, backend="sqlite")
    t0 = time.perf_counter()
    report = explore(
        space,
        cache=cache,
        max_states=options["max_states"],
        max_seconds=options["max_seconds"],
        policy=FIRST_PASS if options["first_pass"] else EXHAUSTIVE,
        reporter=reporter,
        **kwargs,
    )
    seconds = time.perf_counter() - t0
    run = report.to_run_report(command=built.command)
    if report.interrupted or report.any_budget_hit or report.failures:
        verdict, exit_code = "INCOMPLETE", 2
    elif report.any_pass:
        verdict, exit_code = "PASS", 0
    else:
        verdict, exit_code = "FAIL", 1
    best = report.best["variant"] if report.best else None
    passed = sum(1 for r in report.results if r["verdict"] == PASS)
    return {
        "kind": "explore",
        "spec": spec,
        "verdict": verdict,
        "ok": report.any_pass,
        "expected": True,
        "exit_code": exit_code,
        "detail": (f"{passed}/{len(report.results)} variants pass"
                   + (f"; best {best}" if best else "")),
        "states": sum(r.get("states") or 0 for r in report.results),
        "seconds": round(seconds, 6),
        "report": run.payload,
    }


def build_job(spec: Any) -> BuiltJob:
    """Canonicalize, elaborate, and fingerprint a job (without running it).

    Elaboration through a fresh :class:`ModelLibrary` is cheap next to
    verification; the expensive part — state-space exploration — happens
    only in :func:`run_job` (equivalently, ``built.runner(...)``).
    """
    spec = canonical_spec(spec)
    library = ModelLibrary()
    options = spec["options"]
    if spec["kind"] == "verify":
        arch, invariants, check_deadlock, expect_ok, command = \
            _verify_pieces(spec)
        system = arch.to_system(library, fused=True)
        inner = fingerprint_job(
            system, invariants=invariants, check_deadlock=check_deadlock,
            max_states=options["max_states"],
            max_seconds=options["max_seconds"],
        )
        fingerprint = digest_payload({"kind": "verify", "job": inner},
                                     schema=JOB_SCHEMA)
        built = BuiltJob(kind="verify", spec=spec, fingerprint=fingerprint,
                         job_fingerprints=[inner], command=command)

        def runner(reporter: Optional[Reporter],
                   cache_dir: Optional[str]) -> Dict[str, Any]:
            return _verify_record(spec, built, arch, invariants,
                                  check_deadlock, expect_ok, reporter)

        built.runner = runner
        return built

    space, kwargs, command = _explore_pieces(spec)
    from ..core.resilience import _as_scenario
    scenarios = tuple(_as_scenario(f) for f in kwargs.get("faults", ()))
    fault_names = [f"{s.name}={s.describe()}" for s in scenarios]
    inner_fps = []
    for variant in space.variants():
        vsystem = variant.build().to_system(library, fused=variant.fused)
        inner_fps.append(fingerprint_job(
            vsystem, invariants=kwargs.get("invariants", ()),
            check_deadlock=True, faults=fault_names,
            max_states=options["max_states"],
            max_seconds=options["max_seconds"],
        ))
    policy = "first_pass" if options["first_pass"] else "exhaustive"
    fingerprint = digest_payload(
        {"kind": "explore", "space": space.name, "policy": policy,
         "variants": sorted(inner_fps)},
        schema=JOB_SCHEMA)
    built = BuiltJob(kind="explore", spec=spec, fingerprint=fingerprint,
                     job_fingerprints=inner_fps, command=command)

    def runner(reporter: Optional[Reporter],
               cache_dir: Optional[str]) -> Dict[str, Any]:
        return _explore_record(spec, built, space, kwargs, reporter,
                               cache_dir)

    built.runner = runner
    return built


def run_job(spec: Any, *, reporter: Optional[Reporter] = None,
            cache_dir: Optional[str] = None) -> Dict[str, Any]:
    """Execute a job spec to completion and return its verdict record.

    The record is plain JSON: verdict (PASS / FAIL / INCOMPLETE), the
    CLI-compatible exit code, timing, and the full run-report payload —
    exactly what the service caches by fingerprint and what every
    coalesced client receives.  ``cache_dir`` (explore jobs only) points
    the variant-level verdict cache at the service's shared store.
    """
    built = build_job(spec)
    return built.runner(reporter, cache_dir)

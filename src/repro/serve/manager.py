"""The service scheduler: coalescing, caching, supervision, recovery.

:class:`JobManager` is the daemon's brain, deliberately HTTP-free so it
tests without sockets.  It owns:

* **the shared verdict store** — the sqlite/WAL
  :class:`~repro.design.backend.CacheBackend` every computed record
  lands in, keyed by the job's ``repro.serve-job/1`` fingerprint.  A
  submission whose fingerprint is already stored is answered
  immediately (*warm hit*).  sqlite connections are bound to their
  creating thread, so the manager keeps one handle per thread
  (``threading.local``) over the same WAL directory;
* **cross-request coalescing** — one ``fingerprint -> primary job``
  map.  A submission identical to an in-flight job *attaches* to it
  instead of spawning a duplicate computation; when the primary
  finishes, every attached job resolves with the same record;
* **the worker pool** — N threads pulling queued jobs.  In supervised
  mode (the default) each job runs in a sandbox process under
  :class:`~repro.design.supervise.SupervisedPool`, so a segfaulting or
  hung checker is classified and retried per
  :class:`~repro.design.supervise.RetryPolicy` instead of taking the
  daemon down.  Inline mode (``supervised=False``) runs jobs on the
  worker thread itself — faster to start, used by tests;
* **the journal** — every job persists ``job.json`` atomically on each
  state change under ``<state_dir>/jobs/<id>/``, next to its
  ``events.jsonl`` stream.  A manager opened on an existing state
  directory re-enqueues every non-terminal job (journal-for-resume:
  the drain path leaves unstarted jobs queued on disk).

The ``serve.run`` failpoint fires in the compute path (the worker
child in supervised mode, the worker thread inline), so chaos tests
can hold a job mid-flight (``REPRO_FAILPOINTS=serve.run=sleep:2``) to
pin the coalescing window, or kill a supervised worker to exercise
crash attribution end-to-end over HTTP.
"""

from __future__ import annotations

import json
import os
import pickle
import queue
import threading
import time
import uuid
from typing import Any, Dict, List, Optional

from ..design import failpoints
from ..design.backend import detect_backend, open_cache
from ..design.supervise import CAUSE_EXCEPTION, RetryPolicy, SupervisedPool
from ..obs import events as obs_events
from ..obs.reporters import DEFAULT_INTERVAL, JsonlReporter
from .jobs import build_job, run_job

__all__ = [
    "JobManager",
    "ServeError",
    "DrainingError",
    "STATUS_QUEUED",
    "STATUS_RUNNING",
    "STATUS_DONE",
    "STATUS_FAILED",
    "TERMINAL_STATUSES",
]

STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"
TERMINAL_STATUSES = frozenset({STATUS_DONE, STATUS_FAILED})

#: Keys the cache backend stamps onto stored records; stripped before a
#: cached record is served so warm and computed responses are identical.
_CACHE_STAMPS = ("schema", "fingerprint", "crc")


class ServeError(RuntimeError):
    """The service cannot run as configured (bad cache backend, ...)."""


class DrainingError(ServeError):
    """A submission arrived after drain began (HTTP 503)."""


def _serve_job_task(payload: bytes) -> Dict[str, Any]:
    """Supervised-worker entry point: run one service job in a sandbox.

    The child appends its engine events *live* to the job's
    ``events.jsonl`` (per-event flush), which is what the daemon's
    streaming endpoint tails — a client watches verification progress
    while the state space is still being explored.
    """
    spec, events_path, cache_dir, interval = pickle.loads(payload)
    failpoints.hit("serve.run", token=spec.get("system") or spec.get("space"))
    reporter = JsonlReporter(events_path, interval=interval)
    try:
        return run_job(spec, reporter=reporter, cache_dir=cache_dir)
    finally:
        reporter.close()


class _Job:
    """In-memory state of one submission (views are plain dicts)."""

    __slots__ = ("id", "kind", "spec", "fingerprint", "command", "status",
                 "submitted_at", "started_at", "finished_at", "cached",
                 "coalesced_with", "attached", "record", "error", "done")

    def __init__(self, job_id: str, kind: str, spec: Dict[str, Any],
                 fingerprint: str, command: str, submitted_at: float) -> None:
        self.id = job_id
        self.kind = kind
        self.spec = spec
        self.fingerprint = fingerprint
        self.command = command
        self.status = STATUS_QUEUED
        self.submitted_at = submitted_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.cached = False
        self.coalesced_with: Optional[str] = None
        self.attached: List[str] = []
        self.record: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.done = threading.Event()


class JobManager:
    """Schedules service jobs over a shared verdict store.

    ``cache_dir`` must hold (or be fresh enough to get) the sqlite/WAL
    backend — the only one safe under the daemon's many threads and
    sandbox processes; a JSONL cache directory is refused with a
    pointer at ``repro cache migrate``.  Service state (job journal +
    event streams) lives under ``<cache_dir>/serve`` unless
    ``state_dir`` says otherwise.
    """

    def __init__(self, cache_dir: str, *, state_dir: Optional[str] = None,
                 workers: int = 2, supervised: bool = True,
                 retry: Optional[RetryPolicy] = None,
                 job_timeout: Optional[float] = None,
                 interval: int = DEFAULT_INTERVAL) -> None:
        self._cache_dir = str(cache_dir)
        os.makedirs(self._cache_dir, exist_ok=True)
        backend = detect_backend(self._cache_dir)
        if backend != "sqlite":
            raise ServeError(
                f"the verification service requires the sqlite cache "
                f"backend, but {self._cache_dir!r} holds a {backend} cache "
                f"(single-writer); run 'repro cache migrate "
                f"--cache-dir {self._cache_dir}' first")
        self.state_dir = state_dir or os.path.join(self._cache_dir, "serve")
        self._jobs_dir = os.path.join(self.state_dir, "jobs")
        os.makedirs(self._jobs_dir, exist_ok=True)
        self.workers = max(1, int(workers))
        self.supervised = supervised
        self.retry = retry if retry is not None else RetryPolicy()
        self.job_timeout = job_timeout
        self.interval = interval

        self._lock = threading.Lock()
        self._tls = threading.local()
        self._jobs: Dict[str, _Job] = {}
        self._inflight: Dict[str, str] = {}  # fingerprint -> primary job id
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._draining = False
        self._stop_starting = threading.Event()
        self._skipped_on_drain: List[str] = []
        self.counters: Dict[str, int] = {
            "submitted": 0, "cache_hits": 0, "coalesced": 0,
            "computed": 0, "failed": 0, "recovered": 0,
        }

        self._recover()
        self._threads = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"serve-worker-{i}")
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- cache handles ----------------------------------------------------

    def _cache(self):
        """This thread's handle on the shared sqlite/WAL store."""
        cache = getattr(self._tls, "cache", None)
        if cache is None:
            cache = open_cache(self._cache_dir, backend="sqlite")
            self._tls.cache = cache
        return cache

    # -- submission (HTTP handler threads) --------------------------------

    def submit(self, spec: Any) -> Dict[str, Any]:
        """Accept one job submission; returns its view immediately.

        Resolution order: warm cache hit (terminal at once), coalesce
        onto an identical in-flight job, or enqueue a new computation.
        Raises :class:`~repro.serve.jobs.JobSpecError` on a bad spec
        and :class:`DrainingError` once drain has begun.
        """
        if self._draining:
            raise DrainingError("the service is draining; "
                                "no new submissions accepted")
        built = build_job(spec)
        now = time.time()
        record = self._cache().get(built.fingerprint)
        with self._lock:
            if self._draining:
                raise DrainingError("the service is draining; "
                                    "no new submissions accepted")
            self.counters["submitted"] += 1
            job = _Job(self._new_id(), built.kind, built.spec,
                       built.fingerprint, built.command, now)
            self._jobs[job.id] = job

            if record is not None:
                clean = dict(record)
                for key in _CACHE_STAMPS:
                    clean.pop(key, None)
                job.record = clean
                job.cached = True
                job.status = STATUS_DONE
                job.started_at = job.finished_at = now
                self.counters["cache_hits"] += 1
                self._append_event(job, obs_events.job_queued(
                    job.id, kind=job.kind, fingerprint=job.fingerprint,
                    cached=True))
                self._append_event(job, obs_events.job_finished(
                    job.id, verdict=clean.get("verdict", "ERROR"),
                    seconds=0.0, cached=True,
                    exit_code=clean.get("exit_code", 3)))
                self._persist(job)
                job.done.set()
                return self._view(job)

            primary_id = self._inflight.get(built.fingerprint)
            if primary_id is not None:
                primary = self._jobs[primary_id]
                job.coalesced_with = primary_id
                job.status = primary.status
                primary.attached.append(job.id)
                self.counters["coalesced"] += 1
                self._append_event(job, obs_events.job_queued(
                    job.id, kind=job.kind, fingerprint=job.fingerprint,
                    coalesced=True))
                self._persist(job)
                return self._view(job)

            self._inflight[built.fingerprint] = job.id
            self._append_event(job, obs_events.job_queued(
                job.id, kind=job.kind, fingerprint=job.fingerprint))
            self._persist(job)
            self._queue.put(job.id)
            return self._view(job)

    def job(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            job = self._jobs.get(job_id)
            return None if job is None else self._view(job)

    def jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            ordered = sorted(self._jobs.values(),
                             key=lambda j: (j.submitted_at, j.id))
            return [self._view(j) for j in ordered]

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Block until the job is terminal (or ``timeout``); its view."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return None
        job.done.wait(timeout)
        with self._lock:
            return self._view(job)

    def report(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The job's full run-report payload, once it is done."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.record is None:
                return None
            return job.record.get("report")

    def events_path(self, job_id: str) -> Optional[str]:
        """Path of the job's NDJSON event stream (its own, always)."""
        with self._lock:
            if job_id not in self._jobs:
                return None
        return os.path.join(self._jobs_dir, job_id, "events.jsonl")

    def is_terminal(self, job_id: str) -> bool:
        with self._lock:
            job = self._jobs.get(job_id)
            return job is not None and job.status in TERMINAL_STATUSES

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            by_status: Dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            counters = dict(self.counters)
            inflight = len(self._inflight)
            draining = self._draining
        cache_stats = self._cache().stats()
        return {
            "counters": counters,
            "jobs": by_status,
            "inflight": inflight,
            "draining": draining,
            "workers": self.workers,
            "supervised": self.supervised,
            "cache": {
                "backend": cache_stats.get("backend"),
                "records": cache_stats.get("records"),
                "results_bytes": cache_stats.get("results_bytes"),
            },
        }

    # -- drain / shutdown -------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Stop accepting work; wait for in-flight jobs to finish.

        Jobs still running (or queued) when ``timeout`` expires are
        journaled for resume: workers stop starting queued jobs, their
        ``job.json`` stays non-terminal on disk, and the next manager
        on this state directory re-enqueues them.  Returns a summary;
        ``drained`` is True only if nothing was left behind.
        """
        with self._lock:
            self._draining = True
            active = [j for j in self._jobs.values()
                      if j.status not in TERMINAL_STATUSES]
            running = sum(1 for j in active if j.status == STATUS_RUNNING)
            self._append_server_event(obs_events.server_drain(
                running=running, queued=len(active) - running))
        deadline = None if timeout is None else time.monotonic() + timeout
        for job in active:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            job.done.wait(remaining)
        self._stop_starting.set()
        with self._lock:
            leftover = sorted(j.id for j in active
                              if j.status not in TERMINAL_STATUSES)
        return {
            "drained": not leftover,
            "finished": len(active) - len(leftover),
            "leftover": leftover,
        }

    def close(self) -> None:
        """Stop the worker threads (does not wait for queued jobs)."""
        self._stop_starting.set()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)

    # -- worker side ------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            if self._stop_starting.is_set():
                # Journal-for-resume: the job's queued job.json stays on
                # disk; the next manager on this state dir re-enqueues.
                with self._lock:
                    self._skipped_on_drain.append(job_id)
                continue
            try:
                self._execute(job_id)
            except Exception as exc:  # defensive: a worker never dies
                self._finalize(job_id, error=f"internal error: {exc!r}",
                               seconds=0.0)

    def _execute(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs[job_id]
            now = time.time()
            job.status = STATUS_RUNNING
            job.started_at = now
            for aid in job.attached:
                attached = self._jobs[aid]
                attached.status = STATUS_RUNNING
                attached.started_at = now
                self._persist(attached)
            self._append_event(job, obs_events.job_started(
                job.id, kind=job.kind, fingerprint=job.fingerprint))
            self._persist(job)
        events_path = os.path.join(self._jobs_dir, job.id, "events.jsonl")
        t0 = time.monotonic()
        record: Optional[Dict[str, Any]] = None
        error: Optional[str] = None
        if self.supervised:
            payload = pickle.dumps((job.spec, events_path, self._cache_dir,
                                    self.interval))
            pool = SupervisedPool(1, timeout=self.job_timeout,
                                  retry=self.retry)
            outcomes = pool.run(_serve_job_task, [payload], keys=[job.id])
            outcome = outcomes[0] if outcomes else None
            if outcome is not None and outcome.ok:
                record = outcome.result
            elif outcome is not None:
                error = outcome.failure.describe()
            else:  # pragma: no cover - stop never set here
                error = "supervision returned no outcome"
        else:
            record, error = self._run_inline(job, events_path)
        seconds = time.monotonic() - t0
        if record is not None:
            self._cache().put(job.fingerprint, dict(record))
        self._finalize(job_id, record=record, error=error, seconds=seconds)

    def _run_inline(self, job: _Job, events_path: str):
        """Run the job on this worker thread, with exception retries.

        Inline mode trades the sandbox for speed: ``serve.run=raise``
        failpoints and checker exceptions are still retried per the
        policy, but a ``kill`` failpoint would take the daemon with it
        — chaos kill tests require supervised mode.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                failpoints.hit("serve.run",
                               token=job.spec.get("system")
                               or job.spec.get("space"))
                reporter = JsonlReporter(events_path, interval=self.interval)
                try:
                    return run_job(job.spec, reporter=reporter,
                                   cache_dir=self._cache_dir), None
                finally:
                    reporter.close()
            except Exception as exc:
                if self.retry.should_retry(CAUSE_EXCEPTION, attempt):
                    time.sleep(self.retry.backoff(attempt, seed=job.id))
                    continue
                return None, (f"{CAUSE_EXCEPTION} after {attempt} "
                              f"attempt{'s' if attempt != 1 else ''}: {exc}")

    def _finalize(self, job_id: str, *, record: Optional[Dict[str, Any]]
                  = None, error: Optional[str] = None,
                  seconds: float = 0.0) -> None:
        with self._lock:
            job = self._jobs[job_id]
            now = time.time()
            job.finished_at = now
            job.record = record
            job.error = error
            job.status = STATUS_DONE if record is not None else STATUS_FAILED
            if record is not None:
                self.counters["computed"] += 1
            else:
                self.counters["failed"] += 1
            verdict = (record.get("verdict", "ERROR") if record is not None
                       else "ERROR")
            exit_code = (record.get("exit_code", 3) if record is not None
                         else 3)
            self._append_event(job, obs_events.job_finished(
                job.id, verdict=verdict, seconds=seconds,
                exit_code=exit_code))
            self._persist(job)
            attached_jobs = [self._jobs[aid] for aid in job.attached]
            for attached in attached_jobs:
                attached.record = record
                attached.error = error
                attached.status = job.status
                attached.finished_at = now
                self._append_event(attached, obs_events.job_finished(
                    attached.id, verdict=verdict, seconds=seconds,
                    coalesced=True, exit_code=exit_code))
                self._persist(attached)
            self._inflight.pop(job.fingerprint, None)
        job.done.set()
        for attached in attached_jobs:
            attached.done.set()

    # -- persistence / recovery -------------------------------------------

    def _new_id(self) -> str:
        return "j" + uuid.uuid4().hex[:12]

    def _job_dir(self, job_id: str) -> str:
        path = os.path.join(self._jobs_dir, job_id)
        os.makedirs(path, exist_ok=True)
        return path

    def _view(self, job: _Job) -> Dict[str, Any]:
        record = job.record
        view: Dict[str, Any] = {
            "job_id": job.id,
            "kind": job.kind,
            "status": job.status,
            "fingerprint": job.fingerprint,
            "spec": job.spec,
            "command": job.command,
            "submitted_at": job.submitted_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
            "cached": job.cached,
            "coalesced_with": job.coalesced_with,
            "verdict": None,
            "exit_code": None,
            "detail": None,
            "error": job.error,
        }
        if record is not None:
            view["verdict"] = record.get("verdict")
            view["exit_code"] = record.get("exit_code")
            view["detail"] = record.get("detail")
        elif job.status == STATUS_FAILED:
            view["verdict"] = "ERROR"
            view["exit_code"] = 3
            view["detail"] = job.error
        return view

    def _persist(self, job: _Job) -> None:
        """Atomically journal the job's state (view + record) to disk."""
        state = self._view(job)
        state["record"] = job.record
        path = os.path.join(self._job_dir(job.id), "job.json")
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(state, fh, sort_keys=True, separators=(",", ":"))
        os.replace(tmp, path)

    def _append_event(self, job: _Job, event) -> None:
        self._append_line(os.path.join(self._job_dir(job.id),
                                       "events.jsonl"), event)

    def _append_server_event(self, event) -> None:
        self._append_line(os.path.join(self.state_dir, "server.jsonl"),
                          event)

    @staticmethod
    def _append_line(path: str, event) -> None:
        # Same line format as JsonlReporter, so a job's stream mixes
        # parent lifecycle events and child engine events seamlessly.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(event.to_dict(), sort_keys=True,
                                separators=(",", ":")) + "\n")
            fh.flush()

    def _recover(self) -> None:
        """Reload journaled jobs; re-enqueue every non-terminal one.

        Terminal jobs come back queryable (status/report endpoints
        survive a restart); queued/running jobs are resubmitted through
        the normal path, so duplicates re-coalesce and warm verdicts
        (a job that finished between crash and restart) hit the cache.
        """
        try:
            entries = sorted(os.listdir(self._jobs_dir))
        except OSError:
            return
        pending: List[Dict[str, Any]] = []
        for name in entries:
            path = os.path.join(self._jobs_dir, name, "job.json")
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    state = json.load(fh)
            except (OSError, ValueError):
                continue
            job_id = state.get("job_id") or name
            job = _Job(job_id, state.get("kind", "verify"),
                       state.get("spec") or {},
                       state.get("fingerprint", ""),
                       state.get("command", ""),
                       state.get("submitted_at") or 0.0)
            job.started_at = state.get("started_at")
            job.finished_at = state.get("finished_at")
            job.cached = bool(state.get("cached"))
            job.coalesced_with = state.get("coalesced_with")
            job.record = state.get("record")
            job.error = state.get("error")
            status = state.get("status", STATUS_QUEUED)
            if status in TERMINAL_STATUSES:
                job.status = status
                job.done.set()
                self._jobs[job.id] = job
            else:
                pending.append(state)
        for state in sorted(pending,
                            key=lambda s: s.get("submitted_at") or 0.0):
            job_id = state.get("job_id")
            spec = state.get("spec")
            if not job_id or not isinstance(spec, dict):
                continue
            self._requeue(job_id, spec, state)

    def _requeue(self, job_id: str, spec: Dict[str, Any],
                 state: Dict[str, Any]) -> None:
        """Resubmit one journaled job under its original id."""
        try:
            built = build_job(spec)
        except Exception:
            return
        record = self._cache().get(built.fingerprint)
        job = _Job(job_id, built.kind, built.spec, built.fingerprint,
                   built.command, state.get("submitted_at") or time.time())
        self._jobs[job.id] = job
        self.counters["recovered"] += 1
        if record is not None:
            clean = dict(record)
            for key in _CACHE_STAMPS:
                clean.pop(key, None)
            job.record = clean
            job.cached = True
            job.status = STATUS_DONE
            job.finished_at = time.time()
            self.counters["cache_hits"] += 1
            self._persist(job)
            job.done.set()
            return
        primary_id = self._inflight.get(built.fingerprint)
        if primary_id is not None:
            job.coalesced_with = primary_id
            self._jobs[primary_id].attached.append(job.id)
            self.counters["coalesced"] += 1
            self._persist(job)
            return
        job.status = STATUS_QUEUED
        self._inflight[built.fingerprint] = job.id
        self._persist(job)
        self._queue.put(job.id)

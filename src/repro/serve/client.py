"""Stdlib client for the verification service.

:class:`ServeClient` speaks the daemon's JSON protocol with nothing but
``http.client``: submit jobs, poll or block on their views, iterate the
live NDJSON event stream, and fetch the finished run-report payload —
which renders through :class:`~repro.obs.report.RunReport` exactly like
a local run's.  The ``repro submit`` / ``repro status`` CLI commands
are thin wrappers over this class; tests drive it directly.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Any, Dict, Iterator, List, Optional
from urllib.parse import urlsplit

__all__ = ["ServeClient", "ServiceError", "poll_until_running"]

DEFAULT_URL = "http://127.0.0.1:7477"


class ServiceError(RuntimeError):
    """The service answered with an error (carries the HTTP status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """One verification-service endpoint.

    Each call opens its own connection (the daemon handles requests on
    per-connection threads; streams hold theirs open), so a client is
    safe to share across threads.
    """

    def __init__(self, url: str = DEFAULT_URL, *,
                 timeout: float = 30.0) -> None:
        split = urlsplit(url if "//" in url else "//" + url)
        if split.scheme not in ("", "http"):
            raise ValueError(f"only http:// service URLs are supported, "
                             f"got {url!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 7477
        self.timeout = timeout

    # -- transport --------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 timeout: Optional[float] = None) -> Dict[str, Any]:
        conn = HTTPConnection(self.host, self.port,
                              timeout=timeout or self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, ValueError):
                data = {}
            if response.status >= 400:
                raise ServiceError(response.status,
                                   data.get("error") or raw.decode(
                                       "utf-8", "replace")[:200])
            return data
        finally:
            conn.close()

    # -- API --------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/jobs").get("jobs", [])

    def submit(self, spec: Dict[str, Any], *, wait: bool = False,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        """Submit one job spec; returns the job view.

        With ``wait=True`` the daemon blocks the request until the job
        is terminal (bounded by ``timeout`` seconds), so the returned
        view already carries the verdict and exit code.
        """
        body = dict(spec)
        if wait:
            body["wait"] = True
            if timeout is not None:
                body["timeout"] = timeout
        request_timeout = None
        if wait:
            # The HTTP timeout must outlive the job, not the default.
            request_timeout = (timeout + 10.0) if timeout else 24 * 3600.0
        return self._request("POST", "/v1/jobs", body,
                             timeout=request_timeout)["job"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def wait(self, job_id: str, *, timeout: Optional[float] = None,
             poll: float = 0.05) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final view."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["status"] in ("done", "failed"):
                return view
            if deadline is not None and time.monotonic() >= deadline:
                return view
            time.sleep(poll)

    def report(self, job_id: str) -> Dict[str, Any]:
        """The finished job's run-report payload (raises until done)."""
        return self._request("GET", f"/v1/jobs/{job_id}/report")["report"]

    def events(self, job_id: str, *, follow: bool = True,
               timeout: Optional[float] = None
               ) -> Iterator[Dict[str, Any]]:
        """Iterate the job's NDJSON event stream, one dict per event.

        With ``follow=True`` (default) the stream stays live until the
        job is terminal; ``timeout`` bounds each read, not the whole
        stream.
        """
        conn = HTTPConnection(self.host, self.port,
                              timeout=timeout or max(self.timeout, 300.0))
        try:
            suffix = "" if follow else "?follow=0"
            conn.request("GET", f"/v1/jobs/{job_id}/events{suffix}")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw.decode("utf-8"))["error"]
                except Exception:
                    message = raw.decode("utf-8", "replace")[:200]
                raise ServiceError(response.status, message)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def drain(self, *, timeout: Optional[float] = None) -> Dict[str, Any]:
        body: Dict[str, Any] = {}
        if timeout is not None:
            body["timeout"] = timeout
        request_timeout = (timeout + 10.0) if timeout else 24 * 3600.0
        return self._request("POST", "/v1/drain", body,
                             timeout=request_timeout)


def poll_until_running(client: ServeClient, job_id: str, *,
                       timeout: float = 10.0) -> Dict[str, Any]:
    """Wait until a job has left the queue (test helper).

    Returns the first view whose status is not ``queued`` — i.e. the
    job is running (the coalescing window is provably open) or already
    terminal.  Raises :class:`TimeoutError` otherwise.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        view = client.job(job_id)
        if view["status"] != "queued":
            return view
        time.sleep(0.01)
    raise TimeoutError(f"job {job_id} still queued after {timeout}s")

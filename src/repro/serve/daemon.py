"""The HTTP face of the verification service (stdlib only).

A thin JSON-over-HTTP/1.1 layer on :class:`~repro.serve.manager.JobManager`
— every route delegates; no verification logic lives here.

Routes (all JSON unless noted)::

    GET  /v1/health             liveness + version
    GET  /v1/stats              counters, queue depths, cache stats
    GET  /v1/jobs               every known job (view summaries)
    POST /v1/jobs               submit {"kind": ..., ...};
                                body may add "wait": true [, "timeout": s]
    GET  /v1/jobs/<id>          one job's view
    GET  /v1/jobs/<id>/events   NDJSON event stream (see below)
    GET  /v1/jobs/<id>/report   the finished job's run-report payload
    POST /v1/drain              begin graceful drain; body may set
                                {"timeout": seconds}

The event stream is newline-delimited JSON (``application/x-ndjson``):
the daemon tails the job's ``events.jsonl`` — parent lifecycle events
plus the computation's live engine events — and keeps the connection
open until the job is terminal (pass ``?follow=0`` for a snapshot).
Served with ``Connection: close``, so plain ``curl`` consumes it.

Error mapping: a malformed spec is 400, an unknown job 404, a
submission during drain 503, anything unexpected 500.  Every JSON
response carries ``repro_version`` (the service-response half of the
version single-sourcing satellite).

The server itself is a ``ThreadingHTTPServer`` driven by
:func:`serve_until` — a ``handle_request()`` polling loop rather than
``serve_forever()``, because the drain trigger is a SIGTERM handler
setting an event, and calling ``shutdown()`` from a signal handler
deadlocks (it joins the very thread the handler interrupted).
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from .jobs import JobSpecError
from .manager import DrainingError, JobManager

__all__ = ["VerificationServer", "serve_until"]

#: How often the event-stream tail re-polls the file and the serve loop
#: re-checks its stop event.  Small enough to feel live, large enough
#: to stay off the profile.
_POLL_SECONDS = 0.05


class VerificationServer(ThreadingHTTPServer):
    """One listening socket over one :class:`JobManager`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 manager: JobManager) -> None:
        super().__init__(address, _Handler)
        self.manager = manager


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: VerificationServer

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        pass  # the daemon narrates through events, not the access log

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        payload = dict(payload)
        payload.setdefault("repro_version", __version__)
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise JobSpecError("request body is not valid JSON")

    # -- routing ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._route_get()
        except BrokenPipeError:
            pass
        except Exception as exc:  # pragma: no cover - defensive
            self._safe_error(500, f"internal error: {exc!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            self._route_post()
        except JobSpecError as exc:
            self._safe_error(400, str(exc))
        except DrainingError as exc:
            self._safe_error(503, str(exc))
        except BrokenPipeError:
            pass
        except Exception as exc:  # pragma: no cover - defensive
            self._safe_error(500, f"internal error: {exc!r}")

    def _safe_error(self, status: int, message: str) -> None:
        try:
            self._send_json(status, {"error": message})
        except Exception:  # pragma: no cover - client already gone
            pass

    def _route_get(self) -> None:
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        manager = self.server.manager
        if parts == ["v1", "health"]:
            stats = manager.stats()
            self._send_json(200, {
                "ok": True,
                "service": "repro-serve",
                "draining": stats["draining"],
            })
            return
        if parts == ["v1", "stats"]:
            self._send_json(200, manager.stats())
            return
        if parts == ["v1", "jobs"]:
            self._send_json(200, {"jobs": manager.jobs()})
            return
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            view = manager.job(parts[2])
            if view is None:
                self._safe_error(404, f"no such job: {parts[2]}")
                return
            self._send_json(200, {"job": view})
            return
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"]:
            job_id, leaf = parts[2], parts[3]
            if manager.job(job_id) is None:
                self._safe_error(404, f"no such job: {job_id}")
                return
            if leaf == "report":
                report = manager.report(job_id)
                if report is None:
                    self._safe_error(409, f"job {job_id} has no report "
                                     "(not finished, or it failed)")
                    return
                self._send_json(200, {"report": report})
                return
            if leaf == "events":
                query = parse_qs(split.query)
                follow = query.get("follow", ["1"])[0] not in ("0", "no")
                self._stream_events(job_id, follow=follow)
                return
        self._safe_error(404, f"no such route: GET {split.path}")

    def _route_post(self) -> None:
        parts = [p for p in urlsplit(self.path).path.split("/") if p]
        manager = self.server.manager
        if parts == ["v1", "jobs"]:
            body = self._read_body()
            if not isinstance(body, dict):
                raise JobSpecError("the submission body must be a "
                                   "JSON object")
            wait = bool(body.pop("wait", False))
            timeout = body.pop("timeout", None)
            view = manager.submit(body)
            if wait:
                view = manager.wait(view["job_id"], timeout=timeout) or view
            self._send_json(200, {"job": view})
            return
        if parts == ["v1", "drain"]:
            body = self._read_body()
            timeout = body.get("timeout") if isinstance(body, dict) else None
            summary = manager.drain(timeout=timeout)
            self._send_json(200, summary)
            return
        self._safe_error(404, f"no such route: POST {self.path}")

    # -- the event stream -------------------------------------------------

    def _stream_events(self, job_id: str, *, follow: bool) -> None:
        """Tail the job's events.jsonl as NDJSON until it is terminal.

        The file is append-only (parent lifecycle events interleaved
        with the worker's live engine events), so a plain byte tail is
        a faithful stream.  Ends after the line written by the final
        ``job_finished`` event — terminal status is checked *before*
        reading so the closing events always flush to the client.
        """
        path = self.server.manager.events_path(job_id)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        offset = 0
        while True:
            terminal = self.server.manager.is_terminal(job_id)
            if path is not None and os.path.exists(path):
                with open(path, "rb") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
                if chunk:
                    # Only ship whole lines; a partially-written event
                    # stays buffered until its newline lands.
                    cut = chunk.rfind(b"\n")
                    if cut >= 0:
                        self.wfile.write(chunk[:cut + 1])
                        self.wfile.flush()
                        offset += cut + 1
            if terminal or not follow:
                break
            time.sleep(_POLL_SECONDS)
        self.close_connection = True


def serve_until(server: VerificationServer, stop: threading.Event,
                poll_seconds: float = 0.2) -> None:
    """Serve requests until ``stop`` is set (signal-handler friendly).

    Each request is handled on its own thread (``ThreadingHTTPServer``),
    so long-lived event streams do not block this accept loop.
    """
    server.timeout = poll_seconds
    while not stop.is_set():
        server.handle_request()

"""Verification-as-a-service: the ``repro serve`` daemon.

The paper's workflow is interactive — design, verify, adjust, verify
again — and a team iterating on one architecture re-verifies the same
designs constantly.  This package turns the local verification stack
into a long-running service so those repeated questions are answered
once:

* :mod:`~repro.serve.jobs` — JSON job specs, canonicalization, and the
  ``repro.serve-job/1`` content fingerprint (built on the design
  layer's ``repro.design-fingerprint/1`` scheme);
* :mod:`~repro.serve.manager` — scheduling over a shared sqlite/WAL
  verdict store, with **cross-request coalescing**: a submission
  identical to an in-flight job attaches to the running computation
  instead of duplicating it;
* :mod:`~repro.serve.daemon` — the stdlib HTTP layer, including the
  live NDJSON event stream per job and graceful drain;
* :mod:`~repro.serve.client` — the stdlib client the ``repro submit``
  and ``repro status`` commands wrap.

See ``docs/service.md`` for the HTTP API and semantics.
"""

from .client import ServeClient, ServiceError
from .daemon import VerificationServer, serve_until
from .jobs import BuiltJob, JobSpecError, build_job, canonical_spec, run_job
from .manager import (
    DrainingError,
    JobManager,
    ServeError,
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_QUEUED,
    STATUS_RUNNING,
    TERMINAL_STATUSES,
)

__all__ = [
    "BuiltJob",
    "DrainingError",
    "JobManager",
    "JobSpecError",
    "ServeClient",
    "ServeError",
    "ServiceError",
    "VerificationServer",
    "build_job",
    "canonical_spec",
    "run_job",
    "serve_until",
    "STATUS_DONE",
    "STATUS_FAILED",
    "STATUS_QUEUED",
    "STATUS_RUNNING",
    "TERMINAL_STATUSES",
]

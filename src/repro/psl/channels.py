"""Channel declarations for PSL systems.

A :class:`Channel` corresponds to a Promela ``chan`` declaration:

* ``capacity == 0`` — a *rendezvous* channel: a send and a matching
  receive in two different processes execute together as one handshake
  transition (Promela ``chan c = [0] of {...}``).
* ``capacity > 0`` — a *buffered* channel holding up to ``capacity``
  messages in FIFO order; sends block when full, receives block when no
  message matches.

Every message on a channel is a tuple with one element per declared
field.  Field names are used by the Promela code generator and by trace
explanation; the interpreter itself works positionally.

Note the distinction the paper draws (Section 3): these are *Promela
channels*, the low-level communication primitive.  The architecture-level
"channel" building blocks of the PnP approach (single-slot buffer, FIFO
queue, priority queue) are *processes* built on top of these primitives —
see ``repro.core.channels``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .errors import ChannelError
from .values import Message


class Channel:
    """A declared communication channel.

    Channels are identified by object identity; the ``index`` attribute is
    assigned when the channel is registered with a :class:`~repro.psl.system.System`
    and locates the channel's contents inside the global state vector.
    """

    __slots__ = ("name", "fields", "capacity", "index")

    def __init__(self, name: str, fields: Tuple[str, ...], capacity: int = 0) -> None:
        if capacity < 0:
            raise ChannelError(f"channel {name!r}: capacity must be >= 0")
        if not fields:
            raise ChannelError(f"channel {name!r}: must declare at least one field")
        if len(set(fields)) != len(fields):
            raise ChannelError(f"channel {name!r}: duplicate field names in {fields}")
        self.name = name
        self.fields: Tuple[str, ...] = tuple(fields)
        self.capacity = capacity
        self.index: Optional[int] = None

    @property
    def arity(self) -> int:
        return len(self.fields)

    @property
    def is_rendezvous(self) -> bool:
        return self.capacity == 0

    @property
    def is_buffered(self) -> bool:
        return self.capacity > 0

    def check_arity(self, n: int, op: str) -> None:
        if n != self.arity:
            raise ChannelError(
                f"channel {self.name!r}: {op} with {n} fields, declared arity {self.arity}"
            )

    def initial_contents(self) -> Tuple[Message, ...]:
        """Contents at system start: always empty."""
        return ()

    def to_promela(self) -> str:
        field_types = ", ".join("int" for _ in self.fields)
        return f"chan {self.name} = [{self.capacity}] of {{ {field_types} }}"

    def __repr__(self) -> str:
        kind = "rendezvous" if self.is_rendezvous else f"buffered[{self.capacity}]"
        return f"Channel({self.name!r}, {kind}, fields={self.fields})"


def rendezvous(name: str, *fields: str) -> Channel:
    """Declare a rendezvous (capacity-0) channel."""
    return Channel(name, tuple(fields), capacity=0)


def buffered(name: str, capacity: int, *fields: str) -> Channel:
    """Declare a buffered channel of the given capacity."""
    if capacity <= 0:
        raise ChannelError(f"buffered channel {name!r} needs capacity >= 1")
    return Channel(name, tuple(fields), capacity=capacity)

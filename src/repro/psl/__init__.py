"""PSL — the Promela-like process modeling substrate.

This subpackage replaces SPIN's input language for the reproduction: it
provides channels (rendezvous and buffered), guarded-command processes,
pattern-matching receives, assertions, and an interpreter that generates
the interleaving transition system the model checker explores.

Typical usage::

    from repro.psl import (
        System, ProcessDef, rendezvous, buffered,
        Seq, Do, If, Branch, Send, Recv, Assign, Guard, Break, Else,
        V, C, MatchEq, AnyField, Bind, Interpreter,
    )
"""

from .channels import Channel, buffered, rendezvous
from .compiler import Automaton, Edge, compile_body
from .errors import (
    BindingError,
    ChannelError,
    CompileError,
    EvalError,
    ExecutionError,
    PslError,
)
from .expr import BinOp, C, Const, Expr, FALSE, Not, TRUE, V, Var, as_expr
from .interp import Interpreter, Transition, TransitionLabel
from .state import State
from .stmt import (
    AnyField,
    Assert,
    Assign,
    Bind,
    Branch,
    Break,
    Do,
    DStep,
    Else,
    EndLabel,
    Guard,
    If,
    MatchEq,
    Pattern,
    Recv,
    Seq,
    Send,
    Skip,
    Stmt,
)
from .system import ProcessDef, ProcessInstance, System
from .values import Message, Mtype, NO_PID, Value, format_message

__all__ = [
    "AnyField",
    "Assert",
    "Assign",
    "Automaton",
    "BinOp",
    "Bind",
    "BindingError",
    "Branch",
    "Break",
    "C",
    "Channel",
    "ChannelError",
    "CompileError",
    "Const",
    "Do",
    "DStep",
    "Edge",
    "Else",
    "EndLabel",
    "EvalError",
    "ExecutionError",
    "Expr",
    "FALSE",
    "Guard",
    "If",
    "Interpreter",
    "MatchEq",
    "Message",
    "Mtype",
    "NO_PID",
    "Not",
    "Pattern",
    "ProcessDef",
    "ProcessInstance",
    "PslError",
    "Recv",
    "Seq",
    "Send",
    "Skip",
    "State",
    "Stmt",
    "System",
    "TRUE",
    "Transition",
    "TransitionLabel",
    "V",
    "Value",
    "Var",
    "as_expr",
    "buffered",
    "compile_body",
    "format_message",
    "rendezvous",
]

"""Canonical serialization of PSL process definitions.

Content-addressed caching of verification results (see
:mod:`repro.design`) needs a *stable* identity for a compiled model:
two :class:`~repro.psl.system.ProcessDef` objects with the same
semantic content must serialize to the same bytes in every interpreter
run, and any semantic difference must change the bytes.  Neither of the
existing renderings qualifies on its own:

* Python's ``repr``/``id`` change between runs;
* :class:`~repro.psl.expr.Expr` overloads ``__eq__`` to *build* syntax
  (``V("x") == 1`` is a ``BinOp``), so AST nodes cannot be compared;
* dict and set iteration order must never leak into the output.

This module walks the statement/expression/pattern AST and produces a
plain JSON-able structure with **explicitly ordered collections**:
statement and argument sequences keep their (semantic) order, while
name-keyed collections (local variables) are sorted.  Comments are
excluded — they carry no semantics.  The canonical *text* is the
sorted-keys, compact-separator JSON dump of that structure, and the
canonical *digest* is its SHA-256, which is independent of
``PYTHONHASHSEED`` and stable across interpreter runs.

    >>> from repro.psl.system import ProcessDef
    >>> from repro.psl.stmt import Assign
    >>> a = ProcessDef("p", Assign("x", 1), local_vars={"x": 0})
    >>> b = ProcessDef("p", Assign("x", 1), local_vars={"x": 0})
    >>> a.canonical() == b.canonical()
    True
    >>> a.canonical_digest() == b.canonical_digest()
    True
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

from .errors import CompileError
from .expr import BinOp, Const, Expr, Not, Var
from .stmt import (
    AnyField,
    Assert,
    Assign,
    Bind,
    Break,
    DStep,
    Do,
    Else,
    EndLabel,
    Guard,
    If,
    MatchEq,
    Pattern,
    Recv,
    Send,
    Seq,
    Skip,
    Stmt,
)

__all__ = [
    "canon_expr",
    "canon_pattern",
    "canon_stmt",
    "canon_def",
    "canonical_text",
    "canonical_digest",
]


def canon_expr(expr: Expr) -> List[Any]:
    """A JSON-able canonical form of an expression tree."""
    if isinstance(expr, Const):
        return ["const", expr.value]
    if isinstance(expr, Var):
        return ["var", expr.name]
    if isinstance(expr, BinOp):
        return ["binop", expr.op, canon_expr(expr.left), canon_expr(expr.right)]
    if isinstance(expr, Not):
        return ["not", canon_expr(expr.operand)]
    raise CompileError(f"cannot canonicalize expression {expr!r}")


def canon_pattern(pattern: Pattern) -> List[Any]:
    """A JSON-able canonical form of a receive pattern."""
    if isinstance(pattern, Bind):
        return ["bind", pattern.name]
    if isinstance(pattern, MatchEq):
        return ["match", canon_expr(pattern.expr)]
    if isinstance(pattern, AnyField):
        return ["any"]
    raise CompileError(f"cannot canonicalize pattern {pattern!r}")


def canon_stmt(stmt: Stmt) -> List[Any]:
    """A JSON-able canonical form of a statement tree.

    Statement order inside sequences and branches is semantic and is
    preserved; comments are dropped.
    """
    if isinstance(stmt, Seq):
        return ["seq", [canon_stmt(s) for s in stmt.stmts]]
    if isinstance(stmt, Assign):
        return ["assign", stmt.name, canon_expr(stmt.expr)]
    if isinstance(stmt, Guard):
        return ["guard", canon_expr(stmt.expr)]
    if isinstance(stmt, Else):
        return ["else"]
    if isinstance(stmt, Send):
        return ["send", stmt.chan, [canon_expr(a) for a in stmt.args]]
    if isinstance(stmt, Recv):
        return [
            "recv",
            stmt.chan,
            [canon_pattern(p) for p in stmt.patterns],
            int(stmt.matching),
            int(stmt.peek),
            canon_expr(stmt.when) if stmt.when is not None else None,
        ]
    if isinstance(stmt, If):
        return ["if", [canon_stmt(b.body) for b in stmt.branches]]
    if isinstance(stmt, Do):
        return ["do", [canon_stmt(b.body) for b in stmt.branches]]
    if isinstance(stmt, Break):
        return ["break"]
    if isinstance(stmt, Assert):
        return ["assert", canon_expr(stmt.expr)]
    if isinstance(stmt, Skip):
        return ["skip"]
    if isinstance(stmt, DStep):
        return ["dstep", [canon_stmt(s) for s in stmt.stmts]]
    if isinstance(stmt, EndLabel):
        return ["end"]
    raise CompileError(f"cannot canonicalize statement {stmt!r}")


def canon_def(definition) -> Dict[str, Any]:
    """A JSON-able canonical form of a :class:`ProcessDef`.

    Name-keyed collections are sorted so the output never depends on
    declaration (dict insertion) order; the body keeps its semantic
    statement order.
    """
    return {
        "name": definition.name,
        "chan_params": sorted(definition.chan_params),
        "params": sorted(definition.params),
        "local_vars": sorted(
            [name, value] for name, value in definition.local_vars.items()
        ),
        "body": canon_stmt(definition.body),
    }


def canonical_text(definition) -> str:
    """The canonical JSON text of a :class:`ProcessDef` (sorted keys)."""
    return json.dumps(canon_def(definition), sort_keys=True,
                      separators=(",", ":"))


def canonical_digest(definition) -> str:
    """SHA-256 hex digest of :func:`canonical_text` (run-independent)."""
    return hashlib.sha256(
        canonical_text(definition).encode("utf-8")).hexdigest()


def digest_payload(payload: Any, *, schema: Optional[str] = None) -> str:
    """SHA-256 of an arbitrary JSON-able payload, canonically encoded.

    The shared hashing primitive for every fingerprint in the design
    subsystem: sorted keys, compact separators, UTF-8.  ``schema`` is
    folded into the hash so payloads of different fingerprint kinds can
    never collide by shape.
    """
    wrapped = payload if schema is None else {"schema": schema,
                                             "payload": payload}
    text = json.dumps(wrapped, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
